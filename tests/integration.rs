//! Cross-crate integration tests: Active Harmony driving each simulated
//! application through its public API, plus the server architecture under
//! concurrent clients.

use ah_clustersim::machines::{hetero_p4_p2, hockney, sp3_seaborg};
use ah_core::offline::OfflineTuner;
use ah_core::param::Param;
use ah_core::prelude::*;
use ah_core::session::SessionOptions;
use ah_core::strategy::{NelderMeadOptions, StartPoint};
use ah_gs2::{CollisionModel, Gs2Config, Gs2LayoutApp, Gs2Model};
use ah_petsc::{CavityDistributionApp, DrivenCavity};
use ah_pop::{OceanGrid, PopBlockApp, PopParamApp, PopParams};

fn opts(max: usize, seed: u64) -> SessionOptions {
    SessionOptions {
        max_evaluations: max,
        seed,
        ..Default::default()
    }
}

#[test]
fn harmony_tunes_every_application_through_short_runs() {
    // PETSc cavity on a heterogeneous machine.
    let cavity = DrivenCavity::new(40, 40, hetero_p4_p2(), 10);
    let mut petsc = CavityDistributionApp::new(cavity);
    let petsc_out =
        OfflineTuner::new(opts(80, 1)).tune(&mut petsc, Box::new(NelderMead::default()));
    assert!(petsc_out.improvement_pct() > 0.0);

    // POP block sizing.
    let mut pop = PopBlockApp::new(OceanGrid::synthetic(360, 240), sp3_seaborg(4, 8), 2);
    let pop_out = OfflineTuner::new(opts(50, 2)).tune(&mut pop, Box::new(NelderMead::default()));
    assert!(pop_out.result.best_cost <= pop_out.default_cost);

    // GS2 layout.
    let mut gs2_model = Gs2Model::on_seaborg(8, 8);
    gs2_model.nx = 16;
    gs2_model.ny = 8;
    gs2_model.nl = 16;
    let base = Gs2Config {
        nodes: 8,
        collision: CollisionModel::Lorentz,
        ..Gs2Config::paper_default()
    };
    let mut gs2 = Gs2LayoutApp::new(gs2_model, base, 5);
    let gs2_out = OfflineTuner::new(opts(40, 3)).tune(&mut gs2, Box::new(NelderMead::default()));
    assert!(gs2_out.result.best_cost <= gs2_out.default_cost);
}

#[test]
fn pop_parameter_tuning_beats_defaults_and_respects_types() {
    let mut app = PopParamApp::new(OceanGrid::synthetic(360, 240), hockney(4, 4), (36, 30), 2);
    let out = OfflineTuner::new(opts(60, 4)).tune(&mut app, Box::new(NelderMead::default()));
    assert!(out.improvement_pct() >= 0.0);
    // The tuned configuration decodes into a full PopParams assignment.
    let params = PopParams::from_config(&out.result.best_config);
    assert!(params.num_iotasks >= 1);
    assert_eq!(params.selection.len(), ah_pop::params::CHOICES.len());
}

#[test]
fn strategies_rank_sensibly_on_the_same_application() {
    // On the cavity distribution problem, Nelder-Mead should do at least as
    // well as random search under the same evaluation budget.
    let run = |strategy: Box<dyn SearchStrategy>, seed: u64| {
        let cavity = DrivenCavity::new(40, 40, hetero_p4_p2(), 10);
        let mut app = CavityDistributionApp::new(cavity);
        OfflineTuner::new(opts(60, seed))
            .tune(&mut app, strategy)
            .result
            .best_cost
    };
    let nm = run(Box::<NelderMead>::default(), 7);
    let rs = run(Box::new(RandomSearch::new()), 7);
    assert!(
        nm <= rs * 1.10,
        "Nelder-Mead ({nm}) should be competitive with random ({rs})"
    );
}

#[test]
fn server_tunes_two_simulated_apps_concurrently() {
    let server = HarmonyServer::start();
    let mut handles = Vec::new();
    for (app_name, target) in [("app-a", 12_i64), ("app-b", 70_i64)] {
        let client = server.connect(app_name).unwrap();
        handles.push(std::thread::spawn(move || {
            client.add_param(Param::int("x", 0, 100, 1)).unwrap();
            client
                .seal(
                    SessionOptions {
                        max_evaluations: 50,
                        seed: target as u64,
                        ..Default::default()
                    },
                    StrategyKind::NelderMead,
                )
                .unwrap();
            loop {
                let f = client.fetch().unwrap();
                if f.finished {
                    break;
                }
                let x = f.config.int("x").unwrap();
                client.report(((x - target) as f64).abs()).unwrap();
            }
            let (cfg, cost) = client.best().unwrap().unwrap();
            (cfg.int("x").unwrap(), cost)
        }));
    }
    let results: Vec<(i64, f64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!((results[0].0 - 12).abs() <= 2, "{results:?}");
    assert!((results[1].0 - 70).abs() <= 2, "{results:?}");
    server.shutdown();
}

#[test]
fn online_tuner_converges_on_simulated_sles_interval() {
    use ah_sparse::gen::{clustered_blocks, ones};
    use ah_sparse::RowPartition;

    // On-line scenario: the application re-partitions between solver calls.
    let a = clustered_blocks(&[20, 60, 20], 0.8, 5);
    let machine =
        ah_clustersim::Machine::uniform("m", 4, 1, 1.0, ah_clustersim::NetworkModel::default());
    let mut problem = ah_petsc::SlesProblem::new(a, ones(100), machine);
    problem.set_iterations(50);

    let space = ah_petsc::tunable::boundary_space(100, 4);
    let mut tuner = OnlineTuner::new(space, Box::new(NelderMead::default()), opts(60, 9));
    let default_time = problem.solve(&RowPartition::even(100, 4)).time;
    let mut best_seen = f64::INFINITY;
    while !tuner.settled() {
        let cfg = tuner.fetch();
        let part = ah_petsc::tunable::partition_from_config(&cfg, 100, 4);
        let t = problem.solve(&part).time;
        best_seen = best_seen.min(t);
        tuner.report(t);
    }
    assert!(best_seen <= default_time * 1.001);
}

#[test]
fn prior_run_db_accelerates_a_related_problem() {
    // Tune a small problem, bank the history, then verify the seeded search
    // on a related problem starts from good points.
    let space = SearchSpace::builder()
        .int("a", 0, 1000, 1)
        .int("b", 0, 1000, 1)
        .build()
        .unwrap();
    let objective = |cfg: &Configuration| {
        ((cfg.int("a").unwrap() - 600) as f64).abs() + ((cfg.int("b").unwrap() - 300) as f64).abs()
    };

    let mut first = TuningSession::new(
        space.clone(),
        Box::new(NelderMead::default()),
        opts(120, 10),
    );
    let r1 = first.run(objective);

    let mut db = PriorRunDb::new();
    db.record_history("app", &r1.history);
    let seed = db.seed_for("app", &space);
    let nm = NelderMead::new(NelderMeadOptions {
        start: seed,
        ..Default::default()
    });
    let mut second = TuningSession::new(space, Box::new(nm), opts(15, 11));
    let r2 = second.run(objective);
    // With only 15 evaluations the seeded search should already be close.
    assert!(
        r2.best_cost <= r1.best_cost * 2.0 + 50.0,
        "seeded {} vs original {}",
        r2.best_cost,
        r1.best_cost
    );
}

#[test]
fn tuning_still_improves_under_measurement_noise() {
    // §III's off-line runs are real benchmark measurements and therefore
    // noisy; the cache-and-simplex pipeline must still find large wins when
    // every short run jitters by ±5%.
    let cavity = DrivenCavity::new(50, 50, hetero_p4_p2(), 20);
    let default_time = cavity.run_time(&cavity.default_distribution());
    let mut app = CavityDistributionApp::new(cavity).with_noise(0.05, 77);
    let out = OfflineTuner::new(opts(120, 78)).tune(&mut app, Box::new(NelderMead::default()));
    // Judge the tuned configuration by its *noise-free* time.
    let cavity = DrivenCavity::new(50, 50, hetero_p4_p2(), 20);
    let tuned = ah_petsc::tunable::partition_from_config(&out.result.best_config, 50, 4);
    let clean_tuned = cavity.run_time(&tuned);
    assert!(
        clean_tuned < default_time * 0.8,
        "noisy tuning found {clean_tuned} vs default {default_time}"
    );
}

#[test]
fn greedy_baseline_matches_simplex_on_separable_pop_namelist() {
    use ah_core::strategy::{GreedyFrom, GreedyOptions};
    // POP's namelist is (nearly) separable, so the greedy one-param sweep —
    // the manual procedure the paper replaces — does well here; the simplex
    // must at least match it.
    let grid = OceanGrid::synthetic(360, 240);
    let run = |strategy: Box<dyn SearchStrategy>, evals| {
        let mut app = PopParamApp::new(grid.clone(), hockney(4, 4), (36, 30), 2);
        OfflineTuner::new(opts(evals, 81))
            .tune(&mut app, strategy)
            .result
            .best_cost
    };
    let start = PopParams::default().to_coords();
    let greedy = run(
        Box::new(GreedyFrom::new(start.clone(), GreedyOptions::default())),
        80,
    );
    let nm = run(
        Box::new(NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(start),
            ..Default::default()
        })),
        80,
    );
    assert!(
        nm <= greedy * 1.05,
        "simplex {nm} should be competitive with greedy {greedy}"
    );
}

#[test]
fn narrowed_space_shrinks_search_for_large_problems() {
    let space = SearchSpace::builder()
        .int("x", 0, 100_000, 1)
        .build()
        .unwrap();
    let mut db = PriorRunDb::new();
    db.record("big", space.project(&[42_000.0]), 1.0);
    let narrow = db.narrowed_space("big", &space, 0.05).unwrap();
    assert!(narrow.cardinality().unwrap() <= space.cardinality().unwrap() / 5);
    // The prior best stays inside the narrowed space.
    let cfg = narrow.project(&[42_000.0]);
    assert_eq!(cfg.int("x"), Some(42_000));
}

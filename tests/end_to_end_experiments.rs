//! End-to-end smoke runs of every paper experiment in quick mode.
//!
//! Each experiment exercises the full stack — application model, machine
//! simulator, Harmony search, report rendering — on a shrunken workload.
//! The full-scale shapes are validated by `repro all` (see EXPERIMENTS.md);
//! here we assert that every experiment runs, renders, and produces
//! structurally sane reports.

use ah_repro::{all_experiments, RunCtx};

#[test]
fn every_experiment_runs_in_quick_mode_and_renders() {
    for e in all_experiments() {
        let report = e.run(&RunCtx::quick(true));
        assert_eq!(report.id, e.id());
        assert!(!report.narrative.is_empty(), "{} has no narrative", e.id());
        assert!(!report.findings.is_empty(), "{} has no findings", e.id());
        let rendered = report.render();
        assert!(rendered.contains(e.id()));
        assert!(
            report.all_ok(),
            "experiment {} mismatched in quick mode:\n{rendered}",
            e.id()
        );
        // The JSON payload must serialize (the CLI dumps it).
        let blob = serde_json::to_string(&report).expect("report serializes");
        assert!(blob.len() > 2);
    }
}

#[test]
fn experiment_registry_covers_every_paper_artifact() {
    let ids: Vec<&str> = all_experiments().iter().map(|e| e.id()).collect();
    for required in [
        "fig2b",
        "petsc_sles_large",
        "fig3",
        "petsc_snes_large",
        "fig4",
        "table1",
        "table2",
        "fig5",
        "gs2_headline",
        "gs2_combined",
        "table3",
        "table4",
        "fig6",
        "fault",
        "warmstart",
    ] {
        assert!(ids.contains(&required), "missing experiment {required}");
    }
}

#[test]
fn experiments_are_deterministic() {
    // Same seed-driven pipeline ⇒ identical JSON payloads run-to-run.
    let ctx = RunCtx::quick(true);
    let a = ah_repro::experiment::by_id("fig2b").unwrap().run(&ctx);
    let b = ah_repro::experiment::by_id("fig2b").unwrap().run(&ctx);
    assert_eq!(
        serde_json::to_string(&a.data).unwrap(),
        serde_json::to_string(&b.data).unwrap()
    );
}

//! Property-based tests on cross-crate invariants.

use ah_core::constraint::MonotoneChain;
use ah_core::prelude::*;
use ah_core::session::SessionOptions;
use ah_gs2::decomp::{locality, Decomposition, DimSizes};
use ah_gs2::layout::{Dim, Layout};
use ah_pop::{BlockDecomposition, OceanGrid};
use ah_sparse::gen::laplacian_2d;
use ah_sparse::RowPartition;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Projection always produces valid, in-domain configurations, and
    /// embedding projects back to the same lattice point.
    #[test]
    fn space_projection_roundtrips(
        x in -500.0..500.0f64,
        y in -500.0..500.0f64,
        z in -500.0..500.0f64,
    ) {
        let space = SearchSpace::builder()
            .int("a", -10, 90, 7)
            .enumeration("m", ["p", "q", "r"])
            .int("b", 5, 6, 1)
            .build()
            .unwrap();
        let cfg = space.project(&[x, y, z]);
        prop_assert!(space.is_valid(&cfg));
        let coords = space.embed(&cfg).unwrap();
        prop_assert_eq!(space.project(&coords), cfg);
    }

    /// Monotone-chain repair always yields sorted boundaries, whatever the
    /// input ordering.
    #[test]
    fn chain_repair_always_sorts(values in proptest::collection::vec(0.0..1000.0f64, 4)) {
        let space = SearchSpace::builder()
            .int("b1", 0, 1000, 1)
            .int("b2", 0, 1000, 1)
            .int("b3", 0, 1000, 1)
            .int("b4", 0, 1000, 1)
            .constraint(MonotoneChain::new(["b1", "b2", "b3", "b4"]))
            .build()
            .unwrap();
        let cfg = space.project(&values);
        let b: Vec<i64> = (1..=4).map(|i| cfg.int(&format!("b{i}")).unwrap()).collect();
        prop_assert!(b.windows(2).all(|w| w[0] <= w[1]), "{:?}", b);
    }

    /// Row partitions conserve rows and nonzeros for any boundary set.
    #[test]
    fn partitions_conserve_mass(bounds in proptest::collection::vec(0usize..400, 1..8)) {
        let a = laplacian_2d(20, 20);
        let p = RowPartition::from_boundaries(400, &bounds);
        prop_assert_eq!(p.row_counts().iter().sum::<usize>(), 400);
        prop_assert_eq!(p.loads(&a).iter().sum::<usize>(), a.nnz());
        // Cut is symmetric-bounded: can never exceed total nnz.
        prop_assert!(p.total_cut(&a) <= a.nnz());
    }

    /// The tuning session never reports a best worse than any evaluation it
    /// made, for arbitrary seeds.
    #[test]
    fn session_best_is_min_of_history(seed in 0u64..1000) {
        let space = SearchSpace::builder()
            .int("x", 0, 50, 1)
            .int("y", 0, 50, 1)
            .build()
            .unwrap();
        let mut session = TuningSession::new(
            space,
            Box::new(NelderMead::default()),
            SessionOptions { max_evaluations: 30, seed, ..Default::default() },
        );
        let result = session.run(|cfg| {
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            (x * 13.0 + y * 7.0).sin() * 10.0 + x + y
        });
        let min = result
            .history
            .evaluations()
            .iter()
            .map(|e| e.cost)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((result.best_cost - min).abs() < 1e-12);
    }

    /// GS2 locality is a fraction in [0, 1], exactly 1 for an empty
    /// requirement, and monotonically no better when more dimensions are
    /// required local.
    #[test]
    fn gs2_locality_bounds(procs in 1usize..40, e in 2usize..9) {
        let sizes = DimSizes { x: 4, y: 4, l: 8, e, s: 2 };
        let layout: Layout = "lxyes".parse().unwrap();
        let d = Decomposition::new(layout, sizes, procs);
        let l_xy = locality(&d, &[Dim::X, Dim::Y]);
        let l_all = locality(&d, &Dim::ALL);
        prop_assert!((0.0..=1.0).contains(&l_xy));
        prop_assert_eq!(locality(&d, &[]), 1.0);
        prop_assert!(l_all <= l_xy + 1e-12);
    }

    /// POP decompositions conserve ocean work for any block size.
    #[test]
    fn pop_blocks_conserve_ocean(bx in 5usize..120, by in 5usize..120) {
        let grid = OceanGrid::synthetic(240, 160);
        let d = BlockDecomposition::new(&grid, bx, by, 16);
        let ocean_in_blocks: usize = d.blocks.iter().map(|b| b.ocean_points).sum();
        prop_assert_eq!(ocean_in_blocks, grid.ocean_points());
        prop_assert!(d.load_imbalance() >= 1.0 - 1e-12);
    }

    /// Machine message costs are monotone in size and never cheaper across
    /// nodes than within one.
    #[test]
    fn network_costs_are_monotone(bytes in 1.0..1e9f64) {
        let m = ah_clustersim::machines::sp3_seaborg(4, 8);
        let intra = m.network.msg_time(bytes, true);
        let inter = m.network.msg_time(bytes, false);
        prop_assert!(intra <= inter);
        prop_assert!(m.network.msg_time(bytes * 2.0, false) >= inter);
    }
}

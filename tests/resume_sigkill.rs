//! Crash-safety acceptance test: a tuning run killed mid-experiment and
//! resumed via `--resume` writes results *byte-identical* to an
//! uninterrupted run.
//!
//! Two kill mechanisms are exercised against the real `repro` binary:
//! a cooperative `--crash-after N` (`std::process::abort()` inside the
//! driver — no unwinding, no Drop cleanup) and an external `SIGKILL`
//! landing at an arbitrary point of a slowed-down run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-resume-sigkill-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Uninterrupted reference run; returns the results bytes.
fn clean_run(dir: &Path) -> Vec<u8> {
    let wal = dir.join("clean.wal");
    let out = dir.join("clean.json");
    let status = repro()
        .args(["fault-wal", "--quick"])
        .arg("--wal")
        .arg(&wal)
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "clean run failed: {status}");
    std::fs::read(&out).expect("clean results")
}

#[test]
fn abort_mid_experiment_then_resume_is_byte_identical() {
    let dir = tmp_dir("abort");
    let want = clean_run(&dir);

    let wal = dir.join("crash.wal");
    let out = dir.join("crash.json");
    let status = repro()
        .args(["fault-wal", "--quick", "--crash-after", "7"])
        .arg("--wal")
        .arg(&wal)
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(!status.success(), "crash-after run must die, got {status}");
    assert!(!out.exists(), "crashed run must not have written results");

    let status = repro()
        .args(["fault-wal", "--quick", "--resume"])
        .arg("--wal")
        .arg(&wal)
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "resume failed: {status}");
    let got = std::fs::read(&out).expect("resumed results");
    assert_eq!(got, want, "resumed results differ from uninterrupted run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_experiment_then_resume_is_byte_identical() {
    let dir = tmp_dir("sigkill");
    let want = clean_run(&dir);

    let wal = dir.join("killed.wal");
    let out = dir.join("killed.json");
    // Slow the run down so the kill lands mid-experiment, then SIGKILL it
    // (`Child::kill` sends SIGKILL on unix: no handler, no cleanup).
    let mut child = repro()
        .args(["fault-wal", "--quick", "--eval-delay-ms", "25"])
        .arg("--wal")
        .arg(&wal)
        .arg("--out")
        .arg(&out)
        .spawn()
        .expect("spawn repro");
    // Wait for the header plus a few records to hit the disk.
    let mut saw_progress = false;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        if let Ok(blob) = std::fs::read_to_string(&wal) {
            if blob.lines().count() >= 4 {
                saw_progress = true;
                break;
            }
        }
    }
    child.kill().expect("kill repro");
    let status = child.wait().expect("wait repro");
    assert!(!status.success(), "killed run must not exit cleanly");
    assert!(
        saw_progress,
        "run never made logged progress before the kill"
    );
    assert!(!out.exists(), "killed run must not have written results");

    let status = repro()
        .args(["fault-wal", "--quick", "--resume"])
        .arg("--wal")
        .arg(&wal)
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "resume after SIGKILL failed: {status}");
    let got = std::fs::read(&out).expect("resumed results");
    assert_eq!(
        got, want,
        "post-SIGKILL results differ from uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

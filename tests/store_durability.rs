//! Durability acceptance tests for the persistent performance store: a
//! `repro store demo` campaign killed mid-run leaves a database that, on
//! reopen, (a) recovers — truncating any torn trailing record — and
//! (b) serves a re-run to the byte-identical result of an uninterrupted
//! campaign, with the surviving measurements answered from the store.
//!
//! Same two kill mechanisms as the WAL suite: cooperative
//! `--crash-after N` (`std::process::abort()` — no unwinding, no Drop
//! flush) and an external SIGKILL landing at an arbitrary point of a
//! slowed-down run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-store-durable-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Uninterrupted reference demo against a fresh store; returns the
/// deterministic result bytes.
fn clean_run(dir: &Path) -> Vec<u8> {
    let out = dir.join("clean.json");
    let status = repro()
        .args(["store", "demo", "--quick"])
        .arg("--store")
        .arg(dir.join("clean.store"))
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "clean demo failed: {status}");
    std::fs::read(&out).expect("clean results")
}

/// Re-run the demo against a crashed store and assert recovery: exit 0,
/// byte-identical result, and the surviving records answered as hits.
fn recover_and_check(dir: &Path, store: &Path, want: &[u8]) {
    let out = dir.join("recovered.json");
    let cache = dir.join("recovered-cache.json");
    let status = repro()
        .args(["store", "demo", "--quick"])
        .arg("--store")
        .arg(store)
        .arg("--out")
        .arg(&out)
        .arg("--cache-out")
        .arg(&cache)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "recovery demo failed: {status}");
    let got = std::fs::read(&out).expect("recovered results");
    assert_eq!(
        got, want,
        "post-crash results differ from uninterrupted run"
    );
    let accounting: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&cache).expect("cache accounting")).unwrap();
    assert!(
        accounting["store_hits"].as_u64().unwrap() > 0,
        "recovery run got no store hits: {accounting:?}"
    );
}

#[test]
fn abort_mid_campaign_then_reopen_serves_the_survivors() {
    let dir = tmp_dir("abort");
    let want = clean_run(&dir);

    let store = dir.join("crash.store");
    let out = dir.join("crash.json");
    let status = repro()
        .args(["store", "demo", "--quick", "--crash-after", "20"])
        .arg("--store")
        .arg(&store)
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(!status.success(), "crash-after run must die, got {status}");
    assert!(!out.exists(), "crashed run must not have written results");
    assert!(store.exists(), "crashed run left no store behind");

    recover_and_check(&dir, &store, &want);

    // Once recovered and fully populated, a compaction must not change
    // what the store serves: compact, re-run, byte-identical again.
    let status = repro()
        .args(["store", "compact"])
        .arg("--store")
        .arg(&store)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "compaction failed: {status}");
    recover_and_check(&dir, &store, &want);

    std::fs::remove_dir_all(&dir).ok();
}

/// Live `(cache_key, cost bits)` content of a store, for equality checks
/// that ignore append order and torn tails.
fn live_map(path: &Path) -> std::collections::BTreeMap<Vec<i64>, u64> {
    let store = ah_core::store::PerfStore::open(path).expect("reopen store");
    store
        .live_records()
        .into_iter()
        .map(|r| (r.config.cache_key(), r.cost_bits))
        .collect()
}

#[test]
fn abort_mid_merge_then_clean_remerge_converges() {
    let dir = tmp_dir("merge-crash");

    // Source database: one uninterrupted demo campaign's records.
    let src = dir.join("src.store");
    let status = repro()
        .args(["store", "demo", "--quick"])
        .arg("--store")
        .arg(&src)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "source demo failed: {status}");

    // Reference: merge into a fresh store, never crashed.
    let reference = dir.join("reference.store");
    let status = repro()
        .args(["store", "merge"])
        .arg("--store")
        .arg(&reference)
        .arg("--from")
        .arg(&src)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "reference merge failed: {status}");
    let want = live_map(&reference);
    assert!(!want.is_empty(), "demo campaign left an empty source store");

    // Crash path: abort after 5 records, leaving a partial destination.
    let crashed = dir.join("crashed.store");
    let status = repro()
        .args(["store", "merge", "--crash-after", "5"])
        .arg("--store")
        .arg(&crashed)
        .arg("--from")
        .arg(&src)
        .status()
        .expect("spawn repro");
    assert!(
        !status.success(),
        "crash-after merge must die, got {status}"
    );
    let partial = live_map(&crashed);
    assert!(
        !partial.is_empty() && partial.len() < want.len(),
        "crashed merge should leave a strict subset ({} of {})",
        partial.len(),
        want.len()
    );

    // Idempotent re-merge over the partial state converges to the
    // never-crashed result.
    let status = repro()
        .args(["store", "merge"])
        .arg("--store")
        .arg(&crashed)
        .arg("--from")
        .arg(&src)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "recovery merge failed: {status}");
    assert_eq!(
        live_map(&crashed),
        want,
        "re-merge after crash diverged from the uninterrupted merge"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_campaign_then_reopen_serves_the_survivors() {
    let dir = tmp_dir("sigkill");
    let want = clean_run(&dir);

    let store = dir.join("killed.store");
    // Slow each evaluation down so the kill lands mid-campaign, then
    // SIGKILL (`Child::kill` on unix: no handler, no cleanup, possibly a
    // torn half-written record at the store's tail).
    let mut child = repro()
        .args(["store", "demo", "--quick", "--eval-delay-ms", "25"])
        .arg("--store")
        .arg(&store)
        .arg("--out")
        .arg(dir.join("killed.json"))
        .spawn()
        .expect("spawn repro");
    let mut saw_progress = false;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        if let Ok(blob) = std::fs::read_to_string(&store) {
            if blob.lines().count() >= 4 {
                saw_progress = true;
                break;
            }
        }
    }
    child.kill().expect("kill repro");
    let status = child.wait().expect("wait repro");
    assert!(!status.success(), "killed run must not exit cleanly");
    assert!(
        saw_progress,
        "run never appended store records before the kill"
    );

    recover_and_check(&dir, &store, &want);
    std::fs::remove_dir_all(&dir).ok();
}

//! Smoke campaign: one shared tuning session driven by a thousand
//! concurrent TCP workers through the readiness event loop, bit-identical
//! to the same seeded campaign driven by sixteen.
//!
//! This is the scale claim and the semantics claim of the event loop in
//! one test: the server must actually *hold* >1000 simultaneous
//! connections (asserted against the live ceiling count, not inferred),
//! and multiplexing a thousand members must not change what the search
//! explores — costs are pure functions of the configuration and reports
//! are applied in proposal order, so the trajectory may not depend on the
//! member count.

use ah_core::param::Param;
use ah_core::server::protocol::StrategyKind;
use ah_core::server::{ServerConfig, TcpHarmonyClient, TcpHarmonyServer};
use ah_core::session::SessionOptions;
use ah_repro::swarm::{SharedWorkerScript, Swarm};
use std::time::{Duration, Instant};

/// Drive one seeded shared-session campaign with `workers` swarm members;
/// returns the serialized history and the peak connection count observed.
fn campaign(workers: usize, budget: usize, seed: u64) -> (String, usize) {
    let server = TcpHarmonyServer::bind_with("127.0.0.1:0", workers + 16, ServerConfig::default())
        .expect("bind");
    let addr = server.local_addr();

    let mut founder = TcpHarmonyClient::connect(addr, "swarm-smoke").unwrap();
    founder.add_param(Param::int("x", 0, 1_000_000, 1)).unwrap();
    founder
        .seal(
            SessionOptions {
                max_evaluations: budget,
                seed,
                ..Default::default()
            },
            StrategyKind::Random,
        )
        .unwrap();
    let session = founder.session_id();

    let scripts: Vec<SharedWorkerScript> = (0..workers)
        .map(|_| SharedWorkerScript::new(session, 2))
        .collect();
    let swarm = Swarm::connect(addr, scripts, 4).expect("swarm connect");
    assert_eq!(swarm.len(), workers);

    // Every worker socket plus the founder must hold a ceiling slot at the
    // same time (adoption by the loop threads is asynchronous; wait, then
    // assert).
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut peak = server.active_connections();
    while peak <= workers && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        peak = peak.max(server.active_connections());
    }
    assert!(
        peak > workers,
        "server held only {peak} concurrent connections, wanted {}",
        workers + 1
    );

    let scripts = swarm.drive();
    let measured: usize = scripts.iter().map(|s| s.measured).sum();
    assert!(
        measured >= budget,
        "workers measured {measured} < budget {budget}"
    );

    let (history, finished) = founder.history().unwrap();
    assert!(finished, "campaign must run to completion");
    founder.close();
    server.shutdown();
    (serde_json::to_string(&history).unwrap(), peak)
}

#[test]
fn thousand_client_campaign_matches_sixteen_client_run() {
    let budget = 1400;
    let seed = 20_060_627; // HPDC'06
    let (small, _) = campaign(16, budget, seed);
    let (big, peak) = campaign(1001, budget, seed);
    assert!(peak >= 1002, "expected >1000 concurrent connections");
    assert_eq!(
        big, small,
        "trajectory changed with member count: the transport leaked \
         scheduling into the search"
    );
}

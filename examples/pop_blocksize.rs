//! POP block-size tuning across node topologies (the paper's §V scenario).
//!
//! For several `nodes × processors-per-node` layouts of the same
//! 480-processor SP-3, tune the ocean-model block size and show that the
//! best block depends on the topology.
//!
//! ```text
//! cargo run --release --example pop_blocksize
//! ```

use ah_clustersim::machines::sp3_seaborg;
use ah_core::offline::OfflineTuner;
use ah_core::session::SessionOptions;
use ah_core::strategy::{NelderMead, NelderMeadOptions, StartPoint};
use ah_pop::{OceanGrid, PopBlockApp};

fn main() {
    // A downscaled ocean grid keeps the example fast; use
    // `OceanGrid::paper_grid()` for the full 3,600x2,400 run.
    let grid = OceanGrid::synthetic(720, 480);
    println!(
        "Ocean grid {}x{}, {:.0}% ocean\n",
        grid.nx,
        grid.ny,
        100.0 * grid.ocean_fraction()
    );

    for (nodes, ppn) in [(6, 16), (12, 8), (24, 4), (48, 2)] {
        let machine = sp3_seaborg(nodes, ppn);
        let mut app = PopBlockApp::new(grid.clone(), machine, 3);
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 50,
            seed: nodes as u64,
            ..Default::default()
        });
        let strategy = NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(vec![180.0, 100.0]),
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(strategy));
        println!(
            "topology {:>3}x{:<2}: default 180x100 -> best {:>3}x{:<3} \
             ({:.3}s -> {:.3}s, {:.1}% better)",
            nodes,
            ppn,
            out.result.best_config.int("bx").unwrap(),
            out.result.best_config.int("by").unwrap(),
            out.default_cost,
            out.result.best_cost,
            out.improvement_pct()
        );
    }
    println!(
        "\nOn the full 3,600x2,400 production grid the best block differs per \
         topology\n(run `cargo run --release -p ah-repro --bin repro -- fig4`)."
    );
}

//! Quickstart: tune a synthetic application with Active Harmony.
//!
//! A fictional "application" whose runtime depends on a buffer size, a
//! thread count, and an algorithm choice is tuned off-line (one short run
//! per iteration), exactly the §III mechanism of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ah_core::prelude::*;

/// The synthetic application: runtime is a bowl over (buffer, threads) with
/// a categorical algorithm factor.
struct ToyApp {
    runs: usize,
}

impl ShortRunApp for ToyApp {
    fn space(&self) -> SearchSpace {
        SearchSpace::builder()
            .int("buffer_kb", 4, 1024, 4)
            .int("threads", 1, 64, 1)
            .enumeration("algorithm", ["heap_sort", "quick_sort", "merge_sort"])
            .build()
            .expect("valid space")
    }

    fn default_config(&self) -> Configuration {
        self.space()
            .configuration_from_strs([
                ("buffer_kb", "4"),
                ("threads", "1"),
                ("algorithm", "heap_sort"),
            ])
            .expect("valid defaults")
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let buf = config.int("buffer_kb").unwrap() as f64;
        let threads = config.int("threads").unwrap() as f64;
        let alg = match config.choice("algorithm").unwrap() {
            "quick_sort" => 1.0,
            "merge_sort" => 1.15,
            _ => 1.6, // heap_sort
        };
        // Sweet spot near 256 KB / 24 threads; oversubscription hurts.
        let exec = alg
            * (5.0
                + (buf.log2() - 8.0).powi(2) * 0.8
                + (threads - 24.0).powi(2) * 0.01
                + if threads > 48.0 {
                    (threads - 48.0) * 0.2
                } else {
                    0.0
                });
        RunMeasurement {
            exec_time: exec,
            warmup_time: 0.5,
            restart_cost: 0.25,
        }
    }
}

fn main() {
    let mut app = ToyApp { runs: 0 };
    println!("Tuning a toy application with Active Harmony (off-line mode)\n");

    let tuner = OfflineTuner::new(SessionOptions {
        max_evaluations: 80,
        seed: 7,
        ..Default::default()
    });
    let outcome = tuner.tune(&mut app, Box::new(NelderMead::default()));

    println!("default configuration : {}", outcome.default_config);
    println!("default runtime       : {:.2}s", outcome.default_cost);
    println!("tuned configuration   : {}", outcome.result.best_config);
    println!("tuned runtime         : {:.2}s", outcome.result.best_cost);
    println!(
        "improvement           : {:.1}%  (speedup {:.2}x)",
        outcome.improvement_pct(),
        outcome.speedup()
    );
    println!(
        "tuning cost           : {} short runs, {:.1}s wall clock (incl. restarts)",
        outcome.result.evaluations, outcome.tuning_time
    );

    // The evaluation history doubles as a Table-I-style trace.
    println!("\nBest-so-far improvement trace:");
    for row in outcome.result.history.parameter_change_trace() {
        if row.changes.is_empty() {
            println!("  iter {:>3}: start at cost {:.2}", row.iteration, row.cost);
        } else {
            let changes: Vec<String> = row
                .changes
                .iter()
                .map(|c| format!("{} {}->{}", c.name, c.from, c.to))
                .collect();
            println!(
                "  iter {:>3}: cost {:.2} ({})",
                row.iteration,
                row.cost,
                changes.join(", ")
            );
        }
    }
}

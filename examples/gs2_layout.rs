//! GS2 data-layout tuning (the paper's §VI scenario).
//!
//! Compares the 120 possible 5-D data layouts on a 128-processor SP-3
//! topology with and without the collision operator, then tunes the layout
//! with Active Harmony and shows the (negrid, ntheta, nodes) follow-up.
//!
//! ```text
//! cargo run --release --example gs2_layout
//! ```

use ah_core::offline::OfflineTuner;
use ah_core::session::SessionOptions;
use ah_core::strategy::NelderMead;
use ah_gs2::{CollisionModel, Gs2Config, Gs2LayoutApp, Gs2Model, Gs2ResolutionApp, Layout};

fn main() {
    let model = Gs2Model::on_seaborg(16, 8); // 8 nodes x 16 procs = 128
    let steps = 10;

    for collision in [CollisionModel::None, CollisionModel::Lorentz] {
        let base = Gs2Config {
            nodes: 8,
            collision,
            ..Gs2Config::paper_default()
        };
        let app = Gs2LayoutApp::new(model.clone(), base, steps);
        println!("collision = {collision:?}");
        for layout in ["lxyes", "yxles", "yxels", "xyles"] {
            let l: Layout = layout.parse().unwrap();
            println!("  {layout}: {:.3}s", app.time_of(l));
        }
        let mut app = app;
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 60,
            seed: 6,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        println!(
            "  tuned: {} at {:.3}s ({:.2}x faster than the lxyes default)\n",
            out.result.best_config.choice("layout").unwrap(),
            out.result.best_cost,
            out.speedup()
        );
    }

    // Follow-up: tune (negrid, ntheta, nodes) at the default layout.
    let linux = Gs2Model::on_linux_cluster(32);
    let base = Gs2Config {
        nodes: 32,
        ..Gs2Config::paper_default()
    };
    let mut app = Gs2ResolutionApp::new(linux, base, steps);
    let tuner = OfflineTuner::new(SessionOptions {
        max_evaluations: 40,
        seed: 7,
        ..Default::default()
    });
    let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
    let best = &out.result.best_config;
    println!(
        "resolution tuning on the Linux cluster: (negrid,ntheta,nodes) \
         (16,26,32) -> ({},{},{}) = {:.1}% faster",
        best.int("negrid").unwrap(),
        best.int("ntheta").unwrap(),
        best.int("nodes").unwrap(),
        out.improvement_pct()
    );
}

//! PETSc-style matrix-decomposition tuning (the paper's §IV scenario).
//!
//! Builds a sparse matrix with uneven dense clusters (the Figure 2(a)
//! structure), sets up a distributed SLES solve on a simulated 4-processor
//! machine, and lets Active Harmony move the decomposition boundaries.
//!
//! ```text
//! cargo run --release --example petsc_decomposition
//! ```

use ah_clustersim::{Machine, NetworkModel};
use ah_core::offline::OfflineTuner;
use ah_core::session::SessionOptions;
use ah_core::strategy::{NelderMead, NelderMeadOptions, StartPoint};
use ah_petsc::tunable::partition_from_config;
use ah_petsc::{SlesDecompositionApp, SlesProblem};
use ah_sparse::gen::{clustered_blocks, ones};
use ah_sparse::RowPartition;

fn main() {
    // A 300-row matrix whose nonzeros cluster into uneven dense blocks.
    let blocks = [30, 110, 25, 60, 45, 30];
    let a = clustered_blocks(&blocks, 0.85, 42);
    let n = a.rows();
    println!(
        "Matrix: {n}x{n}, {} nonzeros, dense clusters {blocks:?}",
        a.nnz()
    );

    let machine = Machine::uniform("cluster 4x1", 4, 1, 1.0, NetworkModel::default());
    let mut problem = SlesProblem::new(a.clone(), ones(n), machine).with_tolerance(1e-12, 5000);
    // Solve the system once for real to get the CG iteration count.
    let iters = problem.iterations();
    println!("CG iterations to 1e-12: {iters}\n");

    let mut app = SlesDecompositionApp::new(problem, 4).with_overheads(1.0, 0.5);
    let even = RowPartition::even(n, 4);
    let start: Vec<f64> = even
        .interior_boundaries()
        .iter()
        .map(|&b| b as f64)
        .collect();

    let tuner = OfflineTuner::new(SessionOptions {
        max_evaluations: 150,
        seed: 1,
        ..Default::default()
    });
    let strategy = NelderMead::new(NelderMeadOptions {
        start: StartPoint::Coords(start),
        ..Default::default()
    });
    let out = tuner.tune(&mut app, Box::new(strategy));

    let tuned = partition_from_config(&out.result.best_config, n, 4);
    println!("default boundaries : {:?}", even.interior_boundaries());
    println!("  nnz per part     : {:?}", even.loads(&a));
    println!("  cross-part nnz   : {}", even.total_cut(&a));
    println!("tuned boundaries   : {:?}", tuned.interior_boundaries());
    println!("  nnz per part     : {:?}", tuned.loads(&a));
    println!("  cross-part nnz   : {}", tuned.total_cut(&a));
    println!(
        "\nsimulated solve time: {:.4}s -> {:.4}s ({:.1}% better, {} tuning runs)",
        out.default_cost,
        out.result.best_cost,
        out.improvement_pct(),
        out.result.evaluations
    );
}

//! On-line vs. off-line tuning of the same parameter (paper §IX future
//! work: "The experiment will compare the results when tuning the
//! parameters online and off-line separately").
//!
//! The application is the driven-cavity solve on a heterogeneous cluster;
//! the tunable is the grid-point distribution. The same parameter is tuned
//! two ways:
//!
//! * **off-line** — each iteration is a fresh representative short run
//!   (20 sweeps) plus restart and warm-up overheads;
//! * **on-line** — the distribution is re-chosen between 2-sweep intervals
//!   of one continuous run: no restart cost, but each measurement is
//!   shorter (noisier in reality, cheaper here).
//!
//! ```text
//! cargo run --release --example online_vs_offline
//! ```

use ah_clustersim::machines::hetero_p4_p2;
use ah_core::prelude::*;
use ah_core::session::SessionOptions;
use ah_petsc::tunable::{boundary_space, partition_from_config, CavityDistributionApp};
use ah_petsc::DrivenCavity;

const RESTART_COST: f64 = 5.0;
const WARMUP: f64 = 2.0;

fn main() {
    let ny = 50;
    let evals = 60;

    // --- Off-line: representative short runs with restart overheads. ---
    let cavity = DrivenCavity::new(50, ny, hetero_p4_p2(), 20);
    let default_time = cavity.run_time(&cavity.default_distribution());
    let mut app = CavityDistributionApp::new(cavity).with_overheads(WARMUP, RESTART_COST);
    let tuner = OfflineTuner::new(SessionOptions {
        max_evaluations: evals,
        seed: 90,
        ..Default::default()
    });
    let offline = tuner.tune(&mut app, Box::new(NelderMead::default()));

    // --- On-line: continuous run, distribution re-chosen per interval. ---
    let cavity = DrivenCavity::new(50, ny, hetero_p4_p2(), 2); // 2-sweep intervals
    let mut online = OnlineTuner::new(
        boundary_space(ny, 4),
        Box::new(NelderMead::default()),
        SessionOptions {
            max_evaluations: evals,
            seed: 91,
            ..Default::default()
        },
    );
    let mut online_wall = WARMUP; // started once, warmed up once
    while !online.settled() {
        let cfg = online.fetch();
        let dist = partition_from_config(&cfg, ny, 4);
        let t = cavity.run_time(&dist);
        online_wall += t;
        online.report(t);
    }
    let (online_best_cfg, _) = online.best().expect("online produced measurements");
    // Score both winners on the same 20-sweep yardstick.
    let yardstick = DrivenCavity::new(50, ny, hetero_p4_p2(), 20);
    let online_final = yardstick.run_time(&partition_from_config(online_best_cfg, ny, 4));
    let offline_final =
        yardstick.run_time(&partition_from_config(&offline.result.best_config, ny, 4));

    println!("Tuning the cavity distribution two ways ({evals} evaluations each):\n");
    println!("default (equal split)        : {default_time:.4}s per 20 sweeps");
    println!(
        "off-line tuned               : {offline_final:.4}s  \
         (tuning cost {:.0}s wall: every iteration restarts the app)",
        offline.tuning_time
    );
    println!(
        "on-line tuned                : {online_final:.4}s  \
         (tuning cost {online_wall:.0}s wall: one run, parameters adjusted live)"
    );
    println!(
        "\nSame final quality ({}), but the on-line campaign avoided {:.0}s of \
         restart/warm-up overhead —\nthe paper's criterion for choosing on-line \
         tuning when a parameter can change at runtime (§VII).",
        if (online_final - offline_final).abs() < 0.15 * offline_final {
            "within 15%"
        } else {
            "differing"
        },
        (RESTART_COST + WARMUP) * evals as f64
    );
}

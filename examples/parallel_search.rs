//! Parallel Rank Ordering: batch-parallel tuning.
//!
//! Nelder–Mead evaluates one configuration at a time; PRO (the parallel
//! simplex developed in the Active Harmony project after this paper)
//! reflects every non-best simplex vertex through the best point each
//! round, so a whole batch of configurations can be measured
//! simultaneously — here on crossbeam threads, on a cluster one candidate
//! per node.
//!
//! ```text
//! cargo run --release --example parallel_search
//! ```

use ah_core::prelude::*;
use ah_core::session::SessionOptions;
use ah_core::strategy::pro::tune_parallel;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An objective expensive enough that parallel evaluation matters.
fn expensive_bowl(cfg: &Configuration) -> f64 {
    let x = cfg.int("x").unwrap() as f64;
    let y = cfg.int("y").unwrap() as f64;
    // Simulate a measurement taking ~2ms.
    std::thread::sleep(std::time::Duration::from_millis(2));
    (x - 37.0).powi(2) + 1.7 * (y + 21.0).powi(2)
}

fn space() -> SearchSpace {
    SearchSpace::builder()
        .int("x", -100, 100, 1)
        .int("y", -100, 100, 1)
        .build()
        .expect("valid space")
}

fn main() {
    let evaluations = AtomicUsize::new(0);
    let counted = |cfg: &Configuration| {
        evaluations.fetch_add(1, Ordering::Relaxed);
        expensive_bowl(cfg)
    };

    // PRO with thread-parallel batches.
    let start = std::time::Instant::now();
    let pro = tune_parallel(&space(), counted, ProOptions::default(), 40, 1);
    let pro_wall = start.elapsed();
    println!(
        "PRO         : best {:>8.1} at {} after {} evaluations in {} rounds ({:.2}s wall)",
        pro.best_cost,
        pro.best_config,
        evaluations.load(Ordering::Relaxed),
        40,
        pro_wall.as_secs_f64()
    );

    // Serial Nelder-Mead with the same total evaluation budget.
    let budget = evaluations.load(Ordering::Relaxed);
    let start = std::time::Instant::now();
    let mut session = TuningSession::new(
        space(),
        Box::new(NelderMead::default()),
        SessionOptions {
            max_evaluations: budget,
            seed: 1,
            ..Default::default()
        },
    );
    let nm = session.run(expensive_bowl);
    let nm_wall = start.elapsed();
    println!(
        "Nelder-Mead : best {:>8.1} at {} after {} evaluations ({:.2}s wall)",
        nm.best_cost,
        nm.best_config,
        nm.evaluations,
        nm_wall.as_secs_f64()
    );

    println!(
        "\nSame evaluation budget; PRO finished in {:.1}x less wall time because \
         each round's\ncandidates ran concurrently — on a cluster deployment that \
         ratio approaches the batch width.",
        nm_wall.as_secs_f64() / pro_wall.as_secs_f64().max(1e-9)
    );
}

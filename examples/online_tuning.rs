//! On-line tuning through the Harmony server (the paper's Figure 1
//! architecture): a long-running application registers its tunable
//! variables with the server, then fetches fresh values and reports
//! observed performance from inside its run loop — no restarts.
//!
//! ```text
//! cargo run --release --example online_tuning
//! ```

use ah_core::param::Param;
use ah_core::prelude::*;
use ah_core::session::SessionOptions;

/// Simulated per-interval runtime of a server application with a tunable
/// read-ahead buffer and worker-pool size (the §II examples of things
/// tunable at runtime).
fn interval_time(readahead_kb: i64, workers: i64) -> f64 {
    let r = readahead_kb as f64;
    let w = workers as f64;
    0.8 + (r.log2() - 7.0).powi(2) * 0.06 + (w - 12.0).powi(2) * 0.004
}

fn main() {
    // The Harmony server runs on its own thread; applications connect over
    // the message protocol.
    let server = HarmonyServer::start();
    let client = server.connect("file-service").expect("server reachable");

    client
        .add_param(Param::int("readahead_kb", 4, 4096, 4))
        .expect("declare readahead");
    client
        .add_param(Param::int("workers", 1, 64, 1))
        .expect("declare workers");
    client
        .seal(
            SessionOptions {
                max_evaluations: 60,
                seed: 99,
                ..Default::default()
            },
            StrategyKind::NelderMead,
        )
        .expect("start tuning");

    println!("application running; Harmony adjusts parameters between intervals\n");
    let mut interval = 0;
    loop {
        let fetched = client.fetch().expect("server reachable");
        let readahead = fetched.config.int("readahead_kb").unwrap();
        let workers = fetched.config.int("workers").unwrap();
        if fetched.finished {
            println!(
                "\ntuning settled after {interval} intervals: \
                 readahead={readahead}KB workers={workers}"
            );
            break;
        }
        let t = interval_time(readahead, workers);
        if interval % 10 == 0 {
            println!(
                "interval {interval:>3}: readahead={readahead:>5}KB workers={workers:>2} \
                 -> {t:.3}s"
            );
        }
        client.report(t).expect("server reachable");
        interval += 1;
    }

    let (best, cost) = client
        .best()
        .expect("server reachable")
        .expect("at least one measurement");
    println!("best configuration: {best} at {cost:.3}s per interval");
    server.shutdown();
}

//! Automating the accuracy/performance tradeoff (paper §VII).
//!
//! "While changing negrid and ntheta may affect the simulation resolution,
//! the dramatic performance gains possible warrant considering using such
//! parameters. […] If these tradeoffs can be quantified, other metrics such
//! as fidelity […] can also be specified and integrated into the objective
//! function so the system can automate this tradeoff."
//!
//! This example tunes GS2's resolution parameters three times with
//! different fidelity weights and shows how the chosen resolution moves:
//! weight 0 races to the coarsest allowed grids; larger weights buy back
//! accuracy at the price of runtime.
//!
//! ```text
//! cargo run --release --example fidelity_tradeoff
//! ```

use ah_core::objective::TradeoffObjective;
use ah_core::prelude::*;
use ah_core::session::SessionOptions;
use ah_gs2::{CollisionModel, Gs2Config, Gs2Model};

fn main() {
    let mut model = Gs2Model::on_linux_cluster(32);
    // Keep the example snappy.
    model.nx = 16;
    model.ny = 8;
    model.nl = 16;
    let base = Gs2Config {
        nodes: 32,
        collision: CollisionModel::None,
        ..Gs2Config::paper_default()
    };

    let space = SearchSpace::builder()
        .int("negrid", 8, 32, 1)
        .int("ntheta", 16, 50, 2)
        .build()
        .expect("valid space");

    println!("fidelity weight -> tuned (negrid, ntheta), runtime, fidelity loss\n");
    for weight in [0.0, 0.3, 1.0, 3.0] {
        let model_ref = &model;
        let cfg_of = |c: &Configuration| Gs2Config {
            negrid: c.int("negrid").unwrap() as usize,
            ntheta: c.int("ntheta").unwrap() as usize,
            ..base
        };
        let mut objective = TradeoffObjective::new(
            move |c: &Configuration| model_ref.run_time(&cfg_of(c), 100),
            move |c: &Configuration| model_ref.fidelity_loss(&cfg_of(c)),
            weight,
        );
        let mut session = TuningSession::new(
            space.clone(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 60,
                seed: 17,
                ..Default::default()
            },
        );
        let result = session.run(|c| Objective::evaluate(&mut objective, c));
        let best = cfg_of(&result.best_config);
        println!(
            "weight {weight:>4}: (negrid {:>2}, ntheta {:>2})  runtime {:>7.3}s  loss {:.3}",
            best.negrid,
            best.ntheta,
            model.run_time(&best, 100),
            model.fidelity_loss(&best),
        );
    }
    println!(
        "\nHigher fidelity weights keep the resolution closer to the reference \
         (negrid 16, ntheta 26)\nwhile weight 0 reproduces the pure-time tuning \
         of Tables III/IV."
    );
}

//! Active Harmony adapters for the PETSc examples.
//!
//! The paper reports that making each PETSc example tunable took "about 10
//! lines of modifications"; these adapters are those ten lines — they expose
//! decomposition boundaries as Harmony integer parameters with the
//! monotone-chain dependent-variable constraint, and implement
//! [`ShortRunApp`] so the off-line tuner can drive representative short
//! runs.

use crate::sles::SlesProblem;
use crate::snes::DrivenCavity;
use ah_clustersim::NoiseModel;
use ah_core::constraint::MonotoneChain;
use ah_core::offline::{RunMeasurement, ShortRunApp};
use ah_core::space::{Configuration, SearchSpace};
use ah_sparse::RowPartition;

/// Name of the `i`-th interior boundary parameter.
fn boundary_name(i: usize) -> String {
    format!("b{}", i + 1)
}

/// Extract a [`RowPartition`] from a configuration of boundary parameters.
pub fn partition_from_config(cfg: &Configuration, n: usize, parts: usize) -> RowPartition {
    let bounds: Vec<usize> = (0..parts - 1)
        .map(|i| cfg.int(&boundary_name(i)).expect("boundary param present") as usize)
        .collect();
    RowPartition::from_boundaries(n, &bounds)
}

/// Build the boundary search space for splitting `n` rows into `parts`.
pub fn boundary_space(n: usize, parts: usize) -> SearchSpace {
    assert!(parts >= 2, "tuning needs at least two partitions");
    let mut builder = SearchSpace::builder();
    for i in 0..parts - 1 {
        builder = builder.int(boundary_name(i), 1, (n - 1) as i64, 1);
    }
    let names: Vec<String> = (0..parts - 1).map(boundary_name).collect();
    builder
        .constraint(MonotoneChain::new(names))
        .build()
        .expect("boundary space is valid")
}

/// The SLES matrix-decomposition example as a tunable application
/// (paper Figure 2).
pub struct SlesDecompositionApp {
    problem: SlesProblem,
    parts: usize,
    noise: NoiseModel,
    /// Warm-up charged per representative run (seconds).
    pub warmup_time: f64,
    /// Restart cost charged per configuration change (seconds).
    pub restart_cost: f64,
    runs: usize,
}

impl SlesDecompositionApp {
    /// Wrap a problem; `parts` must not exceed the machine's processors.
    pub fn new(problem: SlesProblem, parts: usize) -> Self {
        assert!(parts <= problem.machine().total_procs());
        SlesDecompositionApp {
            problem,
            parts,
            noise: NoiseModel::none(),
            warmup_time: 0.0,
            restart_cost: 0.0,
            runs: 0,
        }
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = NoiseModel::new(sigma, seed);
        self
    }

    /// Set per-run overheads (charged to tuning time, paper §III).
    pub fn with_overheads(mut self, warmup: f64, restart: f64) -> Self {
        self.warmup_time = warmup;
        self.restart_cost = restart;
        self
    }

    /// Number of short runs performed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Direct access to the wrapped problem.
    pub fn problem_mut(&mut self) -> &mut SlesProblem {
        &mut self.problem
    }

    /// Simulated time of the given partition, without noise or overheads.
    pub fn time_of(&mut self, part: &RowPartition) -> f64 {
        self.problem.solve(part).time
    }
}

impl ShortRunApp for SlesDecompositionApp {
    fn space(&self) -> SearchSpace {
        boundary_space(self.problem.unknowns(), self.parts)
    }

    fn default_config(&self) -> Configuration {
        let n = self.problem.unknowns();
        let even = RowPartition::even(n, self.parts);
        let space = self.space();
        let coords: Vec<f64> = even
            .interior_boundaries()
            .iter()
            .map(|&b| b as f64)
            .collect();
        space.project(&coords)
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let part = partition_from_config(config, self.problem.unknowns(), self.parts);
        let time = self.noise.apply(self.problem.solve(&part).time);
        RunMeasurement {
            exec_time: time,
            warmup_time: self.warmup_time,
            restart_cost: self.restart_cost,
        }
    }
}

/// The SNES driven-cavity computation-distribution example as a tunable
/// application (paper Figure 3).
pub struct CavityDistributionApp {
    cavity: DrivenCavity,
    noise: NoiseModel,
    /// Warm-up charged per representative run (seconds).
    pub warmup_time: f64,
    /// Restart cost charged per configuration change (seconds).
    pub restart_cost: f64,
    runs: usize,
}

impl CavityDistributionApp {
    /// Wrap a driven-cavity model.
    pub fn new(cavity: DrivenCavity) -> Self {
        CavityDistributionApp {
            cavity,
            noise: NoiseModel::none(),
            warmup_time: 0.0,
            restart_cost: 0.0,
            runs: 0,
        }
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = NoiseModel::new(sigma, seed);
        self
    }

    /// Set per-run overheads.
    pub fn with_overheads(mut self, warmup: f64, restart: f64) -> Self {
        self.warmup_time = warmup;
        self.restart_cost = restart;
        self
    }

    /// Number of short runs performed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The wrapped model.
    pub fn cavity(&self) -> &DrivenCavity {
        &self.cavity
    }
}

impl ShortRunApp for CavityDistributionApp {
    fn space(&self) -> SearchSpace {
        boundary_space(self.cavity.ny, self.cavity.machine.total_procs())
    }

    fn default_config(&self) -> Configuration {
        let even = self.cavity.default_distribution();
        let space = self.space();
        let coords: Vec<f64> = even
            .interior_boundaries()
            .iter()
            .map(|&b| b as f64)
            .collect();
        space.project(&coords)
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let parts = self.cavity.machine.total_procs();
        let dist = partition_from_config(config, self.cavity.ny, parts);
        let time = self.noise.apply(self.cavity.run_time(&dist));
        RunMeasurement {
            exec_time: time,
            warmup_time: self.warmup_time,
            restart_cost: self.restart_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_clustersim::machines::{hetero_p4_p2, homo_p4};
    use ah_clustersim::{Machine, NetworkModel};
    use ah_core::offline::OfflineTuner;
    use ah_core::session::SessionOptions;
    use ah_core::strategy::{NelderMead, NelderMeadOptions, StartPoint};
    use ah_sparse::gen::{clustered_blocks, ones};

    #[test]
    fn boundary_space_has_chain_constraint() {
        let space = boundary_space(100, 4);
        assert_eq!(space.dims(), 3);
        let cfg = space.project(&[80.0, 20.0, 50.0]);
        let b1 = cfg.int("b1").unwrap();
        let b2 = cfg.int("b2").unwrap();
        let b3 = cfg.int("b3").unwrap();
        assert!(b1 <= b2 && b2 <= b3);
    }

    #[test]
    fn default_config_is_even_split() {
        let a = clustered_blocks(&[20, 20, 20, 20], 0.5, 1);
        let m = Machine::uniform("m", 4, 1, 1.0, NetworkModel::default());
        let app = SlesDecompositionApp::new(SlesProblem::new(a, ones(80), m), 4);
        let cfg = app.default_config();
        assert_eq!(cfg.int("b1"), Some(20));
        assert_eq!(cfg.int("b2"), Some(40));
        assert_eq!(cfg.int("b3"), Some(60));
    }

    #[test]
    fn tuning_sles_decomposition_improves_on_default() {
        // Uneven dense blocks make the even split suboptimal.
        let a = clustered_blocks(&[10, 50, 10, 30], 0.9, 2);
        let m = Machine::uniform("m", 4, 1, 1.0, NetworkModel::default());
        let mut problem = SlesProblem::new(a, ones(100), m);
        problem.set_iterations(50);
        let mut app = SlesDecompositionApp::new(problem, 4);
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 120,
            seed: 41,
            ..Default::default()
        });
        let default_coords: Vec<f64> = vec![25.0, 50.0, 75.0];
        let strategy = NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(default_coords),
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(strategy));
        assert!(
            out.improvement_pct() > 0.0,
            "tuned {} vs default {}",
            out.result.best_cost,
            out.default_cost
        );
    }

    #[test]
    fn tuning_cavity_on_hetero_machine_beats_default() {
        let cavity = DrivenCavity::new(50, 50, hetero_p4_p2(), 20);
        let mut app = CavityDistributionApp::new(cavity);
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 120,
            seed: 42,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        assert!(
            out.improvement_pct() > 15.0,
            "improvement {}%",
            out.improvement_pct()
        );
    }

    #[test]
    fn homo_machine_gains_far_less_than_hetero() {
        // Figure 3's point: the equal default is close to right on
        // homogeneous nodes, badly wrong on heterogeneous ones. Tuning may
        // still shave a little off the homogeneous time (communication-aware
        // rebalancing of edge vs. interior strips) but the heterogeneous
        // gain must dominate.
        let tune = |machine: ah_clustersim::Machine, seed: u64| {
            let cavity = DrivenCavity::new(40, 40, machine, 10);
            let mut app = CavityDistributionApp::new(cavity);
            let tuner = OfflineTuner::new(SessionOptions {
                max_evaluations: 100,
                seed,
                ..Default::default()
            });
            tuner
                .tune(&mut app, Box::new(NelderMead::default()))
                .improvement_pct()
        };
        let homo_gain = tune(homo_p4(), 43);
        let hetero_gain = tune(hetero_p4_p2(), 44);
        assert!(
            hetero_gain > homo_gain + 10.0,
            "hetero {hetero_gain}% vs homo {homo_gain}%"
        );
        assert!(
            homo_gain < 25.0,
            "homo gain suspiciously large: {homo_gain}%"
        );
    }

    #[test]
    fn overheads_are_reported_per_run() {
        let cavity = DrivenCavity::new(20, 20, homo_p4(), 5);
        let mut app = CavityDistributionApp::new(cavity).with_overheads(2.0, 3.0);
        let cfg = app.default_config();
        let m = app.run_short(&cfg);
        assert_eq!(m.warmup_time, 2.0);
        assert_eq!(m.restart_cost, 3.0);
        assert_eq!(app.runs(), 1);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let a = clustered_blocks(&[20, 20], 0.5, 1);
        let m = Machine::uniform("m", 2, 1, 1.0, NetworkModel::default());
        let make = || {
            let mut p = SlesProblem::new(a.clone(), ones(40), m.clone());
            p.set_iterations(10);
            SlesDecompositionApp::new(p, 2).with_noise(0.05, 9)
        };
        let mut app1 = make();
        let mut app2 = make();
        let cfg = app1.default_config();
        assert_eq!(
            app1.run_short(&cfg).exec_time,
            app2.run_short(&cfg).exec_time
        );
    }
}

//! SNES: nonlinear solvers and the driven-cavity distribution model.
//!
//! Two pieces live here:
//!
//! 1. A *real* Newton–Krylov solver ([`newton_solve`]) over a
//!    [`NonlinearProblem`], with a built-in nonlinear Poisson test problem
//!    ([`NonlinearPoisson`]) — the numerical substrate a SNES user would
//!    call.
//! 2. The *performance model* for the paper's second PETSc experiment
//!    ([`DrivenCavity`]): a 2-D driven-cavity grid whose rows of grid points
//!    are distributed across processors; per-processor compute scales with
//!    owned points and node speed, neighbours exchange boundary rows, and a
//!    global reduction closes each Newton step. On heterogeneous machines
//!    the optimal distribution gives fast nodes more rows (Figure 3b).

use ah_clustersim::Machine;
use ah_sparse::{cg_solve, CsrMatrix, RowPartition};

/// Gflop per grid point per nonlinear sweep (stencil + upwinding work).
const GFLOP_PER_POINT: f64 = 2.0e-6;
/// Bytes exchanged per boundary grid point per sweep.
const BYTES_PER_BOUNDARY_POINT: f64 = 32.0;

/// A nonlinear system `F(u) = 0` with an explicitly assembled Jacobian.
pub trait NonlinearProblem {
    /// Problem size.
    fn unknowns(&self) -> usize;
    /// Residual `F(u)`.
    fn residual(&self, u: &[f64], out: &mut [f64]);
    /// Jacobian `F'(u)` as a sparse matrix.
    fn jacobian(&self, u: &[f64]) -> CsrMatrix;
}

/// Result of a Newton solve.
#[derive(Debug, Clone)]
pub struct NewtonOutcome {
    /// The solution iterate.
    pub u: Vec<f64>,
    /// Newton iterations performed.
    pub newton_iterations: usize,
    /// Total inner (CG) iterations.
    pub linear_iterations: usize,
    /// Final residual norm.
    pub residual_norm: f64,
    /// Whether `‖F(u)‖` dropped below the tolerance.
    pub converged: bool,
}

/// Newton's method with CG inner solves (Jacobians here are SPD).
pub fn newton_solve<P: NonlinearProblem>(
    problem: &P,
    tol: f64,
    max_newton: usize,
) -> NewtonOutcome {
    let n = problem.unknowns();
    let mut u = vec![0.0; n];
    let mut f = vec![0.0; n];
    let mut linear_iterations = 0;
    for k in 0..max_newton {
        problem.residual(&u, &mut f);
        let fnorm = ah_sparse::vec_ops::norm2(&f);
        if fnorm <= tol {
            return NewtonOutcome {
                u,
                newton_iterations: k,
                linear_iterations,
                residual_norm: fnorm,
                converged: true,
            };
        }
        let j = problem.jacobian(&u);
        // Solve J δ = −F.
        let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
        let lin = cg_solve(&j, &rhs, 1e-10, 10 * n, 1);
        linear_iterations += lin.iterations;
        for (ui, di) in u.iter_mut().zip(&lin.x) {
            *ui += di;
        }
    }
    problem.residual(&u, &mut f);
    let fnorm = ah_sparse::vec_ops::norm2(&f);
    NewtonOutcome {
        u,
        newton_iterations: max_newton,
        linear_iterations,
        residual_norm: fnorm,
        converged: fnorm <= tol,
    }
}

/// `−Δu + u³ = f` on an `nx × ny` grid with homogeneous Dirichlet
/// boundaries — a standard SNES-style nonlinear PDE test problem.
#[derive(Debug, Clone)]
pub struct NonlinearPoisson {
    nx: usize,
    ny: usize,
    f: Vec<f64>,
}

impl NonlinearPoisson {
    /// Constant forcing `f ≡ strength`.
    pub fn new(nx: usize, ny: usize, strength: f64) -> Self {
        NonlinearPoisson {
            nx,
            ny,
            f: vec![strength; nx * ny],
        }
    }
}

impl NonlinearProblem for NonlinearPoisson {
    fn unknowns(&self) -> usize {
        self.nx * self.ny
    }

    fn residual(&self, u: &[f64], out: &mut [f64]) {
        let (nx, ny) = (self.nx, self.ny);
        for j in 0..ny {
            for i in 0..nx {
                let r = j * nx + i;
                let mut lap = 4.0 * u[r];
                if i > 0 {
                    lap -= u[r - 1];
                }
                if i + 1 < nx {
                    lap -= u[r + 1];
                }
                if j > 0 {
                    lap -= u[r - nx];
                }
                if j + 1 < ny {
                    lap -= u[r + nx];
                }
                out[r] = lap + u[r].powi(3) - self.f[r];
            }
        }
    }

    fn jacobian(&self, u: &[f64]) -> CsrMatrix {
        let (nx, ny) = (self.nx, self.ny);
        let n = nx * ny;
        let mut t = Vec::with_capacity(5 * n);
        for j in 0..ny {
            for i in 0..nx {
                let r = j * nx + i;
                t.push((r, r, 4.0 + 3.0 * u[r] * u[r]));
                if i > 0 {
                    t.push((r, r - 1, -1.0));
                }
                if i + 1 < nx {
                    t.push((r, r + 1, -1.0));
                }
                if j > 0 {
                    t.push((r, r - nx, -1.0));
                }
                if j + 1 < ny {
                    t.push((r, r + nx, -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }
}

/// Performance model of the 2-D driven-cavity SNES example under a tunable
/// grid-point distribution (1-D strips of grid rows per processor).
#[derive(Debug, Clone)]
pub struct DrivenCavity {
    /// Grid width (points per grid row).
    pub nx: usize,
    /// Grid height (rows to distribute).
    pub ny: usize,
    /// Machine the solve runs on.
    pub machine: Machine,
    /// Nonlinear sweeps per representative run (Newton × inner sweeps).
    pub sweeps: usize,
}

impl DrivenCavity {
    /// Problem over `nx × ny = total points` distributed across the machine.
    pub fn new(nx: usize, ny: usize, machine: Machine, sweeps: usize) -> Self {
        assert!(machine.total_procs() >= 1);
        DrivenCavity {
            nx,
            ny,
            machine,
            sweeps,
        }
    }

    /// Total grid points.
    pub fn points(&self) -> usize {
        self.nx * self.ny
    }

    /// The default, equal-size distributed-array decomposition.
    pub fn default_distribution(&self) -> RowPartition {
        RowPartition::even(self.ny, self.machine.total_procs())
    }

    /// Simulated execution time for a given distribution of grid rows.
    ///
    /// The sweep synchronises only with strip *neighbours* (halo exchange),
    /// not at a global barrier, so slack from lightly loaded processors is
    /// partially absorbed by the pipeline. The per-sweep span is therefore
    /// modelled as a high-order power mean of the per-processor times —
    /// between the mean and the max — rather than a hard `max`. The global
    /// reduction that closes each nonlinear iteration is added on top.
    pub fn run_time(&self, dist: &RowPartition) -> f64 {
        assert_eq!(
            dist.rows(),
            self.ny,
            "distribution must cover all grid rows"
        );
        let p = self.machine.total_procs();
        assert!(dist.parts() <= p, "more parts than processors");

        let rows = dist.row_counts();
        let halo_bytes = self.nx as f64 * BYTES_PER_BOUNDARY_POINT;
        let mut per_proc = vec![0.0f64; p];
        for (i, &r) in rows.iter().enumerate() {
            let compute = (r * self.nx) as f64 * GFLOP_PER_POINT / self.machine.speed_of(i);
            let mut comm = 0.0;
            if r > 0 {
                if i > 0 && rows[i - 1] > 0 {
                    comm += self
                        .machine
                        .network
                        .msg_time(halo_bytes, self.machine.same_node(i - 1, i));
                }
                if i + 1 < rows.len() && rows[i + 1] > 0 {
                    comm += self
                        .machine
                        .network
                        .msg_time(halo_bytes, self.machine.same_node(i, i + 1));
                }
            }
            per_proc[i] = compute + comm;
        }
        const Q: f64 = 8.0;
        let active = per_proc.iter().filter(|&&t| t > 0.0).count().max(1) as f64;
        let span = (per_proc.iter().map(|t| t.powf(Q)).sum::<f64>() / active).powf(1.0 / Q);
        let reduce = self
            .machine
            .network
            .allreduce_time(8.0, p, self.machine.node_count());
        (span + reduce) * self.sweeps as f64
    }

    /// The distribution proportional to processor speeds — the analytic
    /// optimum the tuner should approach on heterogeneous machines.
    pub fn speed_proportional_distribution(&self) -> RowPartition {
        let p = self.machine.total_procs();
        let total_speed: f64 = (0..p).map(|q| self.machine.loaded_speed_of(q)).sum();
        let mut bounds = Vec::with_capacity(p - 1);
        let mut acc = 0.0;
        for q in 0..p - 1 {
            acc += self.machine.loaded_speed_of(q);
            bounds.push(((acc / total_speed) * self.ny as f64).round() as usize);
        }
        RowPartition::from_boundaries(self.ny, &bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_clustersim::machines::{hetero_p4_p2, homo_p4};

    #[test]
    fn newton_solves_nonlinear_poisson() {
        let p = NonlinearPoisson::new(10, 10, 5.0);
        let out = newton_solve(&p, 1e-9, 30);
        assert!(out.converged, "residual={}", out.residual_norm);
        assert!(out.newton_iterations >= 2);
        // The solution must be positive in the interior for positive forcing.
        assert!(out.u[5 * 10 + 5] > 0.0);
    }

    #[test]
    fn newton_converges_faster_with_weaker_nonlinearity() {
        let strong = newton_solve(&NonlinearPoisson::new(8, 8, 50.0), 1e-9, 50);
        let weak = newton_solve(&NonlinearPoisson::new(8, 8, 0.5), 1e-9, 50);
        assert!(weak.newton_iterations <= strong.newton_iterations);
    }

    #[test]
    fn homogeneous_machine_prefers_equal_split() {
        let cavity = DrivenCavity::new(50, 50, homo_p4(), 10);
        let even = cavity.default_distribution();
        let skewed = RowPartition::from_boundaries(50, &[5, 10, 15]);
        assert!(cavity.run_time(&even) < cavity.run_time(&skewed));
    }

    #[test]
    fn heterogeneous_machine_prefers_speed_proportional_split() {
        let cavity = DrivenCavity::new(50, 50, hetero_p4_p2(), 10);
        let even = cavity.default_distribution();
        let prop = cavity.speed_proportional_distribution();
        let t_even = cavity.run_time(&even);
        let t_prop = cavity.run_time(&prop);
        assert!(
            t_prop < t_even,
            "proportional {t_prop} should beat even {t_even}"
        );
        // Fast nodes (procs 2,3) must own more rows than slow nodes.
        let rows = prop.row_counts();
        assert!(rows[2] > rows[0], "{rows:?}");
    }

    #[test]
    fn speed_proportional_covers_all_rows() {
        let cavity = DrivenCavity::new(10, 97, hetero_p4_p2(), 1);
        let prop = cavity.speed_proportional_distribution();
        assert_eq!(prop.row_counts().iter().sum::<usize>(), 97);
    }

    #[test]
    fn run_time_scales_with_sweeps() {
        let cavity1 = DrivenCavity::new(20, 20, homo_p4(), 1);
        let cavity10 = DrivenCavity::new(20, 20, homo_p4(), 10);
        let d = cavity1.default_distribution();
        let t1 = cavity1.run_time(&d);
        let t10 = cavity10.run_time(&d);
        assert!((t10 - 10.0 * t1).abs() < 1e-12);
    }
}

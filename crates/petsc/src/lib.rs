//! # ah-petsc — a PETSc-like solver facade over the simulated machine
//!
//! Reproduces the two PETSc case studies of the HPDC'06 Active Harmony
//! paper:
//!
//! * [`sles`] — a distributed linear-equation-solver object whose execution
//!   time on a simulated [`Machine`](ah_clustersim::Machine) is derived from
//!   the *real* sparse-matrix structure and a tunable row decomposition
//!   (paper Figure 2: matrix-decomposition tuning, 18% improvement on a
//!   21,025² system over 32 processors);
//! * [`snes`] — a Newton nonlinear solver plus the driven-cavity
//!   computation-distribution model (paper Figure 3: grid-point distribution
//!   across homogeneous vs. heterogeneous nodes, 11.5% on 40,000 points);
//! * [`tunable`] — adapters exposing both as Active Harmony
//!   [`ShortRunApp`](ah_core::offline::ShortRunApp)s with the paper's
//!   dependent-variable boundary constraints.

#![warn(missing_docs)]

pub mod sles;
pub mod snes;
pub mod tunable;

pub use sles::{SlesProblem, SlesRun};
pub use snes::{newton_solve, DrivenCavity, NewtonOutcome, NonlinearPoisson};
pub use tunable::{CavityDistributionApp, SlesDecompositionApp};

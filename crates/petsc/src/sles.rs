//! SLES: the distributed linear-equation-solver object.
//!
//! A [`SlesProblem`] bundles a real sparse matrix, a right-hand side, and a
//! simulated machine. Solving under a given [`RowPartition`] produces both a
//! *numerical* outcome (the CG iteration count on the actual matrix) and a
//! *performance* outcome (the simulated distributed execution time). The
//! decomposition affects only the performance: per-iteration work per
//! processor is the partition's local nonzeros, and the halo exchange is the
//! partition's cross-boundary nonzeros — exactly the data-locality trade-off
//! Figure 2 illustrates.

use ah_clustersim::{execute, Collective, Machine, Message, Superstep};
use ah_sparse::{cg_solve, CsrMatrix, RowPartition};
use std::collections::HashMap;

/// Work per matrix nonzero per CG iteration, in Gflop (2 flops for the
/// multiply-add, plus amortised vector-op traffic).
const GFLOP_PER_NNZ: f64 = 4.0e-9;
/// Extra per-row vector work per iteration (axpy/dot), in Gflop.
const GFLOP_PER_ROW: f64 = 1.0e-8;
/// Bytes per exchanged halo value.
const BYTES_PER_VALUE: f64 = 8.0;

/// A linear system plus the machine it is solved on.
#[derive(Debug, Clone)]
pub struct SlesProblem {
    matrix: CsrMatrix,
    rhs: Vec<f64>,
    machine: Machine,
    tol: f64,
    max_iters: usize,
    cached_iterations: Option<usize>,
}

/// Outcome of one distributed solve.
#[derive(Debug, Clone)]
pub struct SlesRun {
    /// Simulated distributed execution time in seconds.
    pub time: f64,
    /// CG iterations (independent of the decomposition).
    pub iterations: usize,
    /// Simulated time spent computing on the critical path.
    pub compute_time: f64,
    /// Simulated time spent communicating on the critical path.
    pub comm_time: f64,
    /// Load imbalance of the decomposition (1.0 = perfect).
    pub imbalance: f64,
}

impl SlesProblem {
    /// Create a problem. The machine must have at least as many processors
    /// as the partitions used later.
    pub fn new(matrix: CsrMatrix, rhs: Vec<f64>, machine: Machine) -> Self {
        assert_eq!(matrix.rows(), rhs.len());
        SlesProblem {
            matrix,
            rhs,
            machine,
            tol: 1e-6,
            max_iters: 5000,
            cached_iterations: None,
        }
    }

    /// Override the solver tolerance (default `1e-6`).
    pub fn with_tolerance(mut self, tol: f64, max_iters: usize) -> Self {
        self.tol = tol;
        self.max_iters = max_iters;
        self
    }

    /// The matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of unknowns.
    pub fn unknowns(&self) -> usize {
        self.matrix.rows()
    }

    /// CG iteration count on the real matrix (cached across calls: the
    /// decomposition does not change the numerics).
    pub fn iterations(&mut self) -> usize {
        if let Some(it) = self.cached_iterations {
            return it;
        }
        let out = cg_solve(&self.matrix, &self.rhs, self.tol, self.max_iters, 1);
        let it = out.iterations.max(1);
        self.cached_iterations = Some(it);
        it
    }

    /// Pin the iteration count (used for very large synthetic problems where
    /// running the numeric solve inside a tuning loop would be wasteful).
    pub fn set_iterations(&mut self, iterations: usize) {
        self.cached_iterations = Some(iterations.max(1));
    }

    /// Pairwise halo volumes `((src part, dst part) → values needed)`:
    /// for each nonzero `(r, c)` with `owner(r) = i ≠ j = owner(c)`,
    /// part `j` must send `x[c]` to part `i` each iteration. Distinct
    /// columns are counted once (vector entries are gathered, not nonzeros).
    pub fn halo_volumes(&self, part: &RowPartition) -> HashMap<(usize, usize), usize> {
        let mut seen: HashMap<(usize, usize), std::collections::HashSet<usize>> = HashMap::new();
        for i in 0..part.parts() {
            for r in part.range(i) {
                let (cols, _) = self.matrix.row(r);
                for &c in cols {
                    let j = part.owner(c);
                    if j != i {
                        seen.entry((j, i)).or_default().insert(c);
                    }
                }
            }
        }
        seen.into_iter().map(|(k, v)| (k, v.len())).collect()
    }

    /// Simulate a distributed CG solve under the given decomposition.
    /// Part `i` runs on processor `i` of the machine.
    pub fn solve(&mut self, part: &RowPartition) -> SlesRun {
        assert_eq!(part.rows(), self.matrix.rows(), "partition size mismatch");
        assert!(
            part.parts() <= self.machine.total_procs(),
            "machine too small for {} partitions",
            part.parts()
        );
        let iterations = self.iterations();
        let loads = part.loads(&self.matrix);
        let rows = part.row_counts();
        let nprocs = self.machine.total_procs();

        let mut compute = vec![0.0f64; nprocs];
        for (i, (&nnz, &nrows)) in loads.iter().zip(&rows).enumerate() {
            compute[i] = nnz as f64 * GFLOP_PER_NNZ + nrows as f64 * GFLOP_PER_ROW;
        }
        // Hash order is per-process-random; fix (src, dst) order so the
        // simulated time is bit-identical run to run (float sums are
        // order-sensitive at the ulp).
        let mut halos: Vec<((usize, usize), usize)> = self.halo_volumes(part).into_iter().collect();
        halos.sort_unstable_by_key(|&(k, _)| k);
        let messages: Vec<Message> = halos
            .into_iter()
            .map(|((src, dst), vals)| Message {
                src,
                dst,
                bytes: vals as f64 * BYTES_PER_VALUE,
            })
            .collect();

        // One representative superstep per CG iteration: SpMV compute +
        // halo exchange + two 8-byte allreduces (the dot products).
        let step = Superstep {
            compute,
            messages,
            collective: Some(Collective::AllReduce { bytes: 16.0 }),
        };
        let one = execute(&self.machine, &[step]);
        SlesRun {
            time: one.total_time * iterations as f64,
            iterations,
            compute_time: one.compute_time * iterations as f64,
            comm_time: one.comm_time * iterations as f64,
            imbalance: part.load_imbalance(&self.matrix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_clustersim::NetworkModel;
    use ah_sparse::gen::{clustered_blocks, laplacian_2d, ones};

    fn machine(procs: usize) -> Machine {
        Machine::uniform("test", procs, 1, 1.0, NetworkModel::default())
    }

    #[test]
    fn iteration_count_is_partition_independent() {
        let a = laplacian_2d(10, 10);
        let b = ones(a.rows());
        let mut p = SlesProblem::new(a, b, machine(4));
        let even = RowPartition::even(100, 4);
        let uneven = RowPartition::from_boundaries(100, &[10, 50, 90]);
        let r1 = p.solve(&even);
        let r2 = p.solve(&uneven);
        assert_eq!(r1.iterations, r2.iterations);
        assert!(r1.iterations > 1);
    }

    #[test]
    fn balanced_split_beats_skewed_split_on_uniform_matrix() {
        let a = laplacian_2d(20, 20);
        let b = ones(a.rows());
        let mut p = SlesProblem::new(a, b, machine(4));
        let even = RowPartition::even(400, 4);
        let skewed = RowPartition::from_boundaries(400, &[10, 20, 30]);
        assert!(p.solve(&even).time < p.solve(&skewed).time);
    }

    #[test]
    fn block_aligned_split_beats_even_split_on_clustered_matrix() {
        // Figure 2's lesson: hug the dense blocks.
        let a = clustered_blocks(&[10, 50, 10, 30], 0.9, 7);
        let b = ones(a.rows());
        let mut p = SlesProblem::new(a, b, machine(4));
        p.set_iterations(100);
        // Even split cuts the dense 50-block (boundary at 25, 50, 75).
        let even = RowPartition::even(100, 4);
        // Aligned split at block boundaries (10, 60, 70) — less cut but a
        // heavier middle part; with the paper's matrices the cut dominates.
        let aligned = RowPartition::from_boundaries(100, &[10, 60, 70]);
        let re = p.solve(&even);
        let ra = p.solve(&aligned);
        assert!(
            ra.comm_time < re.comm_time,
            "aligned comm {} !< even comm {}",
            ra.comm_time,
            re.comm_time
        );
    }

    #[test]
    fn halo_volume_counts_distinct_columns() {
        // 1-D chain: each boundary contributes exactly 1 remote column in
        // each direction.
        let a = laplacian_2d(10, 1);
        let b = ones(10);
        let p = SlesProblem::new(a, b, machine(2));
        let part = RowPartition::even(10, 2);
        let vols = p.halo_volumes(&part);
        assert_eq!(vols.get(&(0, 1)), Some(&1));
        assert_eq!(vols.get(&(1, 0)), Some(&1));
    }

    #[test]
    fn pinned_iterations_skip_numeric_solve() {
        let a = laplacian_2d(8, 8);
        let b = ones(a.rows());
        let mut p = SlesProblem::new(a, b, machine(2));
        p.set_iterations(42);
        let r = p.solve(&RowPartition::even(64, 2));
        assert_eq!(r.iterations, 42);
    }

    #[test]
    #[should_panic(expected = "machine too small")]
    fn too_many_parts_panics() {
        let a = laplacian_2d(4, 4);
        let b = ones(16);
        let mut p = SlesProblem::new(a, b, machine(2));
        p.solve(&RowPartition::even(16, 4));
    }
}

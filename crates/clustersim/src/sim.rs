//! BSP-style superstep executor with per-processor clocks.
//!
//! A [`Program`] is a sequence of [`Superstep`]s. Within a superstep every
//! processor performs its local compute, then point-to-point messages and an
//! optional collective complete the step; the step ends at a synchronisation
//! point (as in the Bulk Synchronous Parallel model). Execution time of a
//! step is the maximum over processors of `compute + comm`, plus the
//! collective; total time is the sum over steps. The executor also reports
//! compute/communication breakdowns and a load-imbalance metric — the
//! quantities Active Harmony's objective functions are made of.

use crate::topology::{Machine, ProcId};
use serde::{Deserialize, Serialize};

/// A point-to-point message within a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Sending processor.
    pub src: ProcId,
    /// Receiving processor.
    pub dst: ProcId,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// A collective operation closing a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Collective {
    /// Allreduce of `bytes` per processor.
    AllReduce {
        /// Contribution size per processor in bytes.
        bytes: f64,
    },
    /// Alltoall with `bytes_per_pair` between every processor pair.
    AllToAll {
        /// Bytes exchanged per ordered processor pair.
        bytes_per_pair: f64,
    },
    /// Pure synchronisation.
    Barrier,
}

/// One bulk-synchronous step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Superstep {
    /// Gflop of local work per processor (index = processor id).
    pub compute: Vec<f64>,
    /// Point-to-point messages.
    pub messages: Vec<Message>,
    /// Optional closing collective.
    pub collective: Option<Collective>,
}

impl Superstep {
    /// A step with only compute.
    pub fn compute_only(compute: Vec<f64>) -> Self {
        Superstep {
            compute,
            messages: Vec::new(),
            collective: None,
        }
    }
}

/// A whole program: an ordered list of supersteps.
pub type Program = Vec<Superstep>;

/// Execution-time breakdown returned by [`execute`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total wall-clock seconds.
    pub total_time: f64,
    /// Seconds the critical path spent computing.
    pub compute_time: f64,
    /// Seconds the critical path spent in messages + collectives.
    pub comm_time: f64,
    /// Busy compute seconds per processor (for load-balance analysis).
    pub busy: Vec<f64>,
}

impl SimResult {
    /// Average processor utilisation: mean busy compute time over the
    /// makespan (communication and waiting count as idle).
    pub fn utilization(&self) -> f64 {
        if self.busy.is_empty() || self.total_time <= 0.0 {
            return 0.0;
        }
        let mean = self.busy.iter().sum::<f64>() / self.busy.len() as f64;
        (mean / self.total_time).clamp(0.0, 1.0)
    }

    /// A one-line-per-processor utilisation chart (`#` = busy fraction),
    /// useful for eyeballing load balance in examples and logs.
    pub fn utilization_chart(&self, width: usize) -> String {
        let mut out = String::new();
        for (p, &b) in self.busy.iter().enumerate() {
            let frac = if self.total_time > 0.0 {
                (b / self.total_time).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let n = (frac * width as f64).round() as usize;
            out.push_str(&format!(
                "p{p:<3} |{}{}| {:.0}%\n",
                "#".repeat(n),
                " ".repeat(width - n),
                frac * 100.0
            ));
        }
        out
    }

    /// Load imbalance: `max(busy)/mean(busy)`; `1.0` is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        if self.busy.is_empty() {
            return 1.0;
        }
        let max = self.busy.iter().cloned().fold(0.0, f64::max);
        let mean = self.busy.iter().sum::<f64>() / self.busy.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Execute a program on a machine and return the time breakdown.
///
/// Every processor with nonzero work in a step is counted as active on its
/// node for the memory-contention model. Message time is charged to both
/// endpoints; a processor's step time is `compute + its message time`, the
/// step's span is the max over processors, and the collective (if any)
/// extends the step.
pub fn execute(machine: &Machine, program: &[Superstep]) -> SimResult {
    let p = machine.total_procs();
    let mut busy = vec![0.0; p];
    let mut total = 0.0;
    let mut total_compute = 0.0;
    let mut total_comm = 0.0;

    // Scratch reused across steps to avoid per-step allocation.
    let mut active_per_node = vec![0usize; machine.node_count()];
    let mut comm = vec![0.0; p];

    for step in program {
        assert!(
            step.compute.len() <= p,
            "superstep lists work for {} procs but machine has {p}",
            step.compute.len()
        );
        active_per_node.iter_mut().for_each(|a| *a = 0);
        for (proc, &w) in step.compute.iter().enumerate() {
            if w > 0.0 {
                active_per_node[machine.node_of(proc)] += 1;
            }
        }
        comm.iter_mut().for_each(|c| *c = 0.0);
        for m in &step.messages {
            let t = machine
                .network
                .msg_time(m.bytes, machine.same_node(m.src, m.dst));
            comm[m.src] += t;
            comm[m.dst] += t;
        }
        let mut step_compute_span = 0.0f64;
        let mut step_span = 0.0f64;
        for proc in 0..p {
            let w = step.compute.get(proc).copied().unwrap_or(0.0);
            let ct = if w > 0.0 {
                machine.compute_time(proc, w, active_per_node[machine.node_of(proc)])
            } else {
                0.0
            };
            busy[proc] += ct;
            step_compute_span = step_compute_span.max(ct);
            step_span = step_span.max(ct + comm[proc]);
        }
        let coll = match step.collective {
            Some(Collective::AllReduce { bytes }) => {
                machine
                    .network
                    .allreduce_time(bytes, p, machine.node_count())
            }
            Some(Collective::AllToAll { bytes_per_pair }) => {
                machine
                    .network
                    .alltoall_time(bytes_per_pair, p, machine.node_count())
            }
            Some(Collective::Barrier) => machine.network.barrier_time(p, machine.node_count()),
            None => 0.0,
        };
        total += step_span + coll;
        total_compute += step_compute_span;
        total_comm += (step_span - step_compute_span) + coll;
    }

    SimResult {
        total_time: total,
        compute_time: total_compute,
        comm_time: total_comm,
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;

    fn machine() -> Machine {
        Machine::uniform("m", 2, 2, 1.0, NetworkModel::default())
    }

    #[test]
    fn pure_compute_is_max_over_procs() {
        let m = machine();
        let prog = vec![Superstep::compute_only(vec![1.0, 2.0, 3.0, 4.0])];
        let r = execute(&m, &prog);
        // Both procs of node 1 active ⇒ contention; proc 3 does 4 Gflop.
        let expected = m.compute_time(3, 4.0, 2);
        assert!((r.total_time - expected).abs() < 1e-12);
        assert!(r.comm_time.abs() < 1e-12);
    }

    #[test]
    fn messages_extend_the_span() {
        let m = machine();
        let base = vec![Superstep::compute_only(vec![1.0; 4])];
        let with_msg = vec![Superstep {
            compute: vec![1.0; 4],
            messages: vec![Message {
                src: 0,
                dst: 3,
                bytes: 1e6,
            }],
            collective: None,
        }];
        let r0 = execute(&m, &base);
        let r1 = execute(&m, &with_msg);
        assert!(r1.total_time > r0.total_time);
        assert!(r1.comm_time > 0.0);
    }

    #[test]
    fn intra_node_message_is_cheaper_than_inter() {
        let m = machine();
        let prog = |dst| {
            vec![Superstep {
                compute: vec![0.0; 4],
                messages: vec![Message {
                    src: 0,
                    dst,
                    bytes: 1e6,
                }],
                collective: None,
            }]
        };
        assert!(execute(&m, &prog(1)).total_time < execute(&m, &prog(2)).total_time);
    }

    #[test]
    fn collectives_accumulate() {
        let m = machine();
        let prog = vec![
            Superstep {
                compute: vec![0.0; 4],
                messages: vec![],
                collective: Some(Collective::AllReduce { bytes: 8.0 }),
            };
            10
        ];
        let r = execute(&m, &prog);
        let one = m.network.allreduce_time(8.0, 4, 2);
        assert!((r.total_time - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn imbalance_metric_detects_skew() {
        let m = machine();
        let balanced = execute(&m, &[Superstep::compute_only(vec![1.0; 4])]);
        let skewed = execute(&m, &[Superstep::compute_only(vec![4.0, 0.0, 0.0, 0.0])]);
        assert!((balanced.imbalance() - 1.0).abs() < 1e-9);
        assert!(skewed.imbalance() > 3.0);
    }

    #[test]
    fn utilization_reflects_balance() {
        let m = machine();
        let balanced = execute(&m, &[Superstep::compute_only(vec![1.0; 4])]);
        assert!(balanced.utilization() > 0.95);
        let skewed = execute(&m, &[Superstep::compute_only(vec![4.0, 0.0, 0.0, 0.0])]);
        assert!(skewed.utilization() < 0.3);
        let chart = skewed.utilization_chart(10);
        assert_eq!(chart.lines().count(), 4);
        assert!(chart.contains("p0"));
    }

    #[test]
    fn idle_procs_do_not_pay_contention() {
        let m = machine();
        // Only proc 0 active on node 0 ⇒ full speed.
        let r = execute(&m, &[Superstep::compute_only(vec![2.0, 0.0, 0.0, 0.0])]);
        assert!((r.total_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shorter_compute_vector_means_idle_tail() {
        let m = machine();
        let r = execute(&m, &[Superstep::compute_only(vec![1.0])]);
        assert!((r.total_time - 1.0).abs() < 1e-12);
        assert_eq!(r.busy.len(), 4);
    }

    #[test]
    #[should_panic(expected = "superstep lists work")]
    fn oversized_compute_vector_panics() {
        let m = machine();
        execute(&m, &[Superstep::compute_only(vec![1.0; 5])]);
    }
}

//! Deterministic fault injection.
//!
//! Long tuning runs on the paper's machines see real failures: nodes die
//! mid-evaluation, a processor stalls behind a slow neighbour, a result
//! never makes it back to the tuning server. [`FaultPlan`] decides, purely
//! as a function of its seed and the evaluation index, what goes wrong at
//! each evaluation — so a fault schedule is reproducible across runs,
//! shareable as a single seed, and independent of execution order (worker
//! `k` asking "what happens to evaluation 17?" always gets the same
//! answer, no matter which worker asks or when).

use ah_core::seeded::{splitmix64, unit_f64};
use ah_core::telemetry::{Counter, Telemetry, TrialStage};

/// What goes wrong (if anything) at one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Nothing — the evaluation runs and reports normally.
    None,
    /// The worker dies mid-evaluation: the trial is never reported and the
    /// worker leaves (or times out of) the session.
    Crash,
    /// The worker survives but runs slow: the measurement takes `factor`
    /// times longer to come back, arriving late and possibly after the
    /// trial was requeued to someone else.
    Straggler {
        /// Slowdown multiplier (> 1).
        factor: f64,
    },
    /// The evaluation completes but its report is lost in transit: the
    /// worker stays alive, the trial eventually times out and is requeued.
    LostReport,
}

impl FaultKind {
    /// True for any fault, false for [`FaultKind::None`].
    pub fn is_fault(&self) -> bool {
        !matches!(self, FaultKind::None)
    }
}

/// A reproducible schedule of faults over evaluation indices.
///
/// Probabilities are independent per evaluation and checked in order
/// crash → lost report → straggler; at most one fault fires per index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed the whole schedule derives from.
    pub seed: u64,
    /// Probability an evaluation's worker crashes.
    pub crash_prob: f64,
    /// Probability an evaluation's report is lost.
    pub lost_prob: f64,
    /// Probability an evaluation straggles.
    pub straggler_prob: f64,
    /// Slowdown multiplier applied to straggling evaluations.
    pub straggler_factor: f64,
}

impl FaultPlan {
    /// A fault-free plan (every index gets [`FaultKind::None`]).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crash_prob: 0.0,
            lost_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 4.0,
        }
    }

    /// A plan with the given seed and per-fault probabilities.
    ///
    /// # Panics
    /// If any probability is outside `[0, 1]`, their sum exceeds 1, or
    /// `straggler_factor <= 1`.
    pub fn new(seed: u64, crash_prob: f64, lost_prob: f64, straggler_prob: f64) -> Self {
        let plan = FaultPlan {
            seed,
            crash_prob,
            lost_prob,
            straggler_prob,
            straggler_factor: 4.0,
        };
        plan.validate();
        plan
    }

    /// Same plan with a different straggler slowdown.
    pub fn with_straggler_factor(mut self, factor: f64) -> Self {
        self.straggler_factor = factor;
        self.validate();
        self
    }

    fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("lost_prob", self.lost_prob),
            ("straggler_prob", self.straggler_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]: {p}");
        }
        assert!(
            self.crash_prob + self.lost_prob + self.straggler_prob <= 1.0 + 1e-12,
            "fault probabilities must sum to at most 1"
        );
        assert!(
            self.straggler_factor > 1.0,
            "straggler_factor must exceed 1: {}",
            self.straggler_factor
        );
    }

    /// True if any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.crash_prob > 0.0 || self.lost_prob > 0.0 || self.straggler_prob > 0.0
    }

    /// The fault (or [`FaultKind::None`]) scheduled for evaluation `index`.
    /// Pure function of `(seed, index)`.
    pub fn at(&self, index: u64) -> FaultKind {
        if !self.is_active() {
            return FaultKind::None;
        }
        let u = unit_f64(splitmix64(
            self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F),
        ));
        if u < self.crash_prob {
            FaultKind::Crash
        } else if u < self.crash_prob + self.lost_prob {
            FaultKind::LostReport
        } else if u < self.crash_prob + self.lost_prob + self.straggler_prob {
            FaultKind::Straggler {
                factor: self.straggler_factor,
            }
        } else {
            FaultKind::None
        }
    }

    /// [`at`](Self::at), with any injected fault recorded on `telemetry` as
    /// a [`TrialStage::Faulted`] event (cause `crash` / `lost_report` /
    /// `straggler`) plus the matching fault counter. `index` doubles as the
    /// trial's iteration token in the event.
    pub fn at_observed(&self, index: u64, telemetry: &Telemetry) -> FaultKind {
        let kind = self.at(index);
        let (counter, cause) = match kind {
            FaultKind::None => return kind,
            FaultKind::Crash => (Counter::FaultsCrash, "crash"),
            FaultKind::LostReport => (Counter::FaultsLostReport, "lost_report"),
            FaultKind::Straggler { .. } => (Counter::FaultsStraggler, "straggler"),
        };
        telemetry.inc(counter);
        telemetry.event(TrialStage::Faulted, index as usize, 0, Some(cause));
        kind
    }

    /// Count of faults by kind over the first `n` indices:
    /// `(crashes, lost reports, stragglers)`. Useful for experiment
    /// reporting ("the schedule injected 3 crashes over 200 evaluations").
    pub fn tally(&self, n: u64) -> (usize, usize, usize) {
        let mut out = (0, 0, 0);
        for i in 0..n {
            match self.at(i) {
                FaultKind::Crash => out.0 += 1,
                FaultKind::LostReport => out.1 += 1,
                FaultKind::Straggler { .. } => out.2 += 1,
                FaultKind::None => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_faultless() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for i in 0..1000 {
            assert_eq!(plan.at(i), FaultKind::None);
        }
    }

    #[test]
    fn same_seed_same_schedule_any_query_order() {
        let a = FaultPlan::new(42, 0.05, 0.05, 0.10);
        let b = FaultPlan::new(42, 0.05, 0.05, 0.10);
        let forward: Vec<FaultKind> = (0..500).map(|i| a.at(i)).collect();
        let backward: Vec<FaultKind> = (0..500).rev().map(|i| b.at(i)).collect();
        let backward: Vec<FaultKind> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, 0.2, 0.2, 0.2);
        let b = FaultPlan::new(2, 0.2, 0.2, 0.2);
        let same = (0..200).filter(|&i| a.at(i) == b.at(i)).count();
        assert!(same < 200, "schedules should not be identical");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(7, 0.10, 0.05, 0.20);
        let n = 20_000;
        let (crashes, lost, stragglers) = plan.tally(n);
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(crashes) - 0.10).abs() < 0.01, "{crashes}");
        assert!((frac(lost) - 0.05).abs() < 0.01, "{lost}");
        assert!((frac(stragglers) - 0.20).abs() < 0.01, "{stragglers}");
    }

    #[test]
    fn straggler_carries_the_configured_factor() {
        let plan = FaultPlan::new(3, 0.0, 0.0, 1.0).with_straggler_factor(8.0);
        match plan.at(5) {
            FaultKind::Straggler { factor } => assert_eq!(factor, 8.0),
            other => panic!("expected straggler, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overcommitted_probabilities_are_rejected() {
        FaultPlan::new(0, 0.5, 0.4, 0.3);
    }

    #[test]
    fn at_observed_matches_at_and_records_faults() {
        let plan = FaultPlan::new(7, 0.10, 0.05, 0.20);
        let t = Telemetry::enabled();
        let n = 500;
        for i in 0..n {
            assert_eq!(plan.at_observed(i, &t), plan.at(i));
        }
        let (crashes, lost, stragglers) = plan.tally(n);
        assert_eq!(t.counter(Counter::FaultsCrash), crashes as u64);
        assert_eq!(t.counter(Counter::FaultsLostReport), lost as u64);
        assert_eq!(t.counter(Counter::FaultsStraggler), stragglers as u64);
        assert_eq!(
            t.events().len(),
            crashes + lost + stragglers,
            "one Faulted event per injected fault"
        );
    }
}

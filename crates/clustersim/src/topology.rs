//! Machine topologies: nodes, processors, and their speeds.

use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};

/// Global processor index (rank), `0 ≤ p < machine.total_procs()`.
pub type ProcId = usize;

/// One SMP node of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of processors on the node.
    pub procs: usize,
    /// Processor speed in normalised Gflop/s (work units per second).
    pub speed: f64,
    /// Fractional slowdown added per additional *active* processor on the
    /// node, modelling shared memory-bandwidth contention. `0.02` means a
    /// fully busy 16-way node runs each processor at `1/(1+0.02·15) ≈ 77%`.
    pub contention: f64,
}

impl NodeSpec {
    /// A node with `procs` processors at `speed` Gflop/s and mild default
    /// contention.
    pub fn new(procs: usize, speed: f64) -> Self {
        NodeSpec {
            procs,
            speed,
            contention: 0.02,
        }
    }

    /// Override the contention coefficient.
    pub fn with_contention(mut self, contention: f64) -> Self {
        self.contention = contention;
        self
    }

    /// Effective per-processor speed when `active` processors on the node
    /// compute simultaneously.
    pub fn effective_speed(&self, active: usize) -> f64 {
        debug_assert!(active >= 1);
        self.speed / (1.0 + self.contention * (active.saturating_sub(1)) as f64)
    }
}

/// A complete simulated parallel machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// Display name (e.g. `"seaborg 8x16"`).
    pub name: String,
    /// The node list.
    pub nodes: Vec<NodeSpec>,
    /// Interconnect cost model.
    pub network: NetworkModel,
}

impl Machine {
    /// A homogeneous machine: `nodes` identical nodes with `procs_per_node`
    /// processors at `speed` Gflop/s each.
    pub fn uniform(
        name: impl Into<String>,
        nodes: usize,
        procs_per_node: usize,
        speed: f64,
        network: NetworkModel,
    ) -> Self {
        Machine {
            name: name.into(),
            nodes: vec![NodeSpec::new(procs_per_node, speed); nodes],
            network,
        }
    }

    /// A heterogeneous machine from explicit node specs.
    pub fn heterogeneous(
        name: impl Into<String>,
        nodes: Vec<NodeSpec>,
        network: NetworkModel,
    ) -> Self {
        Machine {
            name: name.into(),
            nodes,
            network,
        }
    }

    /// Total processor count.
    pub fn total_procs(&self) -> usize {
        self.nodes.iter().map(|n| n.procs).sum()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Map a global processor id to `(node index, slot on node)`.
    /// Ranks are laid out node-major (ranks 0..B on node 0, etc.), matching
    /// the usual block MPI rank placement on SMP clusters.
    pub fn locate(&self, proc: ProcId) -> (usize, usize) {
        let mut p = proc;
        for (i, n) in self.nodes.iter().enumerate() {
            if p < n.procs {
                return (i, p);
            }
            p -= n.procs;
        }
        panic!(
            "processor id {proc} out of range (machine has {})",
            self.total_procs()
        );
    }

    /// Node index of a processor.
    pub fn node_of(&self, proc: ProcId) -> usize {
        self.locate(proc).0
    }

    /// True if two processors share a node.
    pub fn same_node(&self, a: ProcId, b: ProcId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Nominal (contention-free) speed of a processor.
    pub fn speed_of(&self, proc: ProcId) -> f64 {
        self.nodes[self.node_of(proc)].speed
    }

    /// Effective speed of a processor when all processors of its node are
    /// active — the steady-state assumption used by the analytic app models.
    pub fn loaded_speed_of(&self, proc: ProcId) -> f64 {
        let n = &self.nodes[self.node_of(proc)];
        n.effective_speed(n.procs)
    }

    /// Time for processor `p` to execute `work` Gflop with `active`
    /// processors busy on its node.
    pub fn compute_time(&self, proc: ProcId, work_gflop: f64, active_on_node: usize) -> f64 {
        let n = &self.nodes[self.node_of(proc)];
        work_gflop / n.effective_speed(active_on_node.clamp(1, n.procs))
    }

    /// Aggregate nominal compute capacity in Gflop/s.
    pub fn total_capacity(&self) -> f64 {
        self.nodes.iter().map(|n| n.speed * n.procs as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;

    fn machine() -> Machine {
        Machine::uniform("m", 4, 4, 1.0, NetworkModel::default())
    }

    #[test]
    fn locate_is_node_major() {
        let m = machine();
        assert_eq!(m.locate(0), (0, 0));
        assert_eq!(m.locate(3), (0, 3));
        assert_eq!(m.locate(4), (1, 0));
        assert_eq!(m.locate(15), (3, 3));
        assert_eq!(m.total_procs(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_out_of_range() {
        machine().locate(16);
    }

    #[test]
    fn same_node_detection() {
        let m = machine();
        assert!(m.same_node(0, 3));
        assert!(!m.same_node(3, 4));
    }

    #[test]
    fn contention_slows_busy_nodes() {
        let n = NodeSpec::new(16, 1.0).with_contention(0.02);
        assert_eq!(n.effective_speed(1), 1.0);
        assert!(n.effective_speed(16) < 1.0);
        assert!(n.effective_speed(16) > 0.7);
        // Monotone in the number of active processors.
        for a in 1..16 {
            assert!(n.effective_speed(a) > n.effective_speed(a + 1));
        }
    }

    #[test]
    fn heterogeneous_speeds_differ() {
        let m = Machine::heterogeneous(
            "hetero",
            vec![NodeSpec::new(1, 2.0), NodeSpec::new(1, 0.5)],
            NetworkModel::default(),
        );
        assert_eq!(m.speed_of(0), 2.0);
        assert_eq!(m.speed_of(1), 0.5);
        assert_eq!(m.total_capacity(), 2.5);
    }

    #[test]
    fn compute_time_scales_inversely_with_speed() {
        let m = machine();
        let t1 = m.compute_time(0, 10.0, 1);
        let t4 = m.compute_time(0, 10.0, 4);
        assert_eq!(t1, 10.0);
        assert!(t4 > t1);
    }
}

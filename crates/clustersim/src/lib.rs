//! # ah-clustersim — a deterministic parallel-machine simulator
//!
//! The HPDC'06 Active Harmony case study ran on machines we do not have: the
//! NERSC SP-3 "Seaborg" (16-way SMP nodes), the "Hockney" cluster, a Myrinet
//! Linux cluster with dual-Xeon nodes, and a heterogeneous Pentium 4 /
//! Pentium II cluster. This crate provides the substitute substrate: an
//! analytic machine model with
//!
//! * SMP topologies — `A` nodes × `B` processors per node, with per-node
//!   memory-bandwidth contention between active processors;
//! * heterogeneous per-node processor speeds;
//! * a hierarchical network — intra-node messages are cheap, inter-node
//!   messages pay latency + size/bandwidth over the interconnect;
//! * collective-operation costs (allreduce, alltoall, barrier) with
//!   tree/ring models;
//! * a BSP-style superstep executor with per-processor clocks.
//!
//! The tuning phenomena the paper studies are cost-structure phenomena (data
//! locality ↔ message volume, load balance ↔ per-processor compute,
//! topology ↔ intra/inter-node traffic), and the model exposes exactly those
//! terms, so the search landscapes Harmony explores have the same shape as
//! on the real machines.

#![warn(missing_docs)]

pub mod faults;
pub mod machines;
pub mod network;
pub mod noise;
pub mod sim;
pub mod topology;

pub use faults::{FaultKind, FaultPlan};
pub use machines::{hetero_p4_p2, hockney, myrinet_linux, sp3_seaborg};
pub use network::NetworkModel;
pub use noise::NoiseModel;
pub use sim::{execute, Collective, Message, Program, SimResult, Superstep};
pub use topology::{Machine, NodeSpec, ProcId};

//! Named machine presets standing in for the paper's testbeds.
//!
//! Speeds are normalised work units (Gflop/s-equivalent); they are chosen to
//! reflect the relative characteristics the paper relies on (SMP width,
//! slow vs. fast interconnect, heterogeneous node generations), not absolute
//! hardware truth.

use crate::network::NetworkModel;
use crate::topology::{Machine, NodeSpec};

/// NERSC "Seaborg"-like IBM SP-3: 16-way SMP nodes, colony-switch-class
/// interconnect. `nodes × procs_per_node` is the tunable topology of the POP
/// and GS2 experiments (e.g. `sp3_seaborg(8, 16)` for 128 processors).
pub fn sp3_seaborg(nodes: usize, procs_per_node: usize) -> Machine {
    assert!(procs_per_node <= 16, "SP-3 nodes are 16-way SMPs");
    let network = NetworkModel::new(
        (8e-7, 3.0e9),  // shared-memory within a node
        (18e-6, 600e6), // switch fabric between nodes
    );
    let mut m = Machine::uniform(
        format!("seaborg {nodes}x{procs_per_node}"),
        nodes,
        procs_per_node,
        1.0,
        network,
    );
    for n in &mut m.nodes {
        *n = n.with_contention(0.03); // wide SMPs share memory bandwidth
    }
    m
}

/// "Hockney"-like NERSC cluster used for the POP parameter study
/// (8 nodes × 4 processors in the paper).
pub fn hockney(nodes: usize, procs_per_node: usize) -> Machine {
    let network = NetworkModel::new((1e-6, 2.5e9), (25e-6, 150e6));
    Machine::uniform(
        format!("hockney {nodes}x{procs_per_node}"),
        nodes,
        procs_per_node,
        1.1,
        network,
    )
}

/// Myrinet Linux cluster: 64 nodes × dual Xeon 2.66 GHz, Myrinet network
/// (lower latency than the SP-3 switch; per-link bandwidth modest relative
/// to the fast Xeons, so communication-heavy layouts hurt badly here).
pub fn myrinet_linux(nodes: usize, procs_per_node: usize) -> Machine {
    assert!(procs_per_node <= 2, "the Linux cluster has dual-CPU nodes");
    let network = NetworkModel::new((6e-7, 3.2e9), (12e-6, 160e6));
    let mut m = Machine::uniform(
        format!("linux {nodes}x{procs_per_node}"),
        nodes,
        procs_per_node,
        1.6,
        network,
    );
    for n in &mut m.nodes {
        *n = n.with_contention(0.05); // hyper-threaded duals contend more
    }
    m
}

/// Heterogeneous 4-node cluster from the PETSc SNES experiment (Figure 3b):
/// two Pentium 4-class nodes (fast) and two Pentium II-class nodes (slow).
/// `fast_fraction` is the P4/PII speed ratio (the paper's generations differ
/// by roughly 4–6×).
pub fn hetero_p4_p2() -> Machine {
    let network = NetworkModel::new((1e-6, 2e9), (40e-6, 100e6));
    Machine::heterogeneous(
        "hetero p4/p2 4x1",
        vec![
            NodeSpec::new(1, 0.25), // PII
            NodeSpec::new(1, 0.25), // PII
            NodeSpec::new(1, 1.2),  // P4
            NodeSpec::new(1, 1.2),  // P4
        ],
        network,
    )
}

/// Homogeneous variant of the Figure 3 testbed: four identical P4 nodes.
pub fn homo_p4() -> Machine {
    let network = NetworkModel::new((1e-6, 2e9), (40e-6, 100e6));
    Machine::uniform("homo p4 4x1", 4, 1, 1.2, network)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seaborg_topologies_have_right_sizes() {
        assert_eq!(sp3_seaborg(8, 16).total_procs(), 128);
        assert_eq!(sp3_seaborg(30, 16).total_procs(), 480);
        assert_eq!(sp3_seaborg(240, 2).total_procs(), 480);
    }

    #[test]
    #[should_panic(expected = "16-way")]
    fn seaborg_rejects_too_wide_nodes() {
        sp3_seaborg(4, 17);
    }

    #[test]
    fn linux_cluster_is_dual_cpu() {
        let m = myrinet_linux(64, 2);
        assert_eq!(m.total_procs(), 128);
        assert_eq!(m.node_count(), 64);
    }

    #[test]
    fn myrinet_has_lower_latency_but_fast_nodes() {
        let linux = myrinet_linux(64, 2);
        let sp3 = sp3_seaborg(8, 16);
        assert!(linux.network.inter.latency < sp3.network.inter.latency);
        // Per-processor compute speed relative to link bandwidth is higher
        // on the Linux cluster: misaligned layouts pay proportionally more.
        let linux_ratio = linux.nodes[0].speed / linux.network.inter.bandwidth;
        let sp3_ratio = sp3.nodes[0].speed / sp3.network.inter.bandwidth;
        assert!(linux_ratio > sp3_ratio);
    }

    #[test]
    fn hetero_cluster_has_two_speed_classes() {
        let m = hetero_p4_p2();
        assert_eq!(m.total_procs(), 4);
        assert!(m.speed_of(2) > 4.0 * m.speed_of(0));
        let homo = homo_p4();
        assert_eq!(homo.speed_of(0), homo.speed_of(3));
    }
}

//! Measurement noise.
//!
//! Real benchmark runs are noisy; the paper's off-line tuning has to cope
//! with run-to-run variance. [`NoiseModel`] applies seeded multiplicative
//! noise to simulated timings so experiments can be run either
//! deterministically (`sigma = 0`) or with realistic jitter, reproducibly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic multiplicative noise source.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    sigma: f64,
    rng: StdRng,
}

impl NoiseModel {
    /// `sigma` is the relative amplitude: each sample is scaled by a factor
    /// drawn uniformly from `[1−sigma, 1+sigma]`.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        NoiseModel {
            sigma,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Noise-free model.
    pub fn none() -> Self {
        Self::new(0.0, 0)
    }

    /// Apply noise to a timing sample.
    pub fn apply(&mut self, time: f64) -> f64 {
        if self.sigma == 0.0 {
            return time;
        }
        let f = 1.0 + self.rng.gen_range(-self.sigma..=self.sigma);
        time * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut n = NoiseModel::none();
        assert_eq!(n.apply(42.0), 42.0);
    }

    #[test]
    fn noise_stays_within_bounds() {
        let mut n = NoiseModel::new(0.1, 7);
        for _ in 0..1000 {
            let v = n.apply(100.0);
            assert!((90.0..=110.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = NoiseModel::new(0.2, 99);
        let mut b = NoiseModel::new(0.2, 99);
        for _ in 0..100 {
            assert_eq!(a.apply(1.0), b.apply(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn sigma_one_is_rejected() {
        NoiseModel::new(1.0, 0);
    }
}

//! Hierarchical interconnect cost model.
//!
//! Point-to-point messages follow the classic latency/bandwidth (Hockney)
//! model, with separate parameters for intra-node (shared-memory) and
//! inter-node traffic. Collectives use standard tree/ring estimates.

use serde::{Deserialize, Serialize};

/// Latency/bandwidth parameters of one level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl LinkModel {
    /// Time to move `bytes` over this link.
    pub fn time(&self, bytes: f64) -> f64 {
        self.latency + bytes.max(0.0) / self.bandwidth
    }
}

/// Two-level network: cheap intra-node transfers, slower inter-node links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Shared-memory transfers within one SMP node.
    pub intra: LinkModel,
    /// Interconnect transfers between nodes.
    pub inter: LinkModel,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Generic early-2000s cluster: 1 µs / 2 GB/s in-node,
        // 20 µs / 200 MB/s across nodes.
        NetworkModel {
            intra: LinkModel {
                latency: 1e-6,
                bandwidth: 2e9,
            },
            inter: LinkModel {
                latency: 20e-6,
                bandwidth: 200e6,
            },
        }
    }
}

impl NetworkModel {
    /// Build from explicit `(latency, bandwidth)` pairs.
    pub fn new(intra: (f64, f64), inter: (f64, f64)) -> Self {
        NetworkModel {
            intra: LinkModel {
                latency: intra.0,
                bandwidth: intra.1,
            },
            inter: LinkModel {
                latency: inter.0,
                bandwidth: inter.1,
            },
        }
    }

    /// Time for one point-to-point message.
    pub fn msg_time(&self, bytes: f64, same_node: bool) -> f64 {
        if same_node {
            self.intra.time(bytes)
        } else {
            self.inter.time(bytes)
        }
    }

    /// Binomial-tree allreduce of `bytes` per processor across `procs`
    /// processors spread over `nodes` nodes: `log2(P)` rounds, of which the
    /// first `log2(P/N)` stay inside nodes.
    pub fn allreduce_time(&self, bytes: f64, procs: usize, nodes: usize) -> f64 {
        if procs <= 1 {
            return 0.0;
        }
        let rounds = (procs as f64).log2().ceil();
        let intra_rounds = if nodes >= 1 {
            ((procs as f64 / nodes as f64).max(1.0)).log2().ceil()
        } else {
            0.0
        };
        let inter_rounds = (rounds - intra_rounds).max(0.0);
        // Reduce + broadcast ≈ 2 passes.
        2.0 * (intra_rounds * self.intra.time(bytes) + inter_rounds * self.inter.time(bytes))
    }

    /// Barrier = zero-byte allreduce.
    pub fn barrier_time(&self, procs: usize, nodes: usize) -> f64 {
        self.allreduce_time(0.0, procs, nodes)
    }

    /// Pairwise-exchange alltoall where every processor sends
    /// `bytes_per_pair` to every other processor: `P−1` rounds, each paying
    /// the intra- or inter-node cost depending on how many peers share the
    /// sender's node (`procs/nodes − 1` of the `P−1` peers, on average).
    pub fn alltoall_time(&self, bytes_per_pair: f64, procs: usize, nodes: usize) -> f64 {
        if procs <= 1 {
            return 0.0;
        }
        let ppn = (procs as f64 / nodes.max(1) as f64).max(1.0);
        let intra_peers = (ppn - 1.0).max(0.0);
        let inter_peers = (procs as f64 - ppn).max(0.0);
        intra_peers * self.intra.time(bytes_per_pair)
            + inter_peers * self.inter.time(bytes_per_pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_time_is_affine_in_bytes() {
        let l = LinkModel {
            latency: 1e-5,
            bandwidth: 1e8,
        };
        assert_eq!(l.time(0.0), 1e-5);
        assert!((l.time(1e8) - (1e-5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn intra_node_is_cheaper() {
        let n = NetworkModel::default();
        assert!(n.msg_time(1e6, true) < n.msg_time(1e6, false));
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = NetworkModel::default();
        let t16 = n.allreduce_time(8.0, 16, 4);
        let t256 = n.allreduce_time(8.0, 256, 64);
        assert!(t256 > t16);
        assert!(t256 < t16 * 4.0, "should be ~2x for 16x more procs");
        assert_eq!(n.allreduce_time(8.0, 1, 1), 0.0);
    }

    #[test]
    fn allreduce_prefers_fewer_nodes() {
        // Same processor count packed onto fewer nodes ⇒ more intra rounds
        // ⇒ faster collective.
        let n = NetworkModel::default();
        let packed = n.allreduce_time(8.0, 64, 4);
        let spread = n.allreduce_time(8.0, 64, 64);
        assert!(packed < spread);
    }

    #[test]
    fn alltoall_scales_with_procs() {
        let n = NetworkModel::default();
        let small = n.alltoall_time(1e4, 16, 4);
        let large = n.alltoall_time(1e4, 128, 32);
        assert!(large > small * 4.0);
        assert_eq!(n.alltoall_time(1e4, 1, 1), 0.0);
    }

    #[test]
    fn barrier_is_zero_byte_allreduce() {
        let n = NetworkModel::default();
        assert_eq!(n.barrier_time(32, 8), n.allreduce_time(0.0, 32, 8));
    }
}

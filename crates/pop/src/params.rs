//! POP namelist parameters and their per-phase cost effects.
//!
//! §V of the paper tunes "about 20 parameters that are performance related"
//! with "2 to 4 possible values each". Tables I and II name twelve of them;
//! the remainder here are drawn from the same POP namelist families. Every
//! parameter contributes a multiplicative factor to one of the model's
//! phases (baroclinic compute, barotropic solver, tracer/forcing work, or
//! I/O), which is how choices like `del2` vs. `anis` mixing change execution
//! time without changing the decomposition.
//!
//! The factor tables are calibrated so that moving every Table II parameter
//! from its default to its tuned value yields an overall improvement in the
//! 15–18% range on the paper's 32-processor configuration, with
//! `num_iotasks` optimal near 4 (its tuned value in Table II; the greedy
//! first move to 32 in Table I helps but overshoots the I/O sweet spot).

use ah_core::param::Param;
use ah_core::space::{Configuration, SearchSpace};

/// Which phase of the timestep a parameter multiplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// 3-D baroclinic compute.
    Baroclinic,
    /// 2-D barotropic solver (communication heavy).
    Barotropic,
    /// Tracer/forcing/interpolation work.
    Tracer,
}

/// A categorical namelist parameter: name, choices, per-choice cost factor,
/// affected phase, and default index.
#[derive(Debug, Clone)]
pub struct ChoiceSpec {
    /// Namelist name.
    pub name: &'static str,
    /// Choice labels.
    pub choices: &'static [&'static str],
    /// Cost factor per choice (parallel to `choices`).
    pub factors: &'static [f64],
    /// Affected phase.
    pub phase: Phase,
    /// Index of the shipped default.
    pub default: usize,
}

/// The performance-related POP namelist (19 categorical choices plus
/// `num_iotasks`).
pub const CHOICES: &[ChoiceSpec] = &[
    // --- Table I / II parameters -------------------------------------
    ChoiceSpec {
        name: "hmix_momentum_choice",
        choices: &["anis", "del2", "del4"],
        factors: &[1.090, 1.000, 1.035],
        phase: Phase::Baroclinic,
        default: 0,
    },
    ChoiceSpec {
        name: "hmix_tracer_choice",
        choices: &["gent", "del2", "del4"],
        factors: &[1.075, 1.000, 1.030],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "kappa_choice",
        choices: &["constant", "variable"],
        factors: &[1.020, 1.000],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "slope_control_choice",
        choices: &["notanh", "clip", "tanh"],
        factors: &[1.018, 1.000, 1.028],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "hmix_alignment_choice",
        choices: &["east", "grid", "flow"],
        factors: &[1.022, 1.000, 1.015],
        phase: Phase::Baroclinic,
        default: 0,
    },
    ChoiceSpec {
        name: "state_choice",
        choices: &["jmcd", "linear", "polynomial"],
        factors: &[1.040, 1.000, 1.022],
        phase: Phase::Baroclinic,
        default: 0,
    },
    ChoiceSpec {
        name: "state_range_opt",
        choices: &["ignore", "enforce", "check"],
        factors: &[1.012, 1.000, 1.020],
        phase: Phase::Baroclinic,
        default: 0,
    },
    ChoiceSpec {
        name: "ws_interp_type",
        choices: &["nearest", "linear", "4point"],
        factors: &[1.010, 1.006, 1.000],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "shf_interp_type",
        choices: &["nearest", "linear", "4point"],
        factors: &[1.010, 1.006, 1.000],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "sfwf_interp_type",
        choices: &["nearest", "linear", "4point"],
        factors: &[1.010, 1.006, 1.000],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "ap_interp_type",
        choices: &["nearest", "linear", "4point"],
        factors: &[1.008, 1.005, 1.000],
        phase: Phase::Tracer,
        default: 0,
    },
    // --- additional performance-related namelist families ------------
    ChoiceSpec {
        name: "advect_type",
        choices: &["upwind3", "centered"],
        factors: &[1.000, 1.014],
        phase: Phase::Baroclinic,
        default: 0,
    },
    ChoiceSpec {
        name: "convection_type",
        choices: &["adjustment", "diffusion"],
        factors: &[1.000, 1.011],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "sw_absorption_type",
        choices: &["top-layer", "jerlov"],
        factors: &[1.000, 1.009],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "tavg_method",
        choices: &["accumulate", "snapshot"],
        factors: &[1.008, 1.000],
        phase: Phase::Tracer,
        default: 0,
    },
    ChoiceSpec {
        name: "solver_choice",
        choices: &["pcg", "cgr", "jacobi"],
        factors: &[1.000, 1.025, 1.110],
        phase: Phase::Barotropic,
        default: 0,
    },
    ChoiceSpec {
        name: "preconditioner_choice",
        choices: &["diagonal", "none"],
        factors: &[1.000, 1.060],
        phase: Phase::Barotropic,
        default: 0,
    },
    ChoiceSpec {
        name: "partial_bottom_cells",
        choices: &["off", "on"],
        factors: &[1.000, 1.016],
        phase: Phase::Baroclinic,
        default: 0,
    },
    ChoiceSpec {
        name: "vmix_choice",
        choices: &["kpp", "const", "rich"],
        factors: &[1.012, 1.000, 1.007],
        phase: Phase::Baroclinic,
        default: 0,
    },
];

/// Maximum I/O task count exposed to the tuner.
pub const MAX_IOTASKS: i64 = 32;

/// A complete assignment of the namelist parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PopParams {
    /// Selected choice index per entry of [`CHOICES`].
    pub selection: Vec<usize>,
    /// Number of parallel I/O tasks (≥ 1).
    pub num_iotasks: i64,
}

impl Default for PopParams {
    fn default() -> Self {
        PopParams {
            selection: CHOICES.iter().map(|c| c.default).collect(),
            num_iotasks: 1,
        }
    }
}

impl PopParams {
    /// The tuned values of Table II (every choice at its cheapest factor,
    /// `num_iotasks = 4`).
    pub fn paper_tuned() -> Self {
        let selection = CHOICES
            .iter()
            .map(|c| {
                c.factors
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("factors are finite"))
                    .map(|(i, _)| i)
                    .expect("choices nonempty")
            })
            .collect();
        PopParams {
            selection,
            num_iotasks: 4,
        }
    }

    /// Multiplicative cost factor on a phase from the categorical choices.
    pub fn phase_factor(&self, phase: Phase) -> f64 {
        CHOICES
            .iter()
            .zip(&self.selection)
            .filter(|(c, _)| c.phase == phase)
            .map(|(c, &s)| c.factors[s])
            .product()
    }

    /// Relative I/O time factor: writing history/restart data is split over
    /// `k` I/O tasks, but each extra task adds logarithmic coordination
    /// overhead. Normalised to 1.0 at `k = 1`, minimised at `k = 4`, and
    /// still below 1.0 at `k = 32` — so the greedy first move of Table I
    /// (1 → 32) is an improvement, while the final tuned value of Table II
    /// (4) is better still.
    pub fn io_factor(&self) -> f64 {
        let k = self.num_iotasks.max(1) as f64;
        1.0 / k + 0.25 * k.ln()
    }

    /// Build the Harmony search space over all namelist parameters.
    pub fn space() -> SearchSpace {
        let mut builder = SearchSpace::builder().int("num_iotasks", 1, MAX_IOTASKS, 1);
        for c in CHOICES {
            builder = builder.param(Param::enumeration(c.name, c.choices.iter().copied()));
        }
        builder.build().expect("POP namelist space is valid")
    }

    /// Decode a configuration of [`space`](Self::space) into parameters.
    pub fn from_config(cfg: &Configuration) -> Self {
        let num_iotasks = cfg.int("num_iotasks").expect("num_iotasks present");
        let selection = CHOICES
            .iter()
            .map(|c| {
                cfg.get(c.name)
                    .and_then(|v| v.as_enum_index())
                    .expect("choice present")
            })
            .collect();
        PopParams {
            selection,
            num_iotasks,
        }
    }

    /// Encode into continuous coordinates of [`space`](Self::space)
    /// (useful for seeding the simplex at the default configuration).
    pub fn to_coords(&self) -> Vec<f64> {
        let mut coords = Vec::with_capacity(1 + CHOICES.len());
        coords.push(self.num_iotasks as f64);
        coords.extend(self.selection.iter().map(|&s| s as f64));
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namelist_has_about_twenty_parameters() {
        // num_iotasks + 19 categorical choices = 20, matching "about 20
        // parameters that are performance related".
        assert_eq!(CHOICES.len() + 1, 20);
        for c in CHOICES {
            assert_eq!(c.choices.len(), c.factors.len());
            assert!((2..=4).contains(&c.choices.len()), "{}", c.name);
            assert!(c.default < c.choices.len());
        }
    }

    #[test]
    fn default_factors_are_worse_than_tuned() {
        let default = PopParams::default();
        let tuned = PopParams::paper_tuned();
        for phase in [Phase::Baroclinic, Phase::Barotropic, Phase::Tracer] {
            assert!(default.phase_factor(phase) >= tuned.phase_factor(phase));
        }
        assert!(default.io_factor() > tuned.io_factor());
    }

    #[test]
    fn io_factor_is_minimised_at_four_tasks() {
        let f = |k: i64| {
            PopParams {
                num_iotasks: k,
                ..Default::default()
            }
            .io_factor()
        };
        let best =
            (1..=MAX_IOTASKS).min_by(|&a, &b| f(a).partial_cmp(&f(b)).expect("finite factors"));
        assert_eq!(best, Some(4));
        // 32 tasks (the greedy Table I first move) beats 1 but loses to 4.
        assert!(f(32) < f(1));
        assert!(f(4) < f(32));
    }

    #[test]
    fn space_and_config_roundtrip() {
        let space = PopParams::space();
        assert_eq!(space.dims(), 20);
        let tuned = PopParams::paper_tuned();
        let cfg = space.project(&tuned.to_coords());
        assert_eq!(PopParams::from_config(&cfg), tuned);
        assert_eq!(cfg.choice("hmix_momentum_choice"), Some("del2"));
        assert_eq!(cfg.int("num_iotasks"), Some(4));
    }

    #[test]
    fn search_space_is_fairly_large() {
        // 32 × ∏|choices| — "this makes the search space fairly large".
        let card = PopParams::space().cardinality().unwrap();
        assert!(card > 1_000_000_000, "cardinality {card}");
    }

    #[test]
    fn table2_parameters_move_to_paper_values() {
        let space = PopParams::space();
        let cfg = space.project(&PopParams::paper_tuned().to_coords());
        for (name, val) in [
            ("hmix_momentum_choice", "del2"),
            ("hmix_tracer_choice", "del2"),
            ("kappa_choice", "variable"),
            ("slope_control_choice", "clip"),
            ("hmix_alignment_choice", "grid"),
            ("state_choice", "linear"),
            ("state_range_opt", "enforce"),
            ("ws_interp_type", "4point"),
            ("shf_interp_type", "4point"),
            ("sfwf_interp_type", "4point"),
            ("ap_interp_type", "4point"),
        ] {
            assert_eq!(cfg.choice(name), Some(val), "{name}");
        }
    }
}

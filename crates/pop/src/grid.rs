//! The ocean grid and its synthetic land mask.
//!
//! POP runs on a generalized orthogonal grid of `nx × ny` horizontal points;
//! a substantial fraction is land, and decomposition blocks that are
//! entirely land are eliminated from the computation. We cannot ship the
//! real bathymetry, so the mask is generated deterministically from smooth
//! continent-like blobs; what matters for block-size tuning is that land is
//! *spatially coherent* (so small blocks can carve it out) and that the
//! ocean fraction is realistic (~65%).

/// The horizontal ocean grid with a land mask.
#[derive(Debug, Clone)]
pub struct OceanGrid {
    /// Grid width.
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
    mask: Vec<bool>, // true = ocean
}

/// A continent blob: a smooth super-ellipse in grid coordinates.
#[derive(Debug, Clone, Copy)]
struct Blob {
    cx: f64,
    cy: f64,
    rx: f64,
    ry: f64,
}

impl OceanGrid {
    /// Build a grid with the default synthetic continents (~30–35% land).
    pub fn synthetic(nx: usize, ny: usize) -> Self {
        // Continent layout loosely inspired by Earth's: two large masses,
        // two medium, a polar cap. Coordinates are fractions of the grid.
        let blobs = [
            Blob {
                cx: 0.22,
                cy: 0.62,
                rx: 0.10,
                ry: 0.22,
            }, // americas-ish
            Blob {
                cx: 0.55,
                cy: 0.55,
                rx: 0.13,
                ry: 0.18,
            }, // africa/eurasia
            Blob {
                cx: 0.68,
                cy: 0.75,
                rx: 0.14,
                ry: 0.10,
            }, // asia
            Blob {
                cx: 0.82,
                cy: 0.30,
                rx: 0.06,
                ry: 0.07,
            }, // australia
            Blob {
                cx: 0.50,
                cy: 0.97,
                rx: 0.50,
                ry: 0.05,
            }, // polar cap
        ];
        let mut mask = vec![true; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let x = (i as f64 + 0.5) / nx as f64;
                let y = (j as f64 + 0.5) / ny as f64;
                for b in &blobs {
                    let dx = (x - b.cx) / b.rx;
                    let dy = (y - b.cy) / b.ry;
                    // Super-ellipse with wavy coastline.
                    let wave = 0.15 * ((x * 37.0).sin() * (y * 29.0).cos());
                    if dx * dx + dy * dy < 1.0 + wave {
                        mask[j * nx + i] = false;
                        break;
                    }
                }
            }
        }
        OceanGrid { nx, ny, mask }
    }

    /// An all-ocean grid (useful for tests isolating halo effects).
    pub fn all_ocean(nx: usize, ny: usize) -> Self {
        OceanGrid {
            nx,
            ny,
            mask: vec![true; nx * ny],
        }
    }

    /// The paper's production grid: 3,600 × 2,400.
    pub fn paper_grid() -> Self {
        Self::synthetic(3600, 2400)
    }

    /// Is the point ocean?
    pub fn is_ocean(&self, i: usize, j: usize) -> bool {
        self.mask[j * self.nx + i]
    }

    /// Number of ocean points.
    pub fn ocean_points(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// Fraction of the grid that is ocean.
    pub fn ocean_fraction(&self) -> f64 {
        self.ocean_points() as f64 / (self.nx * self.ny) as f64
    }

    /// Count ocean points within a block `[i0, i1) × [j0, j1)` (clamped to
    /// the grid).
    pub fn ocean_in_block(&self, i0: usize, j0: usize, i1: usize, j1: usize) -> usize {
        let i1 = i1.min(self.nx);
        let j1 = j1.min(self.ny);
        let mut count = 0;
        for j in j0..j1 {
            let row = &self.mask[j * self.nx + i0..j * self.nx + i1];
            count += row.iter().filter(|&&m| m).count();
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_grid_has_realistic_ocean_fraction() {
        let g = OceanGrid::synthetic(360, 240);
        let f = g.ocean_fraction();
        assert!((0.5..0.85).contains(&f), "ocean fraction {f}");
    }

    #[test]
    fn land_is_spatially_coherent() {
        // A known continent centre must be land, mid-Pacific must be ocean.
        let g = OceanGrid::synthetic(360, 240);
        assert!(!g.is_ocean(79, 148)); // inside the americas blob
        assert!(g.is_ocean(3, 100)); // far west, open ocean
    }

    #[test]
    fn block_counts_sum_to_total() {
        let g = OceanGrid::synthetic(100, 80);
        let mut total = 0;
        for j in (0..80).step_by(20) {
            for i in (0..100).step_by(25) {
                total += g.ocean_in_block(i, j, i + 25, j + 20);
            }
        }
        assert_eq!(total, g.ocean_points());
    }

    #[test]
    fn all_ocean_grid_has_no_land() {
        let g = OceanGrid::all_ocean(50, 50);
        assert_eq!(g.ocean_points(), 2500);
        assert_eq!(g.ocean_fraction(), 1.0);
    }

    #[test]
    fn out_of_range_block_is_clamped() {
        let g = OceanGrid::all_ocean(10, 10);
        assert_eq!(g.ocean_in_block(5, 5, 100, 100), 25);
    }

    #[test]
    fn deterministic_construction() {
        let a = OceanGrid::synthetic(120, 90);
        let b = OceanGrid::synthetic(120, 90);
        assert_eq!(a.ocean_points(), b.ocean_points());
    }
}

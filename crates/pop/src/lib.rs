//! # ah-pop — a Parallel Ocean Program performance model
//!
//! Reproduces the POP case study of the HPDC'06 Active Harmony paper
//! (§V): the 3,600 × 2,400 grid ocean simulation whose execution time is
//! tuned by
//!
//! * **block size** — POP decomposes the horizontal grid into `bx × by`
//!   blocks distributed over processors. Larger blocks amortise halo
//!   overhead; smaller blocks eliminate more all-land blocks and balance
//!   load across processors. Which effect wins depends on the node topology
//!   (`A` nodes × `B` processors per node changes the intra/inter-node mix
//!   of halo traffic), which is why the paper finds *no single block size
//!   good for all topologies* (Figure 4);
//! * **namelist parameters** — ~20 performance-related configuration
//!   choices (mixing operators, equation-of-state variants, interpolation
//!   types, I/O task counts) whose cost effects are modelled per phase
//!   (Tables I and II; 12.1% after 12 iterations, 16.7% after 27).
//!
//! The ocean itself is synthetic: a deterministic land mask with
//! continent-like blobs provides the land-block-elimination behaviour the
//! real bathymetry gives POP.

#![warn(missing_docs)]

pub mod decomp;
pub mod grid;
pub mod model;
pub mod params;
pub mod tunable;

pub use decomp::{BlockDecomposition, Distribution};
pub use grid::OceanGrid;
pub use model::{PopModel, PopTiming};
pub use params::PopParams;
pub use tunable::{PopBlockApp, PopParamApp};

//! The POP timestep performance model.
//!
//! One POP timestep is modelled as four phases:
//!
//! * **baroclinic** — 3-D compute over the depth levels: embarrassingly
//!   parallel, its span is the most loaded processor, and each block pays a
//!   halo-overhead factor `(bx+2h)(by+2h)/(bx·by)` that favours big blocks;
//! * **barotropic** — the 2-D implicit free-surface solver: tens of inner
//!   iterations per step, each with per-block halo messages (latency-bound,
//!   favours few big blocks, and sensitive to how many neighbours share an
//!   SMP node — the topology effect of Figure 4) and a global reduction;
//! * **tracer/forcing** — 2-D/3-D auxiliary work scaling like baroclinic;
//! * **I/O** — per-step history/restart output spread over `num_iotasks`.
//!
//! Namelist parameters multiply their phase (see [`crate::params`]); block
//! size and topology enter through the decomposition and network terms.

use crate::decomp::BlockDecomposition;
use crate::grid::OceanGrid;
use crate::params::{Phase, PopParams};
use ah_clustersim::Machine;

/// Vertical depth levels (the paper's production POP uses 40).
pub const DEPTH_LEVELS: usize = 40;
/// Halo width in grid points.
pub const HALO: usize = 2;
/// Gflop per 3-D grid point per baroclinic step.
pub const GFLOP_PER_POINT_3D: f64 = 3.0e-7;
/// Gflop per 2-D grid point per barotropic solver iteration.
pub const GFLOP_PER_POINT_2D: f64 = 4.0e-8;
/// Barotropic solver iterations per timestep.
pub const SOLVER_ITERS: usize = 60;
/// Tracer-phase work as a fraction of baroclinic work.
pub const TRACER_FRACTION: f64 = 0.55;
/// I/O bytes written per 3-D grid point per step (history + restart
/// averaged over steps).
pub const IO_BYTES_PER_POINT: f64 = 8.0;
/// Aggregate filesystem bandwidth at one I/O task, bytes/second.
pub const IO_BANDWIDTH: f64 = 2.0e9;

/// Per-phase timing breakdown of one timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopTiming {
    /// Baroclinic phase seconds.
    pub baroclinic: f64,
    /// Barotropic phase seconds.
    pub barotropic: f64,
    /// Tracer/forcing phase seconds.
    pub tracer: f64,
    /// I/O seconds.
    pub io: f64,
}

impl PopTiming {
    /// Total step time.
    pub fn total(&self) -> f64 {
        self.baroclinic + self.barotropic + self.tracer + self.io
    }
}

/// The POP performance model: a grid, a machine, and a timestep evaluator.
///
/// # Example
///
/// ```
/// use ah_clustersim::machines::sp3_seaborg;
/// use ah_pop::{OceanGrid, PopModel, PopParams};
///
/// let model = PopModel::new(OceanGrid::synthetic(360, 240), sp3_seaborg(4, 8));
/// let t = model.step_time(36, 30, &PopParams::default());
/// assert!(t.total() > 0.0);
/// assert!(t.baroclinic > 0.0 && t.barotropic > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PopModel {
    grid: OceanGrid,
    machine: Machine,
}

impl PopModel {
    /// Build a model for a grid on a machine.
    pub fn new(grid: OceanGrid, machine: Machine) -> Self {
        PopModel { grid, machine }
    }

    /// The grid.
    pub fn grid(&self) -> &OceanGrid {
        &self.grid
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Evaluate one timestep for a block size and parameter assignment
    /// (rake distribution).
    pub fn step_time(&self, bx: usize, by: usize, params: &PopParams) -> PopTiming {
        self.step_time_dist(bx, by, crate::decomp::Distribution::RoundRobin, params)
    }

    /// Evaluate one timestep with an explicit block-distribution scheme.
    pub fn step_time_dist(
        &self,
        bx: usize,
        by: usize,
        dist: crate::decomp::Distribution,
        params: &PopParams,
    ) -> PopTiming {
        let nprocs = self.machine.total_procs();
        let decomp = BlockDecomposition::with_distribution(&self.grid, bx, by, nprocs, dist);
        self.step_time_for(&decomp, params)
    }

    /// Evaluate one timestep for a prebuilt decomposition.
    pub fn step_time_for(&self, decomp: &BlockDecomposition, params: &PopParams) -> PopTiming {
        let nprocs = self.machine.total_procs();
        let nodes = self.machine.node_count();
        let ppn = nprocs.div_ceil(nodes).max(1);
        let work = decomp.work_per_proc();
        let (bx, by) = (decomp.bx, decomp.by);

        // Halo-overhead factor: each block computes its extended domain.
        let halo_factor = ((bx + 2 * HALO) * (by + 2 * HALO)) as f64 / (bx * by) as f64;

        // --- Baroclinic: span of the most loaded processor. ---
        let mut baro_span = 0.0f64;
        for (p, &w) in work.iter().enumerate() {
            let gflop = w as f64 * DEPTH_LEVELS as f64 * GFLOP_PER_POINT_3D * halo_factor;
            let t = gflop / self.machine.loaded_speed_of(p);
            baro_span = baro_span.max(t);
        }
        let baroclinic = baro_span * params.phase_factor(Phase::Baroclinic);

        // --- Barotropic: latency-bound halo exchange + reduction. ---
        let mut blocks_per_proc = vec![0usize; nprocs];
        for &o in &decomp.owner {
            blocks_per_proc[o] += 1;
        }
        let intra_frac = decomp.intra_node_neighbor_fraction(ppn);
        let net = &self.machine.network;
        // Average message: one block side of halo points, 8 bytes each.
        let side_points = (bx + by) as f64 / 2.0 * HALO as f64;
        let msg_bytes = side_points * 8.0;
        let msg_cost = intra_frac * net.msg_time(msg_bytes, true)
            + (1.0 - intra_frac) * net.msg_time(msg_bytes, false);
        let mut solver_span = 0.0f64;
        for (p, (&w, &nb)) in work.iter().zip(&blocks_per_proc).enumerate() {
            let gflop = w as f64 * GFLOP_PER_POINT_2D;
            let compute = gflop / self.machine.loaded_speed_of(p);
            let comm = nb as f64 * 4.0 * msg_cost;
            solver_span = solver_span.max(compute + comm);
        }
        let reduce = net.allreduce_time(8.0, nprocs, nodes);
        let barotropic =
            SOLVER_ITERS as f64 * (solver_span + reduce) * params.phase_factor(Phase::Barotropic);

        // --- Tracer/forcing. ---
        let tracer = baro_span * TRACER_FRACTION * params.phase_factor(Phase::Tracer);

        // --- I/O: volume proportional to the 3-D grid. ---
        let io_volume = (self.grid.nx * self.grid.ny * DEPTH_LEVELS) as f64 * IO_BYTES_PER_POINT;
        let io = io_volume / IO_BANDWIDTH * params.io_factor();

        PopTiming {
            baroclinic,
            barotropic,
            tracer,
            io,
        }
    }

    /// Simulated execution time of a representative short run of `steps`
    /// timesteps.
    pub fn run_time(&self, bx: usize, by: usize, params: &PopParams, steps: usize) -> f64 {
        self.step_time(bx, by, params).total() * steps as f64
    }

    /// Like [`run_time`](Self::run_time) with an explicit distribution.
    pub fn run_time_dist(
        &self,
        bx: usize,
        by: usize,
        dist: crate::decomp::Distribution,
        params: &PopParams,
        steps: usize,
    ) -> f64 {
        self.step_time_dist(bx, by, dist, params).total() * steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_clustersim::machines::sp3_seaborg;

    fn small_model(nodes: usize, ppn: usize) -> PopModel {
        PopModel::new(OceanGrid::synthetic(360, 240), sp3_seaborg(nodes, ppn))
    }

    #[test]
    fn step_time_is_positive_and_decomposed() {
        let m = small_model(4, 8);
        let t = m.step_time(36, 24, &PopParams::default());
        assert!(t.baroclinic > 0.0);
        assert!(t.barotropic > 0.0);
        assert!(t.tracer > 0.0);
        assert!(t.io > 0.0);
        assert!((t.total() - (t.baroclinic + t.barotropic + t.tracer + t.io)).abs() < 1e-15);
    }

    #[test]
    fn tuned_params_beat_defaults() {
        let m = small_model(4, 8);
        let default = m.step_time(36, 24, &PopParams::default()).total();
        let tuned = m.step_time(36, 24, &PopParams::paper_tuned()).total();
        let improvement = 100.0 * (default - tuned) / default;
        assert!(
            (5.0..35.0).contains(&improvement),
            "parameter tuning improvement {improvement}%"
        );
    }

    #[test]
    fn tiny_blocks_pay_halo_and_latency() {
        let m = small_model(4, 8);
        let p = PopParams::default();
        let tiny = m.step_time(6, 6, &p).total();
        let medium = m.step_time(36, 30, &p).total();
        assert!(tiny > medium, "tiny {tiny} medium {medium}");
    }

    #[test]
    fn giant_blocks_pay_imbalance() {
        let m = small_model(4, 8);
        let p = PopParams::default();
        // One block per 4 procs (idle procs) vs a balanced medium size.
        let giant = m.step_time(180, 240, &p).total();
        let medium = m.step_time(36, 30, &p).total();
        assert!(giant > medium, "giant {giant} medium {medium}");
    }

    #[test]
    fn best_block_size_depends_on_topology() {
        // Sweep a small block menu on two topologies of equal processor
        // count; the argmin must differ or at least the ranking must change.
        let menu = [(18usize, 15usize), (36, 30), (45, 40), (60, 48), (90, 60)];
        let p = PopParams::default();
        let times = |nodes, ppn| {
            let m = small_model(nodes, ppn);
            menu.map(|(bx, by)| m.step_time(bx, by, &p).total())
        };
        let wide = times(2, 16); // 2 nodes × 16 procs
        let narrow = times(16, 2); // 16 nodes × 2 procs
        let argmin = |v: &[f64; 5]| {
            v.iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty")
        };
        // The narrow topology pays inter-node latency on most halo
        // exchanges, shifting the optimum toward larger blocks.
        let wide_best = argmin(&wide);
        let narrow_best = argmin(&narrow);
        assert!(
            narrow_best >= wide_best,
            "narrow {narrow_best} wide {wide_best}: {narrow:?} {wide:?}"
        );
        // And the relative cost of the smallest block must be worse on the
        // narrow topology.
        assert!(narrow[0] / narrow[wide_best] > wide[0] / wide[wide_best]);
    }

    #[test]
    fn distribution_scheme_changes_the_time() {
        use crate::decomp::Distribution;
        let m = small_model(4, 8);
        let p = PopParams::default();
        let times: Vec<f64> = Distribution::ALL
            .iter()
            .map(|(d, _)| m.step_time_dist(36, 30, *d, &p).total())
            .collect();
        // The schemes must actually differ (locality and balance move).
        assert!(
            times.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-12),
            "{times:?}"
        );
    }

    #[test]
    fn run_time_scales_with_steps() {
        let m = small_model(2, 4);
        let p = PopParams::default();
        let t1 = m.run_time(36, 24, &p, 1);
        let t10 = m.run_time(36, 24, &p, 10);
        assert!((t10 - 10.0 * t1).abs() < 1e-12);
    }
}

//! Block decomposition of the ocean grid.
//!
//! POP tiles the `nx × ny` grid with `bx × by` blocks, drops blocks that
//! contain no ocean points, and deals the surviving blocks to processors
//! (round-robin "rake" distribution, as in POP's `distribution.F90`). The
//! decomposition exposes the three quantities the block-size tuning trades
//! off:
//!
//! * per-processor ocean work (load balance — blocks rarely divide evenly),
//! * halo perimeter per block (communication volume, amortised by big
//!   blocks),
//! * wasted land points inside mixed blocks (carved out by small blocks).

use crate::grid::OceanGrid;

/// How surviving blocks are dealt to processors. POP ships several
/// distribution schemes (the related-work discussion of Zoltan in §VIII is
/// about exactly this class of choice); they trade load balance against
/// neighbour locality:
///
/// * [`Distribution::RoundRobin`] — POP's "rake": deal blocks cyclically.
///   Best balance, worst locality (spatial neighbours land on different
///   processors).
/// * [`Distribution::Cartesian`] — tile the block grid with a processor
///   grid. Best locality, balance suffers when land concentrates in some
///   tiles.
/// * [`Distribution::SpaceFilling`] — order blocks along a Morton curve and
///   cut into contiguous chunks: near-round-robin balance with much better
///   locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Cyclic deal ("rake").
    RoundRobin,
    /// 2-D processor-grid tiling.
    Cartesian,
    /// Morton-order contiguous chunks.
    SpaceFilling,
}

impl Distribution {
    /// All distribution schemes, with their POP-style labels.
    pub const ALL: [(Distribution, &'static str); 3] = [
        (Distribution::RoundRobin, "rake"),
        (Distribution::Cartesian, "cartesian"),
        (Distribution::SpaceFilling, "spacecurve"),
    ];

    /// Parse a label.
    pub fn from_label(s: &str) -> Option<Distribution> {
        Self::ALL.iter().find(|(_, l)| *l == s).map(|(d, _)| *d)
    }

    /// The label.
    pub fn label(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|(d, _)| *d == self)
            .map(|(_, l)| *l)
            .expect("every variant is listed")
    }
}

/// Interleave the low 16 bits of `x` and `y` into a Morton code.
fn morton(x: usize, y: usize) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    }
    spread(x as u64) | (spread(y as u64) << 1)
}

/// Factor `n` into the most square `(px, py)` with `px·py = n`.
fn near_square_factors(n: usize) -> (usize, usize) {
    let mut best = (1, n);
    let mut d = 1;
    while d * d <= n {
        if n % d == 0 {
            best = (d, n / d);
        }
        d += 1;
    }
    best
}

/// One surviving (non-land) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Block column index.
    pub bi: usize,
    /// Block row index.
    pub bj: usize,
    /// Ocean points inside the block.
    pub ocean_points: usize,
    /// Total points inside the block (edge blocks may be smaller).
    pub total_points: usize,
}

/// The full decomposition for a given block size and processor count.
#[derive(Debug, Clone)]
pub struct BlockDecomposition {
    /// Block width.
    pub bx: usize,
    /// Block height.
    pub by: usize,
    /// Blocks per grid row.
    pub nbx: usize,
    /// Blocks per grid column.
    pub nby: usize,
    /// Surviving ocean blocks.
    pub blocks: Vec<Block>,
    /// Owner processor of each surviving block (parallel to `blocks`).
    pub owner: Vec<usize>,
    /// Processor count the blocks were dealt to.
    pub nprocs: usize,
}

impl BlockDecomposition {
    /// Decompose `grid` into `bx × by` blocks for `nprocs` processors using
    /// the rake (round-robin) distribution — POP's default.
    pub fn new(grid: &OceanGrid, bx: usize, by: usize, nprocs: usize) -> Self {
        Self::with_distribution(grid, bx, by, nprocs, Distribution::RoundRobin)
    }

    /// Decompose with an explicit block-distribution scheme.
    pub fn with_distribution(
        grid: &OceanGrid,
        bx: usize,
        by: usize,
        nprocs: usize,
        dist: Distribution,
    ) -> Self {
        assert!(bx >= 1 && by >= 1 && nprocs >= 1);
        let nbx = grid.nx.div_ceil(bx);
        let nby = grid.ny.div_ceil(by);
        let mut blocks = Vec::new();
        for bj in 0..nby {
            for bi in 0..nbx {
                let i0 = bi * bx;
                let j0 = bj * by;
                let i1 = (i0 + bx).min(grid.nx);
                let j1 = (j0 + by).min(grid.ny);
                let ocean = grid.ocean_in_block(i0, j0, i1, j1);
                if ocean > 0 {
                    blocks.push(Block {
                        bi,
                        bj,
                        ocean_points: ocean,
                        total_points: (i1 - i0) * (j1 - j0),
                    });
                }
            }
        }
        let owner = match dist {
            // Rake: deal blocks round-robin in index order, which spreads
            // spatially adjacent blocks over distinct processors.
            Distribution::RoundRobin => (0..blocks.len()).map(|k| k % nprocs).collect(),
            // Cartesian: tile the (nbx × nby) block grid with a near-square
            // processor grid; each block belongs to its tile's processor.
            Distribution::Cartesian => {
                let (px, py) = near_square_factors(nprocs);
                blocks
                    .iter()
                    .map(|b| {
                        let tx = (b.bi * px / nbx).min(px - 1);
                        let ty = (b.bj * py / nby).min(py - 1);
                        ty * px + tx
                    })
                    .collect()
            }
            // Space-filling: order surviving blocks along a Morton curve and
            // cut the sequence into `nprocs` contiguous chunks.
            Distribution::SpaceFilling => {
                let mut order: Vec<usize> = (0..blocks.len()).collect();
                order.sort_by_key(|&k| morton(blocks[k].bi, blocks[k].bj));
                let chunk = blocks.len().div_ceil(nprocs).max(1);
                let mut owner = vec![0usize; blocks.len()];
                for (rank, &k) in order.iter().enumerate() {
                    owner[k] = (rank / chunk).min(nprocs - 1);
                }
                owner
            }
        };
        BlockDecomposition {
            bx,
            by,
            nbx,
            nby,
            blocks,
            owner,
            nprocs,
        }
    }

    /// Number of surviving blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks eliminated because they were all land.
    pub fn eliminated_blocks(&self) -> usize {
        self.nbx * self.nby - self.blocks.len()
    }

    /// Computed points (block area including land inside mixed blocks) per
    /// processor — POP computes whole blocks, so land inside a surviving
    /// block is wasted work.
    pub fn work_per_proc(&self) -> Vec<usize> {
        let mut work = vec![0usize; self.nprocs];
        for (b, &o) in self.blocks.iter().zip(&self.owner) {
            work[o] += b.total_points;
        }
        work
    }

    /// Load imbalance `max/mean` of per-processor work (∞-safe: returns a
    /// large value when some processor is idle).
    pub fn load_imbalance(&self) -> f64 {
        let work = self.work_per_proc();
        let max = work.iter().copied().max().unwrap_or(0) as f64;
        let sum: usize = work.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / self.nprocs as f64;
        max / mean
    }

    /// Total halo perimeter points per processor: each owned block
    /// exchanges a halo of width `halo` along each of its four sides with
    /// neighbouring blocks. `(intra, inter)` split is decided by the caller;
    /// this returns the total per-proc perimeter points.
    pub fn halo_points_per_proc(&self, halo: usize) -> Vec<usize> {
        let mut pts = vec![0usize; self.nprocs];
        for (b, &o) in self.blocks.iter().zip(&self.owner) {
            // Perimeter of the (possibly clipped) block.
            let w = self.bx;
            let h = self.by;
            pts[o] += 2 * halo * (w + h);
            let _ = b;
        }
        pts
    }

    /// Fraction of neighbouring-block pairs whose owners share a node,
    /// given `procs_per_node` (node-major rank placement). This is the
    /// topology sensitivity of the halo exchange.
    pub fn intra_node_neighbor_fraction(&self, procs_per_node: usize) -> f64 {
        assert!(procs_per_node >= 1);
        // Index blocks by (bi, bj) for neighbour lookup.
        let mut index = std::collections::HashMap::new();
        for (k, b) in self.blocks.iter().enumerate() {
            index.insert((b.bi, b.bj), k);
        }
        let mut pairs = 0usize;
        let mut intra = 0usize;
        for (k, b) in self.blocks.iter().enumerate() {
            for (di, dj) in [(1i64, 0i64), (0, 1)] {
                let ni = b.bi as i64 + di;
                let nj = b.bj as i64 + dj;
                if ni < 0 || nj < 0 {
                    continue;
                }
                if let Some(&nk) = index.get(&(ni as usize, nj as usize)) {
                    pairs += 1;
                    let a = self.owner[k];
                    let c = self.owner[nk];
                    if a == c || a / procs_per_node == c / procs_per_node {
                        intra += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            1.0
        } else {
            intra as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ocean_decomposition_keeps_every_block() {
        let g = OceanGrid::all_ocean(100, 80);
        let d = BlockDecomposition::new(&g, 25, 20, 4);
        assert_eq!(d.block_count(), 16);
        assert_eq!(d.eliminated_blocks(), 0);
    }

    #[test]
    fn land_blocks_are_eliminated() {
        let g = OceanGrid::synthetic(360, 240);
        let small = BlockDecomposition::new(&g, 15, 15, 16);
        let large = BlockDecomposition::new(&g, 120, 120, 16);
        assert!(
            small.eliminated_blocks() > 0,
            "some blocks must be all-land"
        );
        // Smaller blocks eliminate a larger *fraction* of the grid's land.
        let small_waste: usize = small
            .blocks
            .iter()
            .map(|b| b.total_points - b.ocean_points)
            .sum();
        let large_waste: usize = large
            .blocks
            .iter()
            .map(|b| b.total_points - b.ocean_points)
            .sum();
        assert!(small_waste < large_waste);
    }

    #[test]
    fn work_is_conserved() {
        let g = OceanGrid::synthetic(200, 150);
        let d = BlockDecomposition::new(&g, 20, 15, 8);
        let total: usize = d.work_per_proc().iter().sum();
        let block_total: usize = d.blocks.iter().map(|b| b.total_points).sum();
        assert_eq!(total, block_total);
        assert!(block_total >= g.ocean_points());
    }

    #[test]
    fn divisible_block_count_balances_perfectly_on_all_ocean() {
        let g = OceanGrid::all_ocean(160, 160);
        // 64 equal blocks over 16 procs: perfect balance.
        let d = BlockDecomposition::new(&g, 20, 20, 16);
        assert!((d.load_imbalance() - 1.0).abs() < 1e-12);
        // 63 surviving blocks over 16 procs cannot balance perfectly.
        let d2 = BlockDecomposition::new(&g, 23, 23, 16);
        assert!(d2.load_imbalance() > 1.05);
    }

    #[test]
    fn halo_points_scale_with_perimeter() {
        let g = OceanGrid::all_ocean(120, 120);
        let chunky = BlockDecomposition::new(&g, 60, 60, 4);
        let slivers = BlockDecomposition::new(&g, 120, 5, 4);
        let chunky_halo: usize = chunky.halo_points_per_proc(2).iter().sum();
        let sliver_halo: usize = slivers.halo_points_per_proc(2).iter().sum();
        // Same area, but slivers have far more perimeter.
        assert!(sliver_halo > 2 * chunky_halo);
    }

    #[test]
    fn morton_codes_order_locally() {
        assert!(morton(0, 0) < morton(1, 0));
        assert!(morton(1, 1) < morton(2, 2));
        assert_eq!(morton(3, 5), morton(3, 5));
    }

    #[test]
    fn near_square_factorisation() {
        assert_eq!(near_square_factors(16), (4, 4));
        assert_eq!(near_square_factors(48), (6, 8));
        assert_eq!(near_square_factors(7), (1, 7));
    }

    #[test]
    fn distribution_labels_roundtrip() {
        for (d, l) in Distribution::ALL {
            assert_eq!(Distribution::from_label(l), Some(d));
            assert_eq!(d.label(), l);
        }
        assert_eq!(Distribution::from_label("bogus"), None);
    }

    #[test]
    fn all_distributions_conserve_work() {
        let g = OceanGrid::synthetic(240, 160);
        let total = |d| {
            BlockDecomposition::with_distribution(&g, 24, 16, 12, d)
                .work_per_proc()
                .iter()
                .sum::<usize>()
        };
        let reference = total(Distribution::RoundRobin);
        assert_eq!(total(Distribution::Cartesian), reference);
        assert_eq!(total(Distribution::SpaceFilling), reference);
    }

    #[test]
    fn cartesian_beats_rake_on_neighbor_locality() {
        // 12x12 blocks over 16 procs: the block-grid width does not divide
        // the processor count, so the rake scatters neighbours (a dividing
        // width would pathologically re-align them).
        let g = OceanGrid::all_ocean(240, 240);
        let rake = BlockDecomposition::with_distribution(&g, 20, 20, 16, Distribution::RoundRobin);
        let cart = BlockDecomposition::with_distribution(&g, 20, 20, 16, Distribution::Cartesian);
        let sfc = BlockDecomposition::with_distribution(&g, 20, 20, 16, Distribution::SpaceFilling);
        let f = |d: &BlockDecomposition| d.intra_node_neighbor_fraction(4);
        assert!(
            f(&cart) > f(&rake),
            "cartesian {} rake {}",
            f(&cart),
            f(&rake)
        );
        assert!(f(&sfc) > f(&rake), "sfc {} rake {}", f(&sfc), f(&rake));
    }

    #[test]
    fn rake_balances_better_than_cartesian_on_land() {
        // Land concentrates in some cartesian tiles, so its balance is
        // worse; the rake deals ocean blocks evenly.
        let g = OceanGrid::synthetic(360, 240);
        let rake = BlockDecomposition::with_distribution(&g, 15, 15, 16, Distribution::RoundRobin);
        let cart = BlockDecomposition::with_distribution(&g, 15, 15, 16, Distribution::Cartesian);
        assert!(rake.load_imbalance() <= cart.load_imbalance());
    }

    #[test]
    fn wider_nodes_increase_intra_node_fraction() {
        let g = OceanGrid::all_ocean(240, 240);
        let d = BlockDecomposition::new(&g, 30, 30, 16);
        let narrow = d.intra_node_neighbor_fraction(1);
        let wide = d.intra_node_neighbor_fraction(8);
        assert!(wide > narrow);
        assert!(narrow >= 0.0 && wide <= 1.0);
    }
}

//! Active Harmony adapters for the POP experiments.
//!
//! Two tunable applications, matching §V of the paper:
//!
//! * [`PopBlockApp`] — block-size tuning (Figure 4): parameters `bx`, `by`;
//! * [`PopParamApp`] — namelist tuning (Tables I/II): `num_iotasks` plus the
//!   19 categorical choices, with the block size fixed.

use crate::grid::OceanGrid;
use crate::model::PopModel;
use crate::params::PopParams;
use ah_clustersim::{Machine, NoiseModel};
use ah_core::offline::{RunMeasurement, ShortRunApp};
use ah_core::space::{Configuration, SearchSpace};

/// Default block size shipped with the paper's POP configuration.
pub const DEFAULT_BLOCK: (usize, usize) = (180, 100);

/// Block-size tuning application (Figure 4).
pub struct PopBlockApp {
    model: PopModel,
    params: PopParams,
    steps: usize,
    /// When true, the block-distribution scheme (rake / cartesian /
    /// spacecurve) becomes a third tunable parameter.
    pub tune_distribution: bool,
    /// Block-size lattice stride (grid sizes are multiples of 5 in the
    /// paper's best-found blocks: 120×150, 150×120, 45×400).
    pub block_step: i64,
    /// Inclusive block-size range.
    pub block_range: (i64, i64),
    noise: NoiseModel,
    /// Restart+warm-up overhead charged per short run.
    pub overhead: f64,
    runs: usize,
}

impl PopBlockApp {
    /// Create a block-size tuner over `steps` timesteps per short run.
    pub fn new(grid: OceanGrid, machine: Machine, steps: usize) -> Self {
        PopBlockApp {
            model: PopModel::new(grid, machine),
            params: PopParams::default(),
            steps,
            tune_distribution: false,
            block_step: 5,
            block_range: (15, 600),
            noise: NoiseModel::none(),
            overhead: 0.0,
            runs: 0,
        }
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = NoiseModel::new(sigma, seed);
        self
    }

    /// The underlying model.
    pub fn model(&self) -> &PopModel {
        &self.model
    }

    /// Short runs performed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Time of a specific block size with the app's fixed parameters.
    pub fn time_of(&self, bx: usize, by: usize) -> f64 {
        self.model.run_time(bx, by, &self.params, self.steps)
    }
}

impl ShortRunApp for PopBlockApp {
    fn space(&self) -> SearchSpace {
        let mut builder = SearchSpace::builder()
            .int(
                "bx",
                self.block_range.0,
                self.block_range.1,
                self.block_step,
            )
            .int(
                "by",
                self.block_range.0,
                self.block_range.1,
                self.block_step,
            );
        if self.tune_distribution {
            builder = builder.enumeration(
                "distribution",
                crate::decomp::Distribution::ALL.iter().map(|(_, l)| *l),
            );
        }
        builder.build().expect("block space is valid")
    }

    fn default_config(&self) -> Configuration {
        let mut coords = vec![DEFAULT_BLOCK.0 as f64, DEFAULT_BLOCK.1 as f64];
        if self.tune_distribution {
            coords.push(0.0); // rake is POP's default
        }
        self.space().project(&coords)
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let bx = config.int("bx").expect("bx present") as usize;
        let by = config.int("by").expect("by present") as usize;
        let dist = config
            .choice("distribution")
            .and_then(crate::decomp::Distribution::from_label)
            .unwrap_or(crate::decomp::Distribution::RoundRobin);
        let t = self.noise.apply(
            self.model
                .run_time_dist(bx, by, dist, &self.params, self.steps),
        );
        RunMeasurement {
            exec_time: t,
            warmup_time: self.overhead * 0.5,
            restart_cost: self.overhead * 0.5,
        }
    }
}

/// Namelist parameter tuning application (Tables I/II).
pub struct PopParamApp {
    model: PopModel,
    block: (usize, usize),
    steps: usize,
    noise: NoiseModel,
    /// Restart+warm-up overhead charged per short run.
    pub overhead: f64,
    runs: usize,
}

impl PopParamApp {
    /// Create a parameter tuner with a fixed block size.
    pub fn new(grid: OceanGrid, machine: Machine, block: (usize, usize), steps: usize) -> Self {
        PopParamApp {
            model: PopModel::new(grid, machine),
            block,
            steps,
            noise: NoiseModel::none(),
            overhead: 0.0,
            runs: 0,
        }
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = NoiseModel::new(sigma, seed);
        self
    }

    /// Short runs performed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Time under a specific parameter assignment.
    pub fn time_of(&self, params: &PopParams) -> f64 {
        self.model
            .run_time(self.block.0, self.block.1, params, self.steps)
    }
}

impl ShortRunApp for PopParamApp {
    fn space(&self) -> SearchSpace {
        PopParams::space()
    }

    fn default_config(&self) -> Configuration {
        PopParams::space().project(&PopParams::default().to_coords())
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let params = PopParams::from_config(config);
        let t = self.noise.apply(self.time_of(&params));
        RunMeasurement {
            exec_time: t,
            warmup_time: self.overhead * 0.5,
            restart_cost: self.overhead * 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_clustersim::machines::{hockney, sp3_seaborg};
    use ah_core::offline::OfflineTuner;
    use ah_core::session::SessionOptions;
    use ah_core::strategy::{NelderMead, NelderMeadOptions, StartPoint};

    fn small_grid() -> OceanGrid {
        OceanGrid::synthetic(360, 240)
    }

    #[test]
    fn block_tuning_beats_the_default_block() {
        let mut app = PopBlockApp::new(small_grid(), sp3_seaborg(4, 8), 5);
        // The paper default 180×100 is oversized for this downscaled grid,
        // exactly like the production default was for some topologies.
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 60,
            seed: 51,
            ..Default::default()
        });
        let strategy = NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(vec![180.0, 100.0]),
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(strategy));
        assert!(
            out.improvement_pct() > 3.0,
            "improvement {}%",
            out.improvement_pct()
        );
    }

    #[test]
    fn param_tuning_approaches_paper_tuned_values() {
        let mut app = PopParamApp::new(small_grid(), hockney(8, 4), (36, 30), 5);
        let default_time = app.time_of(&PopParams::default());
        let ideal_time = app.time_of(&PopParams::paper_tuned());
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 150,
            seed: 52,
            ..Default::default()
        });
        let strategy = NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(PopParams::default().to_coords()),
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(strategy));
        let gain = out.improvement_pct();
        let ideal_gain = 100.0 * (default_time - ideal_time) / default_time;
        assert!(
            gain > 0.5 * ideal_gain,
            "found {gain}% of an ideal {ideal_gain}%"
        );
    }

    #[test]
    fn distribution_tuning_extends_the_space() {
        let mut app = PopBlockApp::new(small_grid(), sp3_seaborg(4, 8), 2);
        app.tune_distribution = true;
        let space = ah_core::offline::ShortRunApp::space(&app);
        assert_eq!(space.dims(), 3);
        let cfg = app.default_config();
        assert_eq!(cfg.choice("distribution"), Some("rake"));
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 40,
            seed: 53,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        // With the extra dimension the tuner must do at least as well as
        // leaving the distribution at its default.
        assert!(out.result.best_cost <= out.default_cost);
    }

    #[test]
    fn default_configs_decode_to_defaults() {
        let app = PopBlockApp::new(small_grid(), sp3_seaborg(2, 4), 1);
        let cfg = app.default_config();
        assert_eq!(cfg.int("bx"), Some(180));
        assert_eq!(cfg.int("by"), Some(100));
        let papp = PopParamApp::new(small_grid(), hockney(2, 2), (36, 30), 1);
        let cfg = papp.default_config();
        assert_eq!(cfg.int("num_iotasks"), Some(1));
        assert_eq!(cfg.choice("state_choice"), Some("jmcd"));
    }

    #[test]
    fn overheads_flow_into_measurements() {
        let mut app = PopBlockApp::new(small_grid(), sp3_seaborg(2, 4), 1);
        app.overhead = 10.0;
        let cfg = app.default_config();
        let m = app.run_short(&cfg);
        assert_eq!(m.warmup_time + m.restart_cost, 10.0);
        assert_eq!(app.runs(), 1);
    }
}

//! # ah-gs2 — a GS2 gyrokinetic turbulence code performance model
//!
//! Reproduces the GS2 case study of the HPDC'06 Active Harmony paper (§VI).
//! GS2 evolves a distribution function over a 5-dimensional index space —
//! `x`, `y` (spatial/spectral), `l` (pitch angle), `e` (energy), `s`
//! (species) — distributed over processors by flattening the dimensions in a
//! tunable order (the **data layout**, e.g. the default `lxyes`) and cutting
//! the flattened space into contiguous chunks.
//!
//! Each timestep has a *linear* phase that needs whole `x–y` planes local
//! (field solve / FFTs) and, when the collision operator is enabled, a
//! *collision* phase that needs whole `l–e` pencils local. Whenever the
//! layout does not keep a phase's dimensions contiguous within one chunk,
//! the data must be redistributed — an alltoall whose volume this crate
//! computes *exactly* from the ownership map. That redistribution volume is
//! why `yxles` runs 3.4× faster than `lxyes` on 128 processors (and 2.3×
//! with collisions), and why the right layout depends on the processor
//! count — the alignment cliffs of Figure 5.
//!
//! The resolution parameters of Tables III/IV are also modelled: `negrid`
//! sizes the energy dimension, `ntheta` scales the per-element work along
//! the field line, and `nodes` picks how much of the machine to use.

#![warn(missing_docs)]

pub mod decomp;
pub mod layout;
pub mod model;
pub mod tunable;

pub use decomp::{locality, Decomposition};
pub use layout::{Dim, Layout};
pub use model::{CollisionModel, Gs2Config, Gs2Model};
pub use tunable::{Gs2CombinedApp, Gs2LayoutApp, Gs2ResolutionApp};

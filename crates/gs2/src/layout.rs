//! GS2 data layouts: orderings of the five distributed dimensions.

use std::fmt;
use std::str::FromStr;

/// One of the five distributed dimensions of the GS2 index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Spectral/spatial x.
    X,
    /// Spectral/spatial y.
    Y,
    /// Pitch angle λ.
    L,
    /// Energy.
    E,
    /// Particle species.
    S,
}

impl Dim {
    /// All dimensions, in canonical `x y l e s` order.
    pub const ALL: [Dim; 5] = [Dim::X, Dim::Y, Dim::L, Dim::E, Dim::S];

    /// The layout letter.
    pub fn letter(self) -> char {
        match self {
            Dim::X => 'x',
            Dim::Y => 'y',
            Dim::L => 'l',
            Dim::E => 'e',
            Dim::S => 's',
        }
    }

    /// Parse a layout letter.
    pub fn from_letter(c: char) -> Option<Dim> {
        match c {
            'x' => Some(Dim::X),
            'y' => Some(Dim::Y),
            'l' => Some(Dim::L),
            'e' => Some(Dim::E),
            's' => Some(Dim::S),
            _ => None,
        }
    }
}

/// A data layout: a permutation of the five dimensions. The first dimension
/// varies fastest in the flattened index space (it is the innermost,
/// contiguous one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    dims: [Dim; 5],
}

impl Layout {
    /// GS2's shipped default layout.
    pub const DEFAULT: &'static str = "lxyes";

    /// Build from an ordered dimension array.
    pub fn new(dims: [Dim; 5]) -> Self {
        debug_assert!(
            Dim::ALL.iter().all(|d| dims.contains(d)),
            "layout must be a permutation"
        );
        Layout { dims }
    }

    /// The dimension order, fastest first.
    pub fn dims(&self) -> &[Dim; 5] {
        &self.dims
    }

    /// Position of a dimension in the layout (0 = fastest varying).
    pub fn position(&self, d: Dim) -> usize {
        self.dims
            .iter()
            .position(|&x| x == d)
            .expect("layout contains every dimension")
    }

    /// All 120 layouts, in lexicographic order of their strings.
    pub fn all() -> Vec<Layout> {
        let mut out = Vec::with_capacity(120);
        let mut dims = Dim::ALL;
        permute(&mut dims, 0, &mut out);
        out.sort_by_key(|l| l.to_string());
        out
    }

    /// The handful of layouts Figure 5 compares.
    pub fn paper_candidates() -> Vec<Layout> {
        ["lxyes", "yxles", "yxels", "xyles", "lyxes", "exyls"]
            .iter()
            .map(|s| s.parse().expect("candidate layouts parse"))
            .collect()
    }
}

fn permute(dims: &mut [Dim; 5], k: usize, out: &mut Vec<Layout>) {
    if k == 5 {
        out.push(Layout::new(*dims));
        return;
    }
    for i in k..5 {
        dims.swap(k, i);
        permute(dims, k + 1, out);
        dims.swap(k, i);
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.dims {
            write!(f, "{}", d.letter())?;
        }
        Ok(())
    }
}

/// Error parsing a layout string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayoutError(pub String);

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid layout `{}`: need a permutation of xyles",
            self.0
        )
    }
}

impl std::error::Error for ParseLayoutError {}

impl FromStr for Layout {
    type Err = ParseLayoutError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseLayoutError(s.to_string());
        if s.len() != 5 {
            return Err(err());
        }
        let mut dims = [Dim::X; 5];
        for (i, c) in s.chars().enumerate() {
            dims[i] = Dim::from_letter(c).ok_or_else(err)?;
        }
        for d in Dim::ALL {
            if !dims.contains(&d) {
                return Err(err());
            }
        }
        Ok(Layout::new(dims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["lxyes", "yxles", "yxels", "sxyel"] {
            let l: Layout = s.parse().unwrap();
            assert_eq!(l.to_string(), s);
        }
    }

    #[test]
    fn bad_strings_are_rejected() {
        assert!("lxye".parse::<Layout>().is_err()); // too short
        assert!("lxyez".parse::<Layout>().is_err()); // bad letter
        assert!("llxye".parse::<Layout>().is_err()); // repeat
    }

    #[test]
    fn positions_match_string_order() {
        let l: Layout = "yxles".parse().unwrap();
        assert_eq!(l.position(Dim::Y), 0);
        assert_eq!(l.position(Dim::X), 1);
        assert_eq!(l.position(Dim::S), 4);
    }

    #[test]
    fn all_layouts_are_120_unique_permutations() {
        let all = Layout::all();
        assert_eq!(all.len(), 120);
        let set: std::collections::HashSet<String> = all.iter().map(|l| l.to_string()).collect();
        assert_eq!(set.len(), 120);
        assert!(set.contains("lxyes"));
        assert!(set.contains("yxles"));
    }

    #[test]
    fn paper_candidates_include_default_and_winners() {
        let c = Layout::paper_candidates();
        let strs: Vec<String> = c.iter().map(|l| l.to_string()).collect();
        assert!(strs.contains(&"lxyes".to_string()));
        assert!(strs.contains(&"yxles".to_string()));
        assert!(strs.contains(&"yxels".to_string()));
    }
}

//! Active Harmony adapters for the GS2 experiments.
//!
//! * [`Gs2LayoutApp`] — data-layout tuning (§VI first part, Figure 5): one
//!   categorical parameter over all 120 layout permutations;
//! * [`Gs2ResolutionApp`] — `(negrid, ntheta, nodes)` tuning at a fixed
//!   layout (Tables III and IV), the three parameters "identified by the
//!   application developer who is the expert with domain knowledge".

use crate::layout::Layout;
use crate::model::{Gs2Config, Gs2Model};
use ah_clustersim::NoiseModel;
use ah_core::offline::{RunMeasurement, ShortRunApp};
use ah_core::space::{Configuration, SearchSpace};

/// Data-layout tuning application.
pub struct Gs2LayoutApp {
    model: Gs2Model,
    base: Gs2Config,
    steps: usize,
    layouts: Vec<Layout>,
    noise: NoiseModel,
    runs: usize,
}

impl Gs2LayoutApp {
    /// Tune the layout of `base` over representative runs of `steps` steps.
    pub fn new(model: Gs2Model, base: Gs2Config, steps: usize) -> Self {
        Gs2LayoutApp {
            model,
            base,
            steps,
            layouts: Layout::all(),
            noise: NoiseModel::none(),
            runs: 0,
        }
    }

    /// Restrict the layout menu (e.g. to the Figure 5 candidates).
    pub fn with_layouts(mut self, layouts: Vec<Layout>) -> Self {
        assert!(!layouts.is_empty());
        self.layouts = layouts;
        self
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = NoiseModel::new(sigma, seed);
        self
    }

    /// Short runs performed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Run time of a specific layout under the base configuration.
    pub fn time_of(&self, layout: Layout) -> f64 {
        let cfg = Gs2Config {
            layout,
            ..self.base
        };
        self.model.run_time(&cfg, self.steps)
    }

    /// The wrapped model.
    pub fn model(&self) -> &Gs2Model {
        &self.model
    }
}

impl ShortRunApp for Gs2LayoutApp {
    fn space(&self) -> SearchSpace {
        SearchSpace::builder()
            .enumeration("layout", self.layouts.iter().map(|l| l.to_string()))
            .build()
            .expect("layout space is valid")
    }

    fn default_config(&self) -> Configuration {
        let space = self.space();
        let default = self.base.layout.to_string();
        space
            .configuration_from_strs([("layout", default.as_str())])
            .unwrap_or_else(|_| space.center())
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let layout: Layout = config
            .choice("layout")
            .expect("layout param present")
            .parse()
            .expect("layout labels are valid");
        RunMeasurement::pure(self.noise.apply(self.time_of(layout)))
    }
}

/// `(negrid, ntheta, nodes)` tuning application.
pub struct Gs2ResolutionApp {
    model: Gs2Model,
    base: Gs2Config,
    steps: usize,
    noise: NoiseModel,
    /// Inclusive `negrid` range (paper: resolutions the developer accepts).
    pub negrid_range: (i64, i64),
    /// Inclusive `ntheta` range and its lattice stride.
    pub ntheta_range: (i64, i64, i64),
    /// Inclusive `nodes` range.
    pub nodes_range: (i64, i64),
    runs: usize,
}

impl Gs2ResolutionApp {
    /// Tune `(negrid, ntheta, nodes)` at `base.layout`, with `steps`-step
    /// representative runs.
    pub fn new(model: Gs2Model, base: Gs2Config, steps: usize) -> Self {
        let max_nodes = model.max_nodes as i64;
        Gs2ResolutionApp {
            model,
            base,
            steps,
            noise: NoiseModel::none(),
            // Ranges the application developer accepts as producing valid
            // simulation resolutions (paper: "all the parameter value
            // ranges used for tuning ... will generate acceptable
            // simulation resolutions"; the systematic-sampling best used
            // negrid 8 and ntheta 16).
            negrid_range: (8, 32),
            ntheta_range: (16, 50, 2),
            nodes_range: (1, max_nodes),
            runs: 0,
        }
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = NoiseModel::new(sigma, seed);
        self
    }

    /// Short runs performed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Decode a configuration.
    pub fn config_of(&self, cfg: &Configuration) -> Gs2Config {
        Gs2Config {
            negrid: cfg.int("negrid").expect("negrid present") as usize,
            ntheta: cfg.int("ntheta").expect("ntheta present") as usize,
            nodes: cfg.int("nodes").expect("nodes present") as usize,
            ..self.base
        }
    }

    /// Run time of an explicit `(negrid, ntheta, nodes)` triple.
    pub fn time_of(&self, negrid: usize, ntheta: usize, nodes: usize) -> f64 {
        let cfg = Gs2Config {
            negrid,
            ntheta,
            nodes,
            ..self.base
        };
        self.model.run_time(&cfg, self.steps)
    }

    /// The wrapped model.
    pub fn model(&self) -> &Gs2Model {
        &self.model
    }
}

impl ShortRunApp for Gs2ResolutionApp {
    fn space(&self) -> SearchSpace {
        SearchSpace::builder()
            .int("negrid", self.negrid_range.0, self.negrid_range.1, 1)
            .int(
                "ntheta",
                self.ntheta_range.0,
                self.ntheta_range.1,
                self.ntheta_range.2,
            )
            .int("nodes", self.nodes_range.0, self.nodes_range.1, 1)
            .build()
            .expect("resolution space is valid")
    }

    fn default_config(&self) -> Configuration {
        self.space().project(&[
            self.base.negrid as f64,
            self.base.ntheta as f64,
            self.base.nodes as f64,
        ])
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let cfg = self.config_of(config);
        RunMeasurement::pure(self.noise.apply(self.model.run_time(&cfg, self.steps)))
    }
}

/// Combined layout + resolution tuning application (§VI conclusion: "Taken
/// together these two techniques reduced the runtime of GS2 by a factor of
/// 5.1"). One categorical layout dimension plus the three resolution
/// integers, searched jointly.
pub struct Gs2CombinedApp {
    model: Gs2Model,
    base: Gs2Config,
    steps: usize,
    layouts: Vec<Layout>,
    noise: NoiseModel,
    /// Inclusive `negrid` range.
    pub negrid_range: (i64, i64),
    /// Inclusive `ntheta` range and stride.
    pub ntheta_range: (i64, i64, i64),
    /// Inclusive `nodes` range.
    pub nodes_range: (i64, i64),
    runs: usize,
}

impl Gs2CombinedApp {
    /// Tune layout and `(negrid, ntheta, nodes)` together.
    pub fn new(model: Gs2Model, base: Gs2Config, steps: usize) -> Self {
        let max_nodes = model.max_nodes as i64;
        Gs2CombinedApp {
            model,
            base,
            steps,
            layouts: Layout::all(),
            noise: NoiseModel::none(),
            negrid_range: (8, 32),
            ntheta_range: (16, 50, 2),
            nodes_range: (1, max_nodes),
            runs: 0,
        }
    }

    /// Restrict the layout menu.
    pub fn with_layouts(mut self, layouts: Vec<Layout>) -> Self {
        assert!(!layouts.is_empty());
        self.layouts = layouts;
        self
    }

    /// Add measurement noise.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = NoiseModel::new(sigma, seed);
        self
    }

    /// Short runs performed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Decode a configuration of this app's space.
    pub fn config_of(&self, cfg: &Configuration) -> Gs2Config {
        Gs2Config {
            layout: cfg
                .choice("layout")
                .expect("layout present")
                .parse()
                .expect("layout labels valid"),
            negrid: cfg.int("negrid").expect("negrid present") as usize,
            ntheta: cfg.int("ntheta").expect("ntheta present") as usize,
            nodes: cfg.int("nodes").expect("nodes present") as usize,
            ..self.base
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Gs2Model {
        &self.model
    }
}

impl ShortRunApp for Gs2CombinedApp {
    fn space(&self) -> SearchSpace {
        SearchSpace::builder()
            .enumeration("layout", self.layouts.iter().map(|l| l.to_string()))
            .int("negrid", self.negrid_range.0, self.negrid_range.1, 1)
            .int(
                "ntheta",
                self.ntheta_range.0,
                self.ntheta_range.1,
                self.ntheta_range.2,
            )
            .int("nodes", self.nodes_range.0, self.nodes_range.1, 1)
            .build()
            .expect("combined space is valid")
    }

    fn default_config(&self) -> Configuration {
        let space = self.space();
        let layout = self.base.layout.to_string();
        let mut cfg = space
            .configuration_from_strs([("layout", layout.as_str())])
            .unwrap_or_else(|_| space.center());
        cfg.set(
            "negrid",
            ah_core::value::ParamValue::Int(self.base.negrid as i64),
        )
        .expect("negrid present");
        cfg.set(
            "ntheta",
            ah_core::value::ParamValue::Int(self.base.ntheta as i64),
        )
        .expect("ntheta present");
        cfg.set(
            "nodes",
            ah_core::value::ParamValue::Int(self.base.nodes as i64),
        )
        .expect("nodes present");
        cfg
    }

    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        self.runs += 1;
        let cfg = self.config_of(config);
        RunMeasurement::pure(self.noise.apply(self.model.run_time(&cfg, self.steps)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_core::offline::OfflineTuner;
    use ah_core::session::SessionOptions;
    use ah_core::strategy::{NelderMead, NelderMeadOptions, StartPoint};

    fn model() -> Gs2Model {
        let mut m = Gs2Model::on_seaborg(16, 16);
        // Shrink the problem so exact locality scans stay fast in tests.
        m.nx = 16;
        m.ny = 8;
        m.nl = 16;
        m
    }

    fn base() -> Gs2Config {
        Gs2Config {
            nodes: 8,
            ..Gs2Config::paper_default()
        }
    }

    #[test]
    fn layout_tuning_finds_a_fast_layout() {
        let mut app = Gs2LayoutApp::new(model(), base(), 10);
        let default_time = app.time_of(base().layout);
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 60,
            seed: 61,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        assert!(
            out.result.best_cost < default_time * 0.7,
            "tuned {} vs default {default_time}",
            out.result.best_cost
        );
    }

    #[test]
    fn restricted_menu_tunes_over_paper_candidates() {
        let mut app =
            Gs2LayoutApp::new(model(), base(), 10).with_layouts(Layout::paper_candidates());
        let space = app.space();
        assert_eq!(space.cardinality(), Some(6));
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 12,
            seed: 62,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        let best_layout = out.result.best_config.choice("layout").unwrap();
        assert_ne!(best_layout, "lxyes", "tuning should leave the default");
    }

    #[test]
    fn resolution_tuning_improves_benchmark_run() {
        let mut app = Gs2ResolutionApp::new(model(), base(), 10);
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 40,
            seed: 63,
            ..Default::default()
        });
        let strategy = NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(vec![16.0, 26.0, 8.0]),
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(strategy));
        assert!(
            out.improvement_pct() > 10.0,
            "improvement {}%",
            out.improvement_pct()
        );
    }

    #[test]
    fn resolution_space_matches_declared_ranges() {
        let app = Gs2ResolutionApp::new(model(), base(), 1);
        let space = app.space();
        let cfg = space.project(&[100.0, 100.0, 100.0]);
        assert_eq!(cfg.int("negrid"), Some(32));
        assert_eq!(cfg.int("ntheta"), Some(50));
        assert_eq!(cfg.int("nodes"), Some(16));
        let cfg = app.default_config();
        assert_eq!(app.config_of(&cfg).negrid, 16);
    }

    #[test]
    fn combined_tuning_beats_either_technique_alone() {
        let m = model();
        let base = base();
        // Layout-only gain.
        let mut layout_app = Gs2LayoutApp::new(m.clone(), base, 10);
        let layout_out = OfflineTuner::new(SessionOptions {
            max_evaluations: 40,
            seed: 71,
            ..Default::default()
        })
        .tune(&mut layout_app, Box::new(NelderMead::default()));
        // Combined gain.
        let mut combined_app = Gs2CombinedApp::new(m, base, 10);
        let combined_out = OfflineTuner::new(SessionOptions {
            max_evaluations: 80,
            seed: 72,
            ..Default::default()
        })
        .tune(&mut combined_app, Box::new(NelderMead::default()));
        assert!(
            combined_out.result.best_cost <= layout_out.result.best_cost * 1.02,
            "combined {} vs layout-only {}",
            combined_out.result.best_cost,
            layout_out.result.best_cost
        );
        assert!(combined_out.speedup() > layout_out.speedup() * 0.98);
    }

    #[test]
    fn combined_default_config_matches_base() {
        let app = Gs2CombinedApp::new(model(), base(), 1);
        let cfg = app.default_config();
        assert_eq!(cfg.choice("layout"), Some("lxyes"));
        assert_eq!(cfg.int("negrid"), Some(16));
        assert_eq!(cfg.int("ntheta"), Some(26));
        assert_eq!(cfg.int("nodes"), Some(8));
        let decoded = app.config_of(&cfg);
        assert_eq!(decoded.negrid, 16);
    }

    #[test]
    fn run_counter_tracks_short_runs() {
        let mut app = Gs2LayoutApp::new(model(), base(), 1);
        let cfg = app.default_config();
        app.run_short(&cfg);
        app.run_short(&cfg);
        assert_eq!(app.runs(), 2);
    }
}

//! The GS2 timestep performance model.
//!
//! Per timestep:
//!
//! * **linear/field phase** — always runs: per-processor compute
//!   proportional to its chunk of the 5-D space times `ntheta`, plus two
//!   redistributions (forward and back) whose volume is the *exact* number
//!   of elements that do not live on their `x–y`-pencil home processor
//!   (see [`crate::decomp::locality`]);
//! * **collision phase** — only with `collision_model` on: per-processor
//!   compute plus two redistributions keyed to the pitch-angle (`l`)
//!   pencils;
//! * a small global reduction (field diagnostics).
//!
//! Initialisation (response-matrix setup, reading the initial distribution)
//! is charged once per run and includes layout-dependent redistribution, so
//! short benchmarking runs (10 steps) and production runs (1,000 steps)
//! weigh tuning gains differently — exactly the Table III vs. Table IV
//! contrast.

use crate::decomp::{locality, Decomposition, DimSizes};
use crate::layout::{Dim, Layout};
use ah_clustersim::{NetworkModel, NodeSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Memoisation key for locality scans: `(layout, negrid, procs, phase tag)`.
type LocalityKey = (String, usize, usize, u8);

/// Gflop per element per `ntheta` point in the linear phase.
pub const GFLOP_LINEAR: f64 = 1.2e-7;
/// Gflop per element per `ntheta` point in the collision phase.
pub const GFLOP_COLLISION: f64 = 0.8e-7;
/// Bytes moved per redistributed element per `ntheta` point in the field
/// redistribution (complex distribution function).
pub const BYTES_PER_ELEMENT_THETA: f64 = 16.0;
/// Bytes per element-theta in the collision redistribution (velocity-space
/// moments only — roughly half the field payload).
pub const BYTES_PER_ELEMENT_THETA_COLL: f64 = 8.0;
/// Initialisation compute, Gflop per element per `ntheta` point.
pub const GFLOP_INIT: f64 = 1.0e-6;
/// Redistribution passes during initialisation (response-matrix setup
/// performs many field redistributions).
pub const INIT_REDIST_PASSES: f64 = 12.0;
/// Fixed startup seconds (input parsing, geometry setup).
pub const INIT_FIXED: f64 = 0.25;

/// Whether the collision operator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollisionModel {
    /// Collisionless run.
    None,
    /// Lorentz (pitch-angle scattering) collisions — needs whole
    /// velocity-space (`l`, `e`) pencils local.
    Lorentz,
}

/// A complete GS2 run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gs2Config {
    /// The data layout.
    pub layout: Layout,
    /// Energy grid size (`negrid`).
    pub negrid: usize,
    /// Grid points per 2π field-line segment (`ntheta`).
    pub ntheta: usize,
    /// Nodes used.
    pub nodes: usize,
    /// Collision operator.
    pub collision: CollisionModel,
}

impl Gs2Config {
    /// The paper's default configuration for the Table III/IV experiments:
    /// `lxyes`, `negrid 16`, `ntheta 26`, 32 nodes.
    pub fn paper_default() -> Self {
        Gs2Config {
            layout: Layout::DEFAULT.parse().expect("default layout parses"),
            negrid: 16,
            ntheta: 26,
            nodes: 32,
            collision: CollisionModel::None,
        }
    }
}

/// The GS2 performance model on a parameterised cluster.
///
/// # Example
///
/// ```
/// use ah_gs2::{Gs2Config, Gs2Model};
///
/// let model = Gs2Model::on_seaborg(16, 8); // 16-way nodes, up to 8 nodes
/// let default = Gs2Config::paper_default();
/// let cfg = Gs2Config { nodes: 8, ..default };
/// let t10 = model.run_time(&cfg, 10);
/// let t20 = model.run_time(&cfg, 20);
/// assert!(t20 > t10);
/// ```
#[derive(Debug, Clone)]
pub struct Gs2Model {
    /// Node hardware (processors per node, speed, contention).
    pub node: NodeSpec,
    /// Interconnect.
    pub network: NetworkModel,
    /// Maximum nodes available.
    pub max_nodes: usize,
    /// x dimension size.
    pub nx: usize,
    /// y dimension size.
    pub ny: usize,
    /// Pitch-angle dimension size.
    pub nl: usize,
    /// Species count.
    pub nspec: usize,
    /// Memoised locality results keyed by `(layout, negrid, procs, dim set)`.
    locality_cache: Arc<Mutex<HashMap<LocalityKey, f64>>>,
}

impl Gs2Model {
    /// A model with the paper's problem dimensions on the given hardware.
    pub fn new(node: NodeSpec, network: NetworkModel, max_nodes: usize) -> Self {
        Gs2Model {
            node,
            network,
            max_nodes,
            nx: 32,
            ny: 16,
            nl: 32,
            nspec: 2,
            locality_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The Seaborg-like SP-3 (16-way nodes).
    pub fn on_seaborg(procs_per_node: usize, max_nodes: usize) -> Self {
        let m = ah_clustersim::sp3_seaborg(1, procs_per_node);
        Gs2Model::new(m.nodes[0], m.network, max_nodes)
    }

    /// The Myrinet Linux cluster (dual-Xeon nodes).
    pub fn on_linux_cluster(max_nodes: usize) -> Self {
        let m = ah_clustersim::myrinet_linux(1, 2);
        Gs2Model::new(m.nodes[0], m.network, max_nodes)
    }

    /// Dimension sizes for a configuration.
    pub fn sizes(&self, cfg: &Gs2Config) -> DimSizes {
        DimSizes {
            x: self.nx,
            y: self.ny,
            l: self.nl,
            e: cfg.negrid,
            s: self.nspec,
        }
    }

    /// Processor count for a configuration.
    pub fn procs(&self, cfg: &Gs2Config) -> usize {
        cfg.nodes.min(self.max_nodes).max(1) * self.node.procs
    }

    fn cached_locality(&self, d: &Decomposition, needed: &[Dim], tag: u8) -> f64 {
        let key = (d.layout.to_string(), d.sizes.e, d.procs, tag);
        if let Some(&v) = self.locality_cache.lock().get(&key) {
            return v;
        }
        let v = locality(d, needed);
        self.locality_cache.lock().insert(key, v);
        v
    }

    /// Per-processor time of one redistribution pass for a phase with the
    /// given locality, at `ntheta` field-line points per element.
    fn redistribution_time(
        &self,
        cfg: &Gs2Config,
        d: &Decomposition,
        loc: f64,
        bytes_per_element_theta: f64,
    ) -> f64 {
        if loc >= 1.0 {
            return 0.0;
        }
        let procs = d.procs as f64;
        let nodes = cfg.nodes.min(self.max_nodes).max(1) as f64;
        let ppn = self.node.procs as f64;
        let n = d.sizes.total() as f64;
        let moved_elements = (1.0 - loc) * n;
        let bytes_total = moved_elements * cfg.ntheta as f64 * bytes_per_element_theta;
        // Bandwidth term: each node's interconnect link carries its share.
        let bw_time = bytes_total / (nodes * self.network.inter.bandwidth);
        // Latency term: each processor exchanges with roughly the fraction
        // of peers holding parts of its pencils; intra-node partners are
        // cheap, inter-node ones pay the full interconnect latency.
        let partners = ((1.0 - loc) * (procs - 1.0)).min(procs - 1.0).max(0.0);
        let frac_intra = if procs > 1.0 {
            (ppn - 1.0).max(0.0) / (procs - 1.0)
        } else {
            0.0
        };
        let lat_time = partners
            * (frac_intra * self.network.intra.latency
                + (1.0 - frac_intra) * self.network.inter.latency);
        bw_time + lat_time
    }

    /// Per-timestep execution time.
    pub fn step_time(&self, cfg: &Gs2Config) -> f64 {
        let procs = self.procs(cfg);
        let d = Decomposition::new(cfg.layout, self.sizes(cfg), procs);
        let speed = self.node.effective_speed(self.node.procs);
        let chunk_work = d.chunk() as f64 * cfg.ntheta as f64;

        // Linear/field phase.
        let lin_compute = chunk_work * GFLOP_LINEAR / speed;
        let loc_xy = self.cached_locality(&d, &[Dim::X, Dim::Y], 0);
        let lin_comm = 2.0 * self.redistribution_time(cfg, &d, loc_xy, BYTES_PER_ELEMENT_THETA);

        // Collision phase: needs l-e velocity pencils local, which neither
        // lxyes nor yxles provides — both pay a (cheaper) redistribution,
        // which is why collisions narrow but do not invert the layout gap.
        let (coll_compute, coll_comm) = match cfg.collision {
            CollisionModel::None => (0.0, 0.0),
            CollisionModel::Lorentz => {
                let loc_le = self.cached_locality(&d, &[Dim::L, Dim::E], 1);
                (
                    chunk_work * GFLOP_COLLISION / speed,
                    2.0 * self.redistribution_time(cfg, &d, loc_le, BYTES_PER_ELEMENT_THETA_COLL),
                )
            }
        };

        // Field reduction.
        let nodes = cfg.nodes.min(self.max_nodes).max(1);
        let reduce = self.network.allreduce_time(64.0, procs, nodes);

        lin_compute + lin_comm + coll_compute + coll_comm + reduce
    }

    /// One-off initialisation time (layout-dependent).
    pub fn init_time(&self, cfg: &Gs2Config) -> f64 {
        let procs = self.procs(cfg);
        let d = Decomposition::new(cfg.layout, self.sizes(cfg), procs);
        let speed = self.node.effective_speed(self.node.procs);
        let compute = d.chunk() as f64 * cfg.ntheta as f64 * GFLOP_INIT / speed;
        let loc_xy = self.cached_locality(&d, &[Dim::X, Dim::Y], 0);
        let redist =
            INIT_REDIST_PASSES * self.redistribution_time(cfg, &d, loc_xy, BYTES_PER_ELEMENT_THETA);
        INIT_FIXED + compute + redist
    }

    /// Total run time: initialisation plus `steps` timesteps.
    pub fn run_time(&self, cfg: &Gs2Config, steps: usize) -> f64 {
        self.init_time(cfg) + self.step_time(cfg) * steps as f64
    }

    /// Quantified fidelity loss relative to the reference resolution
    /// (`negrid 16`, `ntheta 26`): 0.0 at or above reference, growing
    /// quadratically as either grid coarsens (discretisation error of a
    /// second-order scheme). Feed this to
    /// [`TradeoffObjective`](ah_core::objective::TradeoffObjective) to
    /// automate the accuracy/performance tradeoff the paper's §VII
    /// discusses.
    pub fn fidelity_loss(&self, cfg: &Gs2Config) -> f64 {
        let e = (16.0 / cfg.negrid.max(1) as f64).powi(2) - 1.0;
        let t = (26.0 / cfg.ntheta.max(1) as f64).powi(2) - 1.0;
        0.5 * (e.max(0.0) + t.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(layout: &str, collision: CollisionModel) -> Gs2Config {
        Gs2Config {
            layout: layout.parse().expect("layout parses"),
            negrid: 16,
            ntheta: 26,
            nodes: 8,
            collision,
        }
    }

    fn seaborg_model() -> Gs2Model {
        Gs2Model::on_seaborg(16, 64)
    }

    #[test]
    fn yxles_beats_lxyes_without_collisions() {
        let m = seaborg_model();
        let t_lx = m.step_time(&cfg("lxyes", CollisionModel::None));
        let t_yx = m.step_time(&cfg("yxles", CollisionModel::None));
        let speedup = t_lx / t_yx;
        assert!(
            speedup > 2.0,
            "yxles should be much faster: {t_lx} vs {t_yx} ({speedup:.2}x)"
        );
    }

    #[test]
    fn collision_mode_narrows_the_gap() {
        let m = seaborg_model();
        let no = m.step_time(&cfg("lxyes", CollisionModel::None))
            / m.step_time(&cfg("yxles", CollisionModel::None));
        let with = m.step_time(&cfg("lxyes", CollisionModel::Lorentz))
            / m.step_time(&cfg("yxles", CollisionModel::Lorentz));
        assert!(
            with < no,
            "collisions punish yxles: ratio with={with:.2} vs without={no:.2}"
        );
        assert!(with > 1.0, "yxles still wins with collisions ({with:.2}x)");
    }

    #[test]
    fn init_is_layout_dependent_and_charged_once() {
        let m = seaborg_model();
        let lx = cfg("lxyes", CollisionModel::None);
        let yx = cfg("yxles", CollisionModel::None);
        assert!(m.init_time(&lx) > m.init_time(&yx));
        let r10 = m.run_time(&lx, 10);
        let r1000 = m.run_time(&lx, 1000);
        let step = m.step_time(&lx);
        assert!((r1000 - r10 - 990.0 * step).abs() < 1e-9);
    }

    #[test]
    fn more_nodes_help_until_alignment_breaks() {
        // Scaling up nodes reduces per-proc work but can break pencil
        // alignment; the model must show a non-monotone or saturating curve
        // rather than ideal scaling.
        let m = seaborg_model();
        let time_at = |nodes| {
            m.step_time(&Gs2Config {
                nodes,
                ..cfg("yxles", CollisionModel::None)
            })
        };
        let t8 = time_at(8);
        let t32 = time_at(32);
        assert!(t32 < t8, "some scaling must exist: {t8} -> {t32}");
        let ideal = t8 / 4.0;
        assert!(t32 > ideal, "scaling must be sub-ideal: {t32} vs {ideal}");
    }

    #[test]
    fn smaller_negrid_and_ntheta_run_faster() {
        let m = seaborg_model();
        let base = cfg("lxyes", CollisionModel::None);
        let small = Gs2Config {
            negrid: 8,
            ntheta: 20,
            ..base
        };
        assert!(m.step_time(&small) < m.step_time(&base));
    }

    #[test]
    fn locality_cache_is_consistent() {
        let m = seaborg_model();
        let c = cfg("lxyes", CollisionModel::None);
        let a = m.step_time(&c);
        let b = m.step_time(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn fidelity_loss_is_zero_at_reference_and_grows_coarser() {
        let m = seaborg_model();
        let reference = cfg("lxyes", CollisionModel::None);
        assert_eq!(m.fidelity_loss(&reference), 0.0);
        let finer = Gs2Config {
            negrid: 32,
            ntheta: 40,
            ..reference
        };
        assert_eq!(m.fidelity_loss(&finer), 0.0);
        let coarse = Gs2Config {
            negrid: 8,
            ntheta: 16,
            ..reference
        };
        let coarser = Gs2Config {
            negrid: 8,
            ntheta: 10,
            ..reference
        };
        assert!(m.fidelity_loss(&coarse) > 0.0);
        assert!(m.fidelity_loss(&coarser) > m.fidelity_loss(&coarse));
    }

    #[test]
    fn procs_respects_max_nodes() {
        let m = Gs2Model::on_seaborg(16, 8);
        let c = Gs2Config {
            nodes: 32,
            ..cfg("lxyes", CollisionModel::None)
        };
        assert_eq!(m.procs(&c), 8 * 16);
    }
}

//! Decomposition of the 5-D index space and exact redistribution volumes.
//!
//! The flattened index space (ordered by the [`Layout`]) is cut into `P`
//! contiguous chunks of `⌈N/P⌉` elements. A phase that needs a set of
//! dimensions `D` local (e.g. `{x, y}` for the field solve) requires every
//! *pencil* — the sub-array spanned by `D` at fixed other coordinates — to
//! reside on a single processor. [`locality`] walks the whole index space
//! and counts exactly how many elements already live on their pencil's home
//! processor; the remainder is the redistribution volume.

use crate::layout::{Dim, Layout};

/// Sizes of the five dimensions in canonical `x y l e s` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimSizes {
    /// x size.
    pub x: usize,
    /// y size.
    pub y: usize,
    /// l size.
    pub l: usize,
    /// e size (`negrid`).
    pub e: usize,
    /// s size (species).
    pub s: usize,
}

impl DimSizes {
    /// Size of one dimension.
    pub fn of(&self, d: Dim) -> usize {
        match d {
            Dim::X => self.x,
            Dim::Y => self.y,
            Dim::L => self.l,
            Dim::E => self.e,
            Dim::S => self.s,
        }
    }

    /// Total number of elements.
    pub fn total(&self) -> usize {
        self.x * self.y * self.l * self.e * self.s
    }
}

/// A concrete decomposition: layout + sizes + processor count.
#[derive(Debug, Clone, Copy)]
pub struct Decomposition {
    /// The data layout.
    pub layout: Layout,
    /// The dimension sizes.
    pub sizes: DimSizes,
    /// Processor count.
    pub procs: usize,
}

impl Decomposition {
    /// Create a decomposition. `procs ≥ 1`.
    pub fn new(layout: Layout, sizes: DimSizes, procs: usize) -> Self {
        assert!(procs >= 1);
        Decomposition {
            layout,
            sizes,
            procs,
        }
    }

    /// Elements per chunk (the last processor's chunk may be smaller; extra
    /// processors beyond `N` elements idle).
    pub fn chunk(&self) -> usize {
        self.sizes.total().div_ceil(self.procs)
    }

    /// Owner of a flattened element index.
    pub fn owner(&self, flat: usize) -> usize {
        flat / self.chunk()
    }

    /// Number of processors that actually own elements.
    pub fn active_procs(&self) -> usize {
        self.sizes.total().div_ceil(self.chunk()).min(self.procs)
    }

    /// Load balance: the largest per-processor load (the chunk) relative to
    /// the ideal `N / procs` share; `1.0` means perfectly even, and ragged
    /// or idle-processor decompositions score higher.
    pub fn balance_penalty(&self) -> f64 {
        let n = self.sizes.total() as f64;
        let chunk = self.chunk() as f64;
        chunk * self.procs as f64 / n
    }
}

/// Fraction of elements already resident on their pencil-home processor for
/// a phase needing dimensions `needed` local. `1.0` = no redistribution.
///
/// Exact: walks all `N` elements of the index space.
pub fn locality(d: &Decomposition, needed: &[Dim]) -> f64 {
    let order = d.layout.dims();
    let sizes: [usize; 5] = std::array::from_fn(|i| d.sizes.of(order[i]));
    let mask: [bool; 5] = std::array::from_fn(|i| needed.contains(&order[i]));
    let n = d.sizes.total();
    if n == 0 {
        return 1.0;
    }
    // Strides of each layout position in the flattened index.
    let mut strides = [0usize; 5];
    let mut acc = 1usize;
    for i in 0..5 {
        strides[i] = acc;
        acc *= sizes[i];
    }
    let mut local = 0usize;
    let mut coords = [0usize; 5];
    for flat in 0..n {
        // Home of this element's pencil: same coords with needed dims zeroed.
        let mut home_flat = flat;
        for i in 0..5 {
            if mask[i] {
                home_flat -= coords[i] * strides[i];
            }
        }
        if d.owner(flat) == d.owner(home_flat) {
            local += 1;
        }
        // Increment mixed-radix coordinates.
        for i in 0..5 {
            coords[i] += 1;
            if coords[i] < sizes[i] {
                break;
            }
            coords[i] = 0;
        }
    }
    local as f64 / n as f64
}

/// Elements that must move for the phase (the alltoall volume).
pub fn redistribution_volume(d: &Decomposition, needed: &[Dim]) -> usize {
    let n = d.sizes.total();
    ((1.0 - locality(d, needed)) * n as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> DimSizes {
        DimSizes {
            x: 8,
            y: 4,
            l: 8,
            e: 4,
            s: 2,
        }
    }

    fn layout(s: &str) -> Layout {
        s.parse().expect("test layout parses")
    }

    #[test]
    fn chunking_covers_everything() {
        let d = Decomposition::new(layout("lxyes"), sizes(), 16);
        assert_eq!(d.sizes.total(), 2048);
        assert_eq!(d.chunk(), 128);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(2047), 15);
        assert_eq!(d.active_procs(), 16);
    }

    #[test]
    fn leading_dims_with_dividing_chunk_are_fully_local() {
        // Layout yx...: x*y = 32 elements per pencil; chunk 128 is a
        // multiple, so every x-y pencil is wholly on one processor.
        let d = Decomposition::new(layout("yxles"), sizes(), 16);
        assert_eq!(locality(&d, &[Dim::X, Dim::Y]), 1.0);
        assert_eq!(redistribution_volume(&d, &[Dim::X, Dim::Y]), 0);
    }

    #[test]
    fn trailing_dims_are_mostly_remote() {
        // In lxyes the x-y pencil is strided across l; most of each pencil
        // lives away from its home processor.
        let d = Decomposition::new(layout("lxyes"), sizes(), 16);
        let loc = locality(&d, &[Dim::X, Dim::Y]);
        assert!(loc <= 0.6, "locality {loc}");
        assert!(loc >= 0.1, "locality {loc}");
    }

    #[test]
    fn default_layout_favours_collisions_over_field_solve() {
        // lxyes keeps l fastest: pitch-angle (Lorentz collision) pencils are
        // perfectly local, x-y planes are not; yxles is the reverse.
        let dl = Decomposition::new(layout("lxyes"), sizes(), 16);
        let dy = Decomposition::new(layout("yxles"), sizes(), 16);
        let coll = [Dim::L];
        let xy = [Dim::X, Dim::Y];
        assert_eq!(locality(&dl, &coll), 1.0);
        assert!(locality(&dl, &xy) < 1.0);
        assert_eq!(locality(&dy, &xy), 1.0);
        assert!(locality(&dy, &coll) < 1.0);
        assert!(locality(&dl, &coll) > locality(&dl, &xy));
        assert!(locality(&dy, &xy) > locality(&dy, &coll));
    }

    #[test]
    fn locality_degrades_when_procs_do_not_divide() {
        // 16 procs divide 2048 evenly; 12 procs cut pencils raggedly.
        let aligned = Decomposition::new(layout("yxles"), sizes(), 16);
        let ragged = Decomposition::new(layout("yxles"), sizes(), 12);
        let xy = [Dim::X, Dim::Y];
        assert!(locality(&ragged, &xy) < locality(&aligned, &xy));
    }

    #[test]
    fn needing_nothing_is_always_local() {
        let d = Decomposition::new(layout("lxyes"), sizes(), 16);
        assert_eq!(locality(&d, &[]), 1.0);
    }

    #[test]
    fn needing_everything_is_local_only_on_one_proc() {
        let all = Dim::ALL;
        let one = Decomposition::new(layout("lxyes"), sizes(), 1);
        assert_eq!(locality(&one, &all), 1.0);
        let many = Decomposition::new(layout("lxyes"), sizes(), 16);
        // Everything must gather to processor 0's chunk.
        assert!(locality(&many, &all) <= 1.0 / 16.0 + 1e-9);
    }

    #[test]
    fn balance_penalty_grows_with_ragged_chunks() {
        let even = Decomposition::new(layout("lxyes"), sizes(), 16);
        assert!((even.balance_penalty() - 1.0).abs() < 1e-12);
        let ragged = Decomposition::new(layout("lxyes"), sizes(), 17);
        assert!(ragged.balance_penalty() > 1.0);
    }
}

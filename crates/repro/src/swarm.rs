//! Nonblocking swarm clients: thousands of tuning workers from a handful
//! of threads.
//!
//! Simulating the paper's premise — one Harmony server steering an entire
//! cluster's worth of reporting workers — needs more concurrent clients
//! than a thread-per-client driver can afford. This module reuses the
//! server's own building blocks on the *client* side: each driver thread
//! owns a slice of nonblocking sockets, multiplexes them with a
//! [`PollPoller`], frames replies with an incremental [`FrameDecoder`],
//! and steps each connection's [`SwarmScript`] (a scripted request/reply
//! state machine) whenever its reply arrives. A thousand clients is a few
//! poll sets, not a thousand stacks.
//!
//! Two scripts cover the two uses: [`IndependentScript`] (every client
//! tunes its own session — the `tcp/swarm` bench scenario) and
//! [`SharedWorkerScript`] (every client attaches to one shared session —
//! the 1k-vs-16 bit-identity smoke campaign).

use ah_core::param::Param;
use ah_core::server::poll::{poll_fd, Interest, PollFd, PollPoller, ReadinessPoller};
use ah_core::server::protocol::{
    FrameDecoder, Reply, Request, StrategyKind, TrialReport, MAX_FRAME_LEN,
};
use ah_core::session::SessionOptions;
use ah_core::space::Configuration;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One scripted client: a deterministic request/reply state machine the
/// swarm driver steps whenever this connection's reply frame arrives.
pub trait SwarmScript: Send {
    /// The request sent as soon as the connection is up.
    fn first(&mut self) -> Request;
    /// Given the reply to the previous request: the next request, or
    /// `None` when this client is done (its socket is then closed; the
    /// server synthesises the `Leave`).
    fn next(&mut self, reply: Reply) -> Option<Request>;
    /// Per-evaluation latencies recorded by the script (µs), drained.
    fn take_latencies(&mut self) -> Vec<f64> {
        Vec::new()
    }
}

/// One swarm connection: socket, frame decoder, pending output, script.
struct SwarmConn<S: SwarmScript> {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    script: S,
    done: bool,
}

impl<S: SwarmScript> SwarmConn<S> {
    fn queue(&mut self, req: &Request) {
        let blob = serde_json::to_string(req).expect("requests serialize");
        self.out.extend_from_slice(blob.as_bytes());
        self.out.push(b'\n');
    }

    fn flush(&mut self) {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => panic!("swarm: server closed connection mid-write"),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => panic!("swarm: write failed: {e}"),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    /// Read whatever the socket has, step the script once per reply frame.
    fn pump(&mut self) {
        let mut buf = [0u8; 8 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => panic!("swarm: server closed connection unexpectedly"),
                Ok(n) => {
                    self.decoder.extend(&buf[..n]);
                    while let Some(frame) = self.decoder.next_frame().expect("swarm reply frame") {
                        let reply: Reply =
                            serde_json::from_str(&frame).expect("swarm reply parses");
                        match self.script.next(reply) {
                            Some(req) => self.queue(&req),
                            None => {
                                self.done = true;
                                return;
                            }
                        }
                    }
                    if n < buf.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => panic!("swarm: read failed: {e}"),
            }
        }
    }
}

/// A connected swarm, ready to drive. Connecting and driving are separate
/// so callers can assert on server-side connection counts while every
/// client is simultaneously established.
pub struct Swarm<S: SwarmScript> {
    chunks: Vec<Vec<SwarmConn<S>>>,
}

impl<S: SwarmScript> Swarm<S> {
    /// Open one connection per script (blocking connects with a short
    /// retry for accept-backlog overflow), split across `threads` driver
    /// threads. Nothing is sent yet.
    pub fn connect(addr: SocketAddr, scripts: Vec<S>, threads: usize) -> std::io::Result<Self> {
        let threads = threads.max(1).min(scripts.len().max(1));
        let mut chunks: Vec<Vec<SwarmConn<S>>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, script) in scripts.into_iter().enumerate() {
            let stream = connect_retry(addr)?;
            stream.set_nodelay(true).ok();
            stream.set_nonblocking(true)?;
            chunks[i % threads].push(SwarmConn {
                stream,
                decoder: FrameDecoder::new(MAX_FRAME_LEN),
                out: Vec::new(),
                out_pos: 0,
                script,
                done: false,
            });
        }
        Ok(Swarm { chunks })
    }

    /// Number of established connections.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// True when the swarm holds no connections.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run every script to completion and hand the scripts back (latency
    /// records and all). Each driver thread multiplexes its slice with one
    /// poller.
    pub fn drive(self) -> Vec<S> {
        let mut finished: Vec<S> = Vec::new();
        let results: Vec<Vec<S>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || drive_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("swarm driver thread"))
                .collect()
        });
        for r in results {
            finished.extend(r);
        }
        finished
    }
}

fn connect_retry(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("connect failed")))
}

/// One driver thread's loop over its slice of connections.
fn drive_chunk<S: SwarmScript>(mut chunk: Vec<SwarmConn<S>>) -> Vec<S> {
    // Kick every script off with its first request.
    for conn in chunk.iter_mut() {
        let req = conn.script.first();
        conn.queue(&req);
        conn.flush();
    }
    let mut poller = PollPoller::new();
    let mut sources: Vec<(PollFd, Interest)> = Vec::new();
    let mut ready = Vec::new();
    let mut done: Vec<S> = Vec::new();
    while !chunk.is_empty() {
        sources.clear();
        for conn in chunk.iter() {
            sources.push((
                poll_fd(&conn.stream),
                Interest {
                    read: true,
                    write: conn.out_pos < conn.out.len(),
                },
            ));
        }
        poller
            .wait(&sources, &mut ready, Duration::from_millis(500))
            .expect("swarm poll");
        for (i, conn) in chunk.iter_mut().enumerate() {
            if !ready[i].any() {
                continue;
            }
            if ready[i].readable {
                conn.pump();
            }
            if !conn.done {
                conn.flush();
            }
        }
        // Compact: closing the socket (drop) is the goodbye; the server
        // synthesises the Leave for clients that still hold membership.
        let mut still = Vec::with_capacity(chunk.len());
        for conn in chunk.into_iter() {
            if conn.done {
                done.push(conn.script);
            } else {
                still.push(conn);
            }
        }
        chunk = still;
    }
    done
}

/// Fixed parameter space shared by the swarm scripts; mirrors the other
/// bench scenarios so the numbers are comparable.
fn swarm_param() -> Param {
    Param::int("x", 0, 1_000_000, 1)
}

/// Deterministic objective: a pure function of the configuration, which is
/// what makes swarm trajectories comparable across member counts.
pub fn swarm_objective(config: &Configuration) -> f64 {
    (config.int("x").expect("x") % 1009) as f64
}

enum IndState {
    Registering,
    DeclaringParam,
    Sealing,
    Fetching { t0: Instant },
    Reporting { t0: Instant, count: usize },
}

/// Every client founds and tunes its own session: `Register` → declare →
/// `Seal` → `iters` evaluations through `FetchBatch`/`ReportBatch`.
pub struct IndependentScript {
    app: String,
    tenant: String,
    seed: u64,
    iters: usize,
    batch: usize,
    done_evals: usize,
    state: IndState,
    latencies: Vec<f64>,
}

impl IndependentScript {
    /// A client tuning `iters` evaluations under its own app label.
    pub fn new(app: String, seed: u64, iters: usize, batch: usize) -> Self {
        IndependentScript {
            app,
            tenant: String::new(),
            seed,
            iters,
            batch: batch.max(1),
            done_evals: 0,
            state: IndState::Registering,
            latencies: Vec::new(),
        }
    }

    /// Label this client with a tenant id for quota/fair-dispatch
    /// accounting on the server (empty means the default tenant).
    pub fn with_tenant(mut self, tenant: String) -> Self {
        self.tenant = tenant;
        self
    }

    fn fetch(&mut self) -> Request {
        self.state = IndState::Fetching { t0: Instant::now() };
        Request::FetchBatch {
            max: self.batch.min(self.iters - self.done_evals),
        }
    }
}

impl SwarmScript for IndependentScript {
    fn first(&mut self) -> Request {
        Request::Register {
            app: self.app.clone(),
            tenant: self.tenant.clone(),
        }
    }

    fn next(&mut self, reply: Reply) -> Option<Request> {
        match (&self.state, reply) {
            (IndState::Registering, Reply::Registered { .. }) => {
                self.state = IndState::DeclaringParam;
                Some(Request::AddParam {
                    param: swarm_param(),
                })
            }
            (IndState::DeclaringParam, Reply::Ok) => {
                self.state = IndState::Sealing;
                Some(Request::Seal {
                    options: SessionOptions {
                        // The driver stops at `iters`; the session itself
                        // must not finish first.
                        max_evaluations: usize::MAX / 4,
                        max_cached_replays: usize::MAX / 4,
                        seed: self.seed,
                        ..Default::default()
                    },
                    strategy: StrategyKind::Random,
                })
            }
            (IndState::Sealing, Reply::Ok) => Some(self.fetch()),
            (IndState::Fetching { t0 }, Reply::Configs { trials, finished }) => {
                assert!(!finished && !trials.is_empty(), "swarm session ended early");
                let t0 = *t0;
                let reports: Vec<TrialReport> = trials
                    .iter()
                    .map(|t| TrialReport {
                        iteration: t.iteration,
                        cost: swarm_objective(&t.config),
                        wall_time: 0.0,
                    })
                    .collect();
                let count = reports.len();
                self.state = IndState::Reporting { t0, count };
                Some(Request::ReportBatch { reports })
            }
            (&IndState::Reporting { t0, count }, Reply::Ok) => {
                let per_eval = t0.elapsed().as_secs_f64() * 1e6 / count as f64;
                self.latencies.extend(std::iter::repeat_n(per_eval, count));
                self.done_evals += count;
                if self.done_evals < self.iters {
                    Some(self.fetch())
                } else {
                    None
                }
            }
            (_, reply) => panic!("swarm[{}]: unexpected reply {reply:?}", self.app),
        }
    }

    fn take_latencies(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.latencies)
    }
}

/// A worker in one shared session: `Attach` → fetch/report until the
/// session finishes. With a deterministic objective the shared trajectory
/// is bit-identical however many of these run concurrently.
pub struct SharedWorkerScript {
    session: u64,
    tenant: String,
    batch: usize,
    attached: bool,
    /// Evaluations this worker measured (for sanity assertions).
    pub measured: usize,
}

impl SharedWorkerScript {
    /// A worker joining `session`, fetching `batch` trials per round-trip.
    pub fn new(session: u64, batch: usize) -> Self {
        SharedWorkerScript {
            session,
            tenant: String::new(),
            batch: batch.max(1),
            attached: false,
            measured: 0,
        }
    }

    /// Label this worker with a tenant id for fair-dispatch accounting.
    pub fn with_tenant(mut self, tenant: String) -> Self {
        self.tenant = tenant;
        self
    }
}

impl SwarmScript for SharedWorkerScript {
    fn first(&mut self) -> Request {
        Request::Attach {
            session: self.session,
            tenant: self.tenant.clone(),
        }
    }

    fn next(&mut self, reply: Reply) -> Option<Request> {
        match reply {
            Reply::Registered { .. } => {
                self.attached = true;
                Some(Request::FetchBatch { max: self.batch })
            }
            Reply::Configs { trials, finished } => {
                if finished {
                    return None;
                }
                if trials.is_empty() {
                    // Strategy is waiting on outstanding reports held by
                    // other members; ask again.
                    return Some(Request::FetchBatch { max: self.batch });
                }
                self.measured += trials.len();
                let reports = trials
                    .iter()
                    .map(|t| TrialReport {
                        iteration: t.iteration,
                        cost: swarm_objective(&t.config),
                        wall_time: 0.0,
                    })
                    .collect();
                Some(Request::ReportBatch { reports })
            }
            Reply::Ok => Some(Request::FetchBatch { max: self.batch }),
            other => panic!("swarm worker: unexpected reply {other:?}"),
        }
    }
}

//! `repro fault-wal`: a crash-safe tuning run driven through the
//! write-ahead log.
//!
//! This is the scenario the WAL exists for: a tuning campaign is started,
//! the process dies mid-experiment (a `--crash-after N` self-abort in CI,
//! or a real `SIGKILL`), and a second invocation with `--resume` replays
//! the log and finishes the search. Because every stochastic choice derives
//! from the session seed and costs are deterministic functions of the
//! configuration, the resumed run must write a results file *byte-identical*
//! to an uninterrupted run — which is exactly what the CI smoke job and the
//! `resume_sigkill` integration test assert.

use ah_core::prelude::*;
use ah_core::session::Trial;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Knobs of one `fault-wal` run (parsed from the CLI by `bin/repro`).
#[derive(Debug, Clone)]
pub struct FaultWalConfig {
    /// Path of the write-ahead log.
    pub wal: PathBuf,
    /// Path of the results JSON written on completion.
    pub out: PathBuf,
    /// Resume from an existing log instead of starting fresh.
    pub resume: bool,
    /// Abort the process (no unwinding, no cleanup — the closest safe
    /// stand-in for `kill -9`) after this many evaluations.
    pub crash_after: Option<usize>,
    /// Artificial delay per evaluation, so an external `SIGKILL` can land
    /// mid-experiment deterministically enough for tests.
    pub eval_delay: Duration,
    /// Shrink the workload for smoke tests.
    pub quick: bool,
}

fn header(quick: bool) -> WalHeader {
    WalHeader::new(
        "fault-wal",
        vec![Param::int("rows", 1, 64, 1), Param::int("cols", 1, 64, 1)],
        vec![],
        StrategyKind::NelderMead,
        SessionOptions {
            max_evaluations: if quick { 60 } else { 200 },
            seed: 4242,
            ..Default::default()
        },
    )
}

/// Deterministic cost (same bowl as the `fault` experiment).
fn objective(cfg: &Configuration) -> f64 {
    let r = cfg.int("rows").expect("rows") as f64;
    let c = cfg.int("cols").expect("cols") as f64;
    (r - 24.0).powi(2) * 0.7 + (c - 17.0).powi(2) + (r * c - 400.0).abs() * 0.01
}

/// Run (or resume) the logged campaign. Returns the process exit code.
pub fn run(cfg: &FaultWalConfig) -> i32 {
    let header = header(cfg.quick);
    let opened = if cfg.resume {
        WalSession::open_or_create(&cfg.wal, &header)
    } else {
        WalSession::create(&cfg.wal, &header).map(|w| (w, Vec::new()))
    };
    let (mut wal, outstanding) = match opened {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fault-wal: cannot open {}: {e}", cfg.wal.display());
            return 1;
        }
    };
    eprintln!(
        "fault-wal: {} {} ({} evaluations replayed, {} outstanding)",
        if cfg.resume { "resumed" } else { "started" },
        cfg.wal.display(),
        wal.replayed(),
        outstanding.len()
    );

    let mut measured = 0usize;
    let crash_check = |measured: usize| {
        if Some(measured) == cfg.crash_after {
            eprintln!("fault-wal: injected crash after {measured} evaluations");
            std::process::abort();
        }
    };
    let measure = |wal: &mut WalSession, t: Trial| -> bool {
        if !cfg.eval_delay.is_zero() {
            std::thread::sleep(cfg.eval_delay);
        }
        let cost = objective(&t.config);
        if let Err(e) = wal.report(t, cost) {
            eprintln!("fault-wal: report failed: {e}");
            return false;
        }
        true
    };

    // Trials the crashed run had issued but never reported come first.
    for t in outstanding {
        if !measure(&mut wal, t) {
            return 1;
        }
        measured += 1;
        crash_check(measured);
    }
    loop {
        let next = match wal.suggest() {
            Ok(next) => next,
            Err(e) => {
                eprintln!("fault-wal: suggest failed: {e}");
                return 1;
            }
        };
        let Some(t) = next else { break };
        if !measure(&mut wal, t) {
            return 1;
        }
        measured += 1;
        crash_check(measured);
    }

    let result = wal.result();
    let history = wal.session().history();
    let blob = serde_json::json!({
        "app": "fault-wal",
        "quick": cfg.quick,
        "evaluations": history.len(),
        "best_cost_bits": result.best_cost.to_bits(),
        "best_cost": result.best_cost,
        "best_config": result.best_config.to_string(),
        "trajectory": history.evaluations().iter().map(|e| serde_json::json!({
            "iteration": e.iteration,
            "cost_bits": e.cost.to_bits(),
            "cached": e.cached,
        })).collect::<Vec<_>>(),
    });
    let text = match serde_json::to_string_pretty(&blob) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fault-wal: cannot serialize results: {e}");
            return 1;
        }
    };
    let written = std::fs::File::create(&cfg.out).and_then(|mut f| {
        f.write_all(text.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
    });
    if let Err(e) = written {
        eprintln!("fault-wal: cannot write {}: {e}", cfg.out.display());
        return 1;
    }
    eprintln!(
        "fault-wal: finished with {} evaluations ({} measured this run), best cost {:.4}; wrote {}",
        history.len(),
        measured,
        result.best_cost,
        cfg.out.display()
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ah-fault-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(tag)
    }

    #[test]
    fn clean_and_interrupted_runs_write_identical_results() {
        let clean_out = tmp("clean.json");
        let code = run(&FaultWalConfig {
            wal: tmp("clean.wal"),
            out: clean_out.clone(),
            resume: false,
            crash_after: None,
            eval_delay: Duration::ZERO,
            quick: true,
        });
        assert_eq!(code, 0);

        // Simulate the interrupted run in-process: drive the same campaign
        // partway, drop it (the on-disk state of a crash), then resume.
        let wal_path = tmp("interrupted.wal");
        let h = header(true);
        let mut wal = WalSession::create(&wal_path, &h).unwrap();
        for _ in 0..13 {
            let t = wal.suggest().unwrap().unwrap();
            let cost = objective(&t.config);
            wal.report(t, cost).unwrap();
        }
        drop(wal);
        let resumed_out = tmp("resumed.json");
        let code = run(&FaultWalConfig {
            wal: wal_path,
            out: resumed_out.clone(),
            resume: true,
            crash_after: None,
            eval_delay: Duration::ZERO,
            quick: true,
        });
        assert_eq!(code, 0);
        let a = std::fs::read(&clean_out).unwrap();
        let b = std::fs::read(&resumed_out).unwrap();
        assert_eq!(a, b, "resumed results must be byte-identical");
    }
}

//! `repro space`: inspect and benchmark the search-space compiler.
//!
//! ```text
//! repro space stats       --space NAME [--json PATH]
//! repro space fingerprint --space NAME [--json PATH]
//! repro space bench       --space NAME [--points N] [--chunk N]
//!                         [--max-seconds S] [--json PATH]
//! repro space list
//! ```
//!
//! The named spaces are synthetic stand-ins for the paper's production
//! search spaces (GS2's layout × decomposition space is quoted at O(10^100)
//! points): `synth-1e9` and `chain-1e9` both have a 10^9-point raw product
//! crossed with chain/sum constraints, far beyond anything the strategies
//! could enumerate eagerly. `bench` is the CLI face of the space-compiler
//! claim — it compiles the space, then streams the first `--points` valid
//! points through the chunked cursor API with O(chunk) memory, and fails
//! (exit 1) if the whole thing takes longer than `--max-seconds`. CI runs
//! it on `synth-1e9` and archives the `--json` stats.

use ah_core::constraint::{MonotoneChain, SumBound};
use ah_core::space::SearchSpace;
use ah_core::space_compile::{CompiledSpace, SpaceCursor};
use ah_core::store::space_fingerprint;
use ah_core::telemetry::{Counter, Telemetry};
use std::time::Instant;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    flag_value(args, flag)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a non-negative integer, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

/// Names of the built-in synthetic spaces, with one-line descriptions.
pub fn registry() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "synth-1e9",
            "9 dims × 10 values (10^9 raw); chain over p0..p3, sum bound over p4..p6",
        ),
        (
            "chain-1e9",
            "5 dims × 64 values (~1.07×10^9 raw); one monotone chain over all dims",
        ),
        (
            "grid-1e6",
            "3 dims × 100 values (10^6 raw); unconstrained control case",
        ),
    ]
}

/// Build a named synthetic space; `None` for unknown names.
pub fn build(name: &str) -> Option<SearchSpace> {
    let space = match name {
        "synth-1e9" => {
            let mut b = SearchSpace::builder();
            for d in 0..9 {
                b = b.int(format!("p{d}"), 0, 9, 1);
            }
            b.constraint(MonotoneChain::new(["p0", "p1", "p2", "p3"]))
                .constraint(SumBound::new(["p4", "p5", "p6"], 6.0, 18.0))
                .build()
        }
        "chain-1e9" => {
            let mut b = SearchSpace::builder();
            for d in 0..5 {
                b = b.int(format!("c{d}"), 0, 63, 1);
            }
            b.constraint(MonotoneChain::new(["c0", "c1", "c2", "c3", "c4"]))
                .build()
        }
        "grid-1e6" => SearchSpace::builder()
            .int("x", 0, 99, 1)
            .int("y", 0, 99, 1)
            .int("z", 0, 99, 1)
            .build(),
        _ => return None,
    };
    Some(space.expect("synthetic spaces are well-formed"))
}

fn resolve(args: &[String]) -> (String, CompiledSpace, Telemetry) {
    let name = flag_value(args, "--space").unwrap_or_else(|| {
        eprintln!("repro space requires --space NAME; try `repro space list`");
        std::process::exit(2);
    });
    let Some(space) = build(&name) else {
        eprintln!("unknown space `{name}`; try `repro space list`");
        std::process::exit(2);
    };
    let telemetry = Telemetry::enabled();
    let compiled = CompiledSpace::compile_with(&space, telemetry.clone()).unwrap_or_else(|e| {
        eprintln!("cannot compile `{name}`: {e}");
        std::process::exit(2);
    });
    (name, compiled, telemetry)
}

fn emit(args: &[String], blob: &serde_json::Value, human: &str) -> i32 {
    if let Some(path) = flag_value(args, "--json") {
        let pretty = serde_json::to_string_pretty(blob).expect("stats serialize");
        std::fs::write(&path, format!("{pretty}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
    println!("{human}");
    0
}

/// `repro space list`: the built-in synthetic spaces.
fn list() -> i32 {
    for (name, what) in registry() {
        println!("{name:12} {what}");
    }
    0
}

/// `repro space stats`: compile and report what propagation found.
fn stats(args: &[String]) -> i32 {
    let (name, cs, _) = resolve(args);
    let s = cs.stats();
    let count = cs.count_valid_bounded(u64::MAX, 10_000_000);
    let blob = serde_json::json!({
        "space": name,
        "dims": s.dims,
        "constraints": s.constraints,
        "compiled_constraints": s.compiled_constraints,
        "points_raw": s.points_raw,
        "log10_points_raw": s.log10_points_raw,
        "points_box": s.points_box,
        "points_pruned_by_propagation": s.points_pruned_by_propagation,
        "pinned_dims": s.pinned_dims,
        "propagation_rounds": s.propagation_rounds,
        "provably_empty": s.provably_empty,
        "compile_micros": s.compile_micros,
        "valid_points": count.lower_bound(),
        "valid_points_exact": count.is_exact(),
    });
    let human = format!(
        "space {name}\n  dims               {}\n  constraints        {} ({} compiled)\n  \
         raw points         {} (10^{:.1})\n  after propagation  {}\n  pruned by bounds   {}\n  \
         pinned dims        {}\n  provably empty     {}\n  valid points       {}{}\n  \
         compile time       {} µs",
        s.dims,
        s.constraints,
        s.compiled_constraints,
        s.points_raw,
        s.log10_points_raw,
        s.points_box,
        s.points_pruned_by_propagation,
        s.pinned_dims,
        s.provably_empty,
        if count.is_exact() { "" } else { ">= " },
        count.lower_bound(),
        s.compile_micros,
    );
    emit(args, &blob, &human)
}

/// `repro space fingerprint`: the store-keying fingerprint of the space.
fn fingerprint(args: &[String]) -> i32 {
    let (name, cs, _) = resolve(args);
    let fp = space_fingerprint(cs.space());
    let blob = serde_json::json!({ "space": name, "fingerprint": format!("{fp:016x}") });
    emit(
        args,
        &blob,
        &format!("space {name}\n  fingerprint {fp:016x}"),
    )
}

/// `repro space bench`: compile, then stream the first `--points` valid
/// points through the chunked cursor API; exit 1 past `--max-seconds`.
fn bench(args: &[String], quick: bool) -> i32 {
    let (name, cs, telemetry) = resolve(args);
    let default_points = if quick { 100_000 } else { 1_000_000 };
    let target = parse_u64(args, "--points", default_points);
    let chunk = parse_u64(args, "--chunk", 65_536).max(1) as usize;
    let max_seconds = parse_u64(args, "--max-seconds", 0);

    let started = Instant::now();
    let mut streamed: u64 = 0;
    let mut chunks: u64 = 0;
    let mut cursor = Some(SpaceCursor::default());
    let mut verified = false;
    while streamed < target {
        let Some(cur) = cursor else { break };
        let want = chunk.min((target - streamed) as usize);
        let (points, next) = cs.next_chunk(&cur, want).expect("fresh/returned cursors");
        if !verified {
            // Sanity on the first chunk only: everything streamed must be
            // valid by the uncompiled predicate.
            for cfg in &points {
                assert!(cs.space().is_valid(cfg), "compiled stream leaked {cfg}");
            }
            verified = true;
        }
        streamed += points.len() as u64;
        chunks += 1;
        cursor = next;
    }
    let stream_micros = started.elapsed().as_micros() as u64;
    let exhausted = cursor.is_none();

    let s = cs.stats();
    let points_per_sec = if stream_micros == 0 {
        streamed as f64
    } else {
        streamed as f64 * 1e6 / stream_micros as f64
    };
    let wall_seconds = (s.compile_micros + stream_micros) as f64 / 1e6;
    let within_bound = max_seconds == 0 || wall_seconds <= max_seconds as f64;
    let blob = serde_json::json!({
        "space": name,
        "dims": s.dims,
        "constraints": s.constraints,
        "points_raw": s.points_raw,
        "log10_points_raw": s.log10_points_raw,
        "points_box": s.points_box,
        "compile_micros": s.compile_micros,
        "points_streamed": streamed,
        "stream_exhausted_space": exhausted,
        "stream_micros": stream_micros,
        "points_per_sec": points_per_sec,
        "chunks": chunks,
        "chunk_size": chunk,
        "points_pruned": telemetry.counter(Counter::SpacePointsPruned),
        "chunks_enumerated": telemetry.counter(Counter::SpaceChunksEnumerated),
        "wall_seconds": wall_seconds,
        "max_seconds": max_seconds,
        "within_bound": within_bound,
    });
    let human = format!(
        "space {name}: raw 10^{:.1} points, compiled in {} µs\n  streamed {streamed} valid \
         points in {:.2} s ({:.0} points/s, {chunks} chunks of {chunk})\n  pruned {} lattice \
         points (propagation + subtree skips)",
        s.log10_points_raw,
        s.compile_micros,
        stream_micros as f64 / 1e6,
        points_per_sec,
        telemetry.counter(Counter::SpacePointsPruned),
    );
    let code = emit(args, &blob, &human);
    if code != 0 {
        return code;
    }
    if !within_bound {
        eprintln!(
            "FAIL: compile+stream took {wall_seconds:.2} s, bound was {max_seconds} s \
             (the space compiler is supposed to make 10^9-point spaces interactive)"
        );
        return 1;
    }
    0
}

/// Dispatch `repro space <subcommand>`; returns the process exit code.
pub fn run(args: &[String], quick: bool) -> i32 {
    let sub = args
        .iter()
        .skip_while(|a| a.as_str() != "space")
        .nth(1)
        .cloned()
        .unwrap_or_default();
    match sub.as_str() {
        "list" => list(),
        "stats" => stats(args),
        "fingerprint" => fingerprint(args),
        "bench" => bench(args, quick),
        other => {
            eprintln!(
                "unknown space subcommand `{other}`; expected list | stats | fingerprint | bench"
            );
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_core::space_compile::FeasibleCount;

    #[test]
    fn registry_spaces_all_compile() {
        for (name, _) in registry() {
            let space = build(name).unwrap();
            let cs = CompiledSpace::compile(&space).unwrap();
            assert!(!cs.stats().provably_empty, "{name}");
        }
        assert!(build("nope").is_none());
    }

    #[test]
    fn synth_1e9_is_a_billion_points_raw() {
        let cs = CompiledSpace::compile(&build("synth-1e9").unwrap()).unwrap();
        assert_eq!(cs.stats().points_raw, 1_000_000_000);
        let cs = CompiledSpace::compile(&build("chain-1e9").unwrap()).unwrap();
        assert_eq!(cs.stats().points_raw, 1_073_741_824);
        // C(64+4, 5): non-decreasing 5-tuples over 64 values.
        assert_eq!(cs.count_valid(), FeasibleCount::Exact(10_424_128));
    }

    #[test]
    fn bench_streams_and_writes_json() {
        let out = std::env::temp_dir().join(format!("ah-space-bench-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&out);
        let args: Vec<String> = [
            "space",
            "bench",
            "--space",
            "synth-1e9",
            "--points",
            "20000",
            "--chunk",
            "4096",
            "--max-seconds",
            "60",
            "--json",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run(&args, true), 0);
        let blob: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(blob["points_streamed"].as_u64(), Some(20_000));
        assert_eq!(blob["space"].as_str(), Some("synth-1e9"));
        assert!(blob["points_pruned"].as_u64().unwrap() > 0);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn stats_and_fingerprint_subcommands_work() {
        let args: Vec<String> = ["space", "stats", "--space", "chain-1e9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args, true), 0);
        let args: Vec<String> = ["space", "fingerprint", "--space", "grid-1e6"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args, true), 0);
        let args: Vec<String> = ["space", "list"].iter().map(|s| s.to_string()).collect();
        assert_eq!(run(&args, true), 0);
        let args: Vec<String> = ["space", "bogus"].iter().map(|s| s.to_string()).collect();
        assert_eq!(run(&args, true), 2);
    }
}

//! `repro meta` — the "tuning the tuner" demonstration.
//!
//! Runs the [`ah_core::meta`] loop on a paper workload: an outer Harmony
//! session tunes a strategy's hyper-parameters (annealing schedule,
//! simplex scale), scoring each hyper-configuration by evaluations-to-
//! target over seeded inner campaigns. With `--store`, campaign scores
//! are memoized: a second invocation against the same store replays every
//! campaign and spends zero fresh inner evaluations (`--expect-memoized`
//! turns that property into an exit-code check for CI).

use ah_clustersim::machines::sp3_seaborg;
use ah_core::meta::{
    MetaAnnealing, MetaNelderMead, MetaOptions, MetaOutcome, MetaTunable, MetaTuner,
};
use ah_core::offline::{OfflineTuner, ShortRunApp};
use ah_core::session::SessionOptions;
use ah_core::store::SharedStore;
use ah_core::strategy::{NelderMead, NelderMeadOptions, StartPoint};
use ah_pop::{OceanGrid, PopBlockApp};
use std::io::Write;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn make_app() -> PopBlockApp {
    PopBlockApp::new(OceanGrid::synthetic(360, 240), sp3_seaborg(12, 4), 3)
}

/// Derive the inner campaigns' target cost from the POP workload: the
/// default block's time minus 80% of the improvement a pilot simplex
/// campaign demonstrates is achievable.
fn target_cost(quick: bool) -> f64 {
    let mut app = make_app();
    let space = app.space();
    let default_cfg = app.default_config();
    let default_coords = space.embed(&default_cfg).expect("default embeds");
    let default_cost = app.run_short(&default_cfg).exec_time;
    let pilot = OfflineTuner::new(SessionOptions {
        max_evaluations: if quick { 120 } else { 300 },
        seed: 9090,
        ..SessionOptions::default()
    })
    .tune(
        &mut make_app(),
        Box::new(NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(default_coords),
            ..NelderMeadOptions::default()
        })),
    );
    default_cost - 0.8 * (default_cost - pilot.result.best_cost).max(0.0)
}

fn report(o: &MetaOutcome) {
    println!(
        "meta[{}/{}]: default score {:.1}, tuned score {:.1} ({}), \
         campaigns {} fresh / {} memoized, {} fresh inner evaluations",
        o.tunable,
        o.problem,
        o.default_score,
        o.best_score,
        if o.improved() {
            "improved"
        } else {
            "no improvement"
        },
        o.fresh_campaigns,
        o.memoized_campaigns,
        o.inner_evaluations,
    );
    println!("  best hyper-configuration: {:?}", o.best_hyper.cache_key());
}

/// Run the meta-tuning demo; returns a process exit code.
pub fn run(args: &[String], quick: bool) -> i32 {
    let store = match flag_value(args, "--store") {
        Some(path) => match SharedStore::open(&path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot open store {path}: {e}");
                return 2;
            }
        },
        None => None,
    };
    let expect_memoized = args.iter().any(|a| a == "--expect-memoized");

    let opts = MetaOptions {
        outer_evaluations: if quick { 10 } else { 20 },
        inner_budget: if quick { 60 } else { 120 },
        target_cost: target_cost(quick),
        campaigns_per_score: if quick { 2 } else { 3 },
        seed: 7,
    };

    let tunables: [&dyn MetaTunable; 2] = [&MetaAnnealing, &MetaNelderMead];
    let mut outcomes = Vec::new();
    for tunable in tunables {
        let mut tuner = MetaTuner::new(opts.clone());
        if let Some(s) = &store {
            tuner = tuner.with_store(s.clone());
        }
        let outcome = tuner.tune(&mut make_app(), "pop-blocks", tunable);
        report(&outcome);
        outcomes.push(outcome);
    }

    if let Some(path) = flag_value(args, "--json") {
        let blob = serde_json::to_string_pretty(&serde_json::json!({
            "bench": "meta",
            "mode": if quick { "quick" } else { "full" },
            "target_cost": opts.target_cost,
            "outcomes": outcomes,
        }))
        .expect("outcomes serialize");
        match std::fs::File::create(&path).and_then(|mut f| {
            f.write_all(blob.as_bytes())?;
            f.write_all(b"\n")
        }) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
        }
    }

    if expect_memoized {
        let fresh: usize = outcomes.iter().map(|o| o.fresh_campaigns).sum();
        if fresh > 0 {
            eprintln!(
                "meta FAILED: expected a fully memoized run, but {fresh} \
                 hyper-configurations needed fresh campaigns"
            );
            return 1;
        }
        println!("meta: fully memoized run (zero fresh inner evaluations)");
    }
    if !outcomes.iter().any(|o| o.improved()) {
        eprintln!("meta FAILED: no tunable improved on its default hyper-parameters");
        return 1;
    }
    0
}

//! # ah-repro — the experiment harness
//!
//! One [`Experiment`] per table and figure of the HPDC'06 Active Harmony
//! paper. Each experiment builds its workload from the app crates, runs the
//! tuning campaign the paper describes, renders the paper-shaped table or
//! chart, and compares its measured shape against the paper's reported
//! numbers (directions, rough factors, crossovers — not absolute seconds;
//! the substrate is a simulator, not the authors' testbed).
//!
//! Run everything with `cargo run --release -p ah-repro --bin repro -- all`.

#![warn(missing_docs)]

pub mod bench_server;
pub mod chart;
pub mod experiment;
pub mod experiments;
pub mod fault_wal;
pub mod leaderboard;
pub mod meta_cli;
pub mod observe_cli;
pub mod serve_cli;
pub mod space_cli;
pub mod store_cli;
pub mod swarm;
pub mod table;
pub mod telemetry_cli;

pub use experiment::{all_experiments, ExpReport, Experiment, Finding, RunCtx};

//! `repro store`: operate on a persistent performance database.
//!
//! ```text
//! repro store stats   --store PATH [--json]
//! repro store inspect --store PATH [--app LABEL] [--limit N]
//! repro store compact --store PATH
//! repro store gc      --store PATH --app LABEL
//! repro store demo    --store PATH [--out PATH] [--cache-out PATH]
//!                     [--crash-after N] [--eval-delay-ms N]
//! ```
//!
//! `demo` runs a deterministic store-backed tuning campaign against a
//! 2-shard server and is the CLI face of the persistence claim: run it
//! twice against one `--store` and the second invocation is served from
//! the database instead of being re-measured; `--crash-after`/SIGKILL in
//! the middle, then a clean re-run, must still produce the byte-identical
//! `--out` result (CI does exactly this).
//!
//! `--out` holds only run-deterministic data (trajectory and best point as
//! cost bits and cache keys); the volatile cache accounting (hits, misses,
//! served fraction, store stats) goes to `--cache-out`.

use ah_core::param::Param;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::{HarmonyServer, ServerConfig};
use ah_core::session::SessionOptions;
use ah_core::space::Configuration;
use ah_core::store::{PerfStore, SharedStore};
use ah_core::telemetry::{Counter, Telemetry};
use std::path::PathBuf;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> usize {
    flag_value(args, flag)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a non-negative integer, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn store_path(args: &[String]) -> PathBuf {
    flag_value(args, "--store")
        .unwrap_or_else(|| {
            eprintln!("repro store requires --store PATH");
            std::process::exit(2);
        })
        .into()
}

fn open(args: &[String]) -> PerfStore {
    let path = store_path(args);
    PerfStore::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open store {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn write_blob(path: &str, blob: &str) {
    std::fs::write(path, blob).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {path}");
}

/// `repro store stats`: size and composition of the database.
fn stats(args: &[String]) -> i32 {
    let store = open(args);
    let stats = store.stats();
    if args.iter().any(|a| a == "--json") {
        let blob = serde_json::to_string_pretty(&stats).expect("stats serialize");
        println!("{blob}");
        return 0;
    }
    println!("store {}", stats.path);
    println!("  file bytes       {}", stats.file_bytes);
    println!("  log records      {}", stats.records);
    println!("  live configs     {}", stats.live_configs);
    println!("  torn tail fixed  {}", stats.torn_tail_truncated);
    for app in &stats.apps {
        println!("  app {:24} {:6} configs", app.app, app.configs);
    }
    0
}

/// `repro store inspect`: dump live records (first-occurrence order).
fn inspect(args: &[String]) -> i32 {
    let store = open(args);
    let app = flag_value(args, "--app");
    let limit = parse_usize(args, "--limit", 20);
    let records: Vec<_> = store
        .live_records()
        .into_iter()
        .filter(|r| app.as_deref().is_none_or(|a| r.app == a))
        .take(limit.max(1))
        .collect();
    for r in &records {
        println!(
            "{:24} fp={:016x} key={:?} cost={} wall={} session={} iter={}{}{}",
            r.app,
            r.fingerprint,
            r.config.cache_key(),
            r.cost(),
            r.wall_time(),
            r.session,
            r.iteration,
            if r.requeued { " requeued" } else { "" },
            if r.replayed { " replayed" } else { "" },
        );
    }
    eprintln!("{} live record(s) shown (limit {limit})", records.len());
    0
}

/// `repro store compact` / `repro store gc --app LABEL`.
fn compact(args: &[String], keep_app: Option<&str>) -> i32 {
    let mut store = open(args);
    if keep_app.is_none() && args.iter().any(|a| a == "gc") && flag_value(args, "--app").is_none() {
        eprintln!("repro store gc requires --app LABEL (compact keeps every app)");
        return 2;
    }
    let outcome = store.gc(keep_app).unwrap_or_else(|e| {
        eprintln!("compaction failed: {e}");
        std::process::exit(2);
    });
    println!(
        "compacted {}: {} -> {} records, {} -> {} bytes",
        store.path().display(),
        outcome.records_before,
        outcome.records_after,
        outcome.bytes_before,
        outcome.bytes_after,
    );
    0
}

/// Deterministic synthetic objective for the demo campaign.
fn demo_cost(cfg: &Configuration) -> f64 {
    let tile = cfg.int("tile").unwrap() as f64;
    let unroll = cfg.int("unroll").unwrap() as f64;
    25.0 + 0.2 * (tile - 52.0).powi(2) + 0.9 * (unroll - 7.0).powi(2) + 0.02 * tile * unroll
}

/// Settings for one demo campaign (exposed for the durability tests).
pub struct DemoConfig {
    /// Database location.
    pub store: PathBuf,
    /// Deterministic result JSON (`--out`).
    pub out: Option<String>,
    /// Volatile cache-accounting JSON (`--cache-out`).
    pub cache_out: Option<String>,
    /// `abort()` after this many *measured* evaluations.
    pub crash_after: Option<usize>,
    /// Sleep per measured evaluation (gives SIGKILL tests a window).
    pub eval_delay: std::time::Duration,
    /// Shrink the campaign.
    pub quick: bool,
}

/// `repro store demo`: one store-backed campaign; see the module docs.
pub fn demo(cfg: &DemoConfig) -> i32 {
    let evals = if cfg.quick { 60 } else { 200 };
    let telemetry = Telemetry::enabled();
    let store = SharedStore::open_with(&cfg.store, telemetry.clone()).unwrap_or_else(|e| {
        eprintln!("cannot open store {}: {e}", cfg.store.display());
        std::process::exit(2);
    });
    let server = HarmonyServer::start_with_config(ServerConfig {
        shards: 2,
        store: Some(store.clone()),
        ..Default::default()
    });
    let client = server.connect("store-demo").expect("connect");
    client
        .add_param(Param::int("tile", 1, 128, 1))
        .expect("param");
    client
        .add_param(Param::int("unroll", 1, 16, 1))
        .expect("param");
    client
        .seal(
            SessionOptions {
                max_evaluations: evals,
                seed: 4242,
                ..Default::default()
            },
            StrategyKind::NelderMead,
        )
        .expect("seal");

    let mut measured = 0usize;
    loop {
        let (trials, finished) = client.fetch_batch(4).expect("fetch_batch");
        if finished {
            break;
        }
        let mut reports = Vec::with_capacity(trials.len());
        for t in &trials {
            measured += 1;
            if !cfg.eval_delay.is_zero() {
                std::thread::sleep(cfg.eval_delay);
            }
            reports.push(TrialReport {
                iteration: t.iteration,
                cost: demo_cost(&t.config),
                wall_time: 1.0,
            });
        }
        client.report_batch(reports).expect("report_batch");
        if let Some(n) = cfg.crash_after {
            if measured >= n {
                eprintln!("store demo: simulated crash after {measured} evaluations");
                // No flush, no shutdown: whatever the store appended so far
                // is what recovery gets to work with.
                std::process::abort();
            }
        }
    }

    let (history, _) = client.history().expect("history");
    let (best_config, best_cost) = client.best().expect("best").expect("nonempty");
    server.shutdown();
    store.flush().expect("flush store");

    let rows = history.evaluations();
    let evaluations = rows.len();
    let served = rows.iter().filter(|e| e.cached).count();
    let hits = telemetry.counter(Counter::StoreHits);
    let misses = telemetry.counter(Counter::StoreMisses);
    eprintln!(
        "store demo: {evaluations} evaluations, {measured} measured, {served} served \
         from {} ({hits} hits / {misses} misses)",
        cfg.store.display()
    );

    if let Some(path) = &cfg.out {
        // Run-deterministic only: bit patterns and cache keys, never
        // serialized Configuration maps (HashMap order is per-process).
        let result = serde_json::json!({
            "evaluations": evaluations,
            "best_cost_bits": best_cost.to_bits(),
            "best_cost": best_cost,
            "best_config_key": best_config.cache_key(),
            "trajectory": rows.iter().map(|e| {
                serde_json::json!({"iteration": e.iteration, "cost_bits": e.cost.to_bits()})
            }).collect::<Vec<_>>(),
        });
        write_blob(
            path,
            &serde_json::to_string_pretty(&result).expect("result serializes"),
        );
    }
    if let Some(path) = &cfg.cache_out {
        let accounting = serde_json::json!({
            "store_hits": hits,
            "store_misses": misses,
            "measured": measured,
            "served": served,
            "served_fraction": served as f64 / evaluations.max(1) as f64,
            "stats": store.stats(),
        });
        write_blob(
            path,
            &serde_json::to_string_pretty(&accounting).expect("accounting serializes"),
        );
    }
    0
}

/// Dispatch `repro store <subcommand>`; returns the process exit code.
pub fn run(args: &[String], quick: bool) -> i32 {
    let sub = args
        .iter()
        .skip_while(|a| a.as_str() != "store")
        .nth(1)
        .cloned()
        .unwrap_or_default();
    match sub.as_str() {
        "stats" => stats(args),
        "inspect" => inspect(args),
        "compact" => compact(args, None),
        "gc" => {
            let app = flag_value(args, "--app").unwrap_or_else(|| {
                eprintln!("repro store gc requires --app LABEL");
                std::process::exit(2);
            });
            compact(args, Some(&app))
        }
        "demo" => demo(&DemoConfig {
            store: store_path(args),
            out: flag_value(args, "--out"),
            cache_out: flag_value(args, "--cache-out"),
            crash_after: flag_value(args, "--crash-after").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--crash-after expects a positive integer, got `{v}`");
                    std::process::exit(2);
                })
            }),
            eval_delay: std::time::Duration::from_millis(
                parse_usize(args, "--eval-delay-ms", 0) as u64
            ),
            quick,
        }),
        other => {
            eprintln!(
                "unknown store subcommand `{other}`; \
                 expected stats | inspect | compact | gc | demo"
            );
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ah-store-cli-{}-{name}", std::process::id()))
    }

    #[test]
    fn demo_twice_against_one_store_serves_the_second_run() {
        let store = tmp("demo.store");
        let _ = std::fs::remove_file(&store);
        let cold_out = tmp("cold.json");
        let warm_out = tmp("warm.json");
        let warm_cache = tmp("warm-cache.json");
        let base = DemoConfig {
            store: store.clone(),
            out: Some(cold_out.display().to_string()),
            cache_out: None,
            crash_after: None,
            eval_delay: std::time::Duration::ZERO,
            quick: true,
        };
        assert_eq!(demo(&base), 0);
        let warm = DemoConfig {
            out: Some(warm_out.display().to_string()),
            cache_out: Some(warm_cache.display().to_string()),
            store: store.clone(),
            ..base
        };
        assert_eq!(demo(&warm), 0);

        let cold_blob = std::fs::read_to_string(&cold_out).unwrap();
        let warm_blob = std::fs::read_to_string(&warm_out).unwrap();
        assert_eq!(cold_blob, warm_blob, "warm result must be byte-identical");
        let cache: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&warm_cache).unwrap()).unwrap();
        assert!(cache["store_hits"].as_u64().unwrap() > 0);
        assert!(
            cache["served_fraction"].as_f64().unwrap() >= 0.9,
            "warm run should be served from the store: {cache:?}"
        );
        for p in [&store, &cold_out, &warm_out, &warm_cache] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn stats_and_compact_subcommands_round_trip() {
        let store = tmp("ops.store");
        let _ = std::fs::remove_file(&store);
        let cfg = DemoConfig {
            store: store.clone(),
            out: None,
            cache_out: None,
            crash_after: None,
            eval_delay: std::time::Duration::ZERO,
            quick: true,
        };
        assert_eq!(demo(&cfg), 0);
        let args: Vec<String> = ["store", "stats", "--store", &store.display().to_string()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args, true), 0);
        let args: Vec<String> = ["store", "compact", "--store", &store.display().to_string()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args, true), 0);
        let reopened = PerfStore::open(&store).unwrap();
        assert!(!reopened.is_empty());
        assert_eq!(reopened.len(), reopened.live_configs());
        let _ = std::fs::remove_file(&store);
    }
}

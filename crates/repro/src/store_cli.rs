//! `repro store`: operate on a persistent performance database.
//!
//! ```text
//! repro store stats   --store PATH [--json]
//! repro store inspect --store PATH [--app LABEL] [--limit N]
//! repro store compact --store PATH
//! repro store gc      --store PATH --app LABEL
//! repro store merge   --store DST --from SRC [--dry-run] [--crash-after N]
//! repro store demo    --store PATH [--out PATH] [--cache-out PATH]
//!                     [--crash-after N] [--eval-delay-ms N]
//! repro store demo    --connect ADDR [--out PATH]
//! ```
//!
//! `demo` runs a deterministic store-backed tuning campaign against a
//! 2-shard server and is the CLI face of the persistence claim: run it
//! twice against one `--store` and the second invocation is served from
//! the database instead of being re-measured; `--crash-after`/SIGKILL in
//! the middle, then a clean re-run, must still produce the byte-identical
//! `--out` result (CI does exactly this). With `--connect ADDR` the same
//! campaign is driven over TCP against a live `repro serve` process
//! instead of an in-process server — the federation smoke runs it against
//! two servers and diffs the `--out` files.
//!
//! `merge` folds a peer database into `--store` with the federation
//! first-write-wins algebra; `--dry-run` prints what would happen without
//! writing, `--crash-after N` aborts mid-merge after N records for the
//! crash-durability tests.
//!
//! `--out` holds only run-deterministic data (trajectory and best point as
//! cost bits and cache keys); the volatile cache accounting (hits, misses,
//! served fraction, store stats) goes to `--cache-out`.

use ah_core::param::Param;
use ah_core::server::protocol::{FetchedTrial, StrategyKind, TrialReport};
use ah_core::server::tcp::{TcpClientOptions, TcpHarmonyClient};
use ah_core::server::{HarmonyClient, HarmonyServer, ServerConfig};
use ah_core::session::SessionOptions;
use ah_core::space::Configuration;
use ah_core::store::{MergeStats, PerfStore, SharedStore, StoreRecord};
use ah_core::telemetry::{Counter, Telemetry};
use std::path::PathBuf;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> usize {
    flag_value(args, flag)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a non-negative integer, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn store_path(args: &[String]) -> PathBuf {
    flag_value(args, "--store")
        .unwrap_or_else(|| {
            eprintln!("repro store requires --store PATH");
            std::process::exit(2);
        })
        .into()
}

fn open(args: &[String]) -> PerfStore {
    let path = store_path(args);
    PerfStore::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open store {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn write_blob(path: &str, blob: &str) {
    std::fs::write(path, blob).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {path}");
}

/// `repro store stats`: size and composition of the database.
fn stats(args: &[String]) -> i32 {
    let store = open(args);
    let stats = store.stats();
    if args.iter().any(|a| a == "--json") {
        let blob = serde_json::to_string_pretty(&stats).expect("stats serialize");
        println!("{blob}");
        return 0;
    }
    println!("store {}", stats.path);
    println!("  file bytes       {}", stats.file_bytes);
    println!("  log records      {}", stats.records);
    println!("  live configs     {}", stats.live_configs);
    println!("  torn tail fixed  {}", stats.torn_tail_truncated);
    for app in &stats.apps {
        println!("  app {:24} {:6} configs", app.app, app.configs);
    }
    0
}

/// `repro store inspect`: dump live records (first-occurrence order).
fn inspect(args: &[String]) -> i32 {
    let store = open(args);
    let app = flag_value(args, "--app");
    let limit = parse_usize(args, "--limit", 20);
    let records: Vec<_> = store
        .live_records()
        .into_iter()
        .filter(|r| app.as_deref().is_none_or(|a| r.app == a))
        .take(limit.max(1))
        .collect();
    for r in &records {
        println!(
            "{:24} fp={:016x} key={:?} cost={} wall={} session={} iter={}{}{}",
            r.app,
            r.fingerprint,
            r.config.cache_key(),
            r.cost(),
            r.wall_time(),
            r.session,
            r.iteration,
            if r.requeued { " requeued" } else { "" },
            if r.replayed { " replayed" } else { "" },
        );
    }
    eprintln!("{} live record(s) shown (limit {limit})", records.len());
    0
}

/// `repro store compact` / `repro store gc --app LABEL`.
fn compact(args: &[String], keep_app: Option<&str>) -> i32 {
    let mut store = open(args);
    if keep_app.is_none() && args.iter().any(|a| a == "gc") && flag_value(args, "--app").is_none() {
        eprintln!("repro store gc requires --app LABEL (compact keeps every app)");
        return 2;
    }
    let outcome = store.gc(keep_app).unwrap_or_else(|e| {
        eprintln!("compaction failed: {e}");
        std::process::exit(2);
    });
    println!(
        "compacted {}: {} -> {} records, {} -> {} bytes",
        store.path().display(),
        outcome.records_before,
        outcome.records_after,
        outcome.bytes_before,
        outcome.bytes_after,
    );
    0
}

/// `repro store merge --store DST --from SRC [--dry-run] [--crash-after N]`.
fn merge(args: &[String]) -> i32 {
    let dst_path = store_path(args);
    let src_path: PathBuf = flag_value(args, "--from")
        .unwrap_or_else(|| {
            eprintln!("repro store merge requires --from SRC (the peer database)");
            std::process::exit(2);
        })
        .into();
    let src = PerfStore::open(&src_path).unwrap_or_else(|e| {
        eprintln!("cannot open peer store {}: {e}", src_path.display());
        std::process::exit(2);
    });
    let mut dst = PerfStore::open(&dst_path).unwrap_or_else(|e| {
        eprintln!("cannot open store {}: {e}", dst_path.display());
        std::process::exit(2);
    });
    let report = |verb: &str, s: &MergeStats| {
        println!(
            "{verb} {} <- {}: scanned {} merged {} skipped {} conflicts {}",
            dst_path.display(),
            src_path.display(),
            s.scanned,
            s.merged,
            s.skipped,
            s.conflicts,
        );
    };
    if args.iter().any(|a| a == "--dry-run") {
        let peer: Vec<StoreRecord> = src.live_records().into_iter().cloned().collect();
        let stats = dst.merge_preview(&peer);
        report("would merge", &stats);
        return 0;
    }
    let crash_after: Option<usize> = flag_value(args, "--crash-after").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--crash-after expects a positive integer, got `{v}`");
            std::process::exit(2);
        })
    });
    let stats = if let Some(n) = crash_after {
        // Record-at-a-time with a flush per record, so the abort leaves a
        // genuinely partial (possibly torn) log for the durability tests.
        let peer: Vec<StoreRecord> = src.live_records().into_iter().cloned().collect();
        let mut total = MergeStats::default();
        for (done, rec) in peer.into_iter().enumerate() {
            if done >= n {
                eprintln!("store merge: simulated crash after {done} records");
                std::process::abort();
            }
            let step = dst.merge_records(vec![rec]).unwrap_or_else(|e| {
                eprintln!("merge failed: {e}");
                std::process::exit(2);
            });
            total.absorb(step);
            dst.flush().ok();
        }
        total
    } else {
        dst.merge_from(&src).unwrap_or_else(|e| {
            eprintln!("merge failed: {e}");
            std::process::exit(2);
        })
    };
    if let Err(e) = dst.flush() {
        eprintln!("flush failed: {e}");
        return 2;
    }
    report("merged", &stats);
    0
}

/// Deterministic synthetic objective for the demo campaign.
fn demo_cost(cfg: &Configuration) -> f64 {
    let tile = cfg.int("tile").unwrap() as f64;
    let unroll = cfg.int("unroll").unwrap() as f64;
    25.0 + 0.2 * (tile - 52.0).powi(2) + 0.9 * (unroll - 7.0).powi(2) + 0.02 * tile * unroll
}

/// Settings for one demo campaign (exposed for the durability tests).
pub struct DemoConfig {
    /// Database location (ignored when [`connect`](Self::connect) is set —
    /// the remote server owns the store).
    pub store: PathBuf,
    /// Drive the campaign over TCP against this live server instead of an
    /// in-process one.
    pub connect: Option<String>,
    /// Deterministic result JSON (`--out`).
    pub out: Option<String>,
    /// Volatile cache-accounting JSON (`--cache-out`).
    pub cache_out: Option<String>,
    /// `abort()` after this many *measured* evaluations.
    pub crash_after: Option<usize>,
    /// Sleep per measured evaluation (gives SIGKILL tests a window).
    pub eval_delay: std::time::Duration,
    /// Shrink the campaign.
    pub quick: bool,
}

/// The demo campaign's client, in-process or over TCP; the campaign loop
/// is identical either way, which is what makes the two modes' `--out`
/// files diffable.
enum DemoClient {
    Local(HarmonyClient),
    Remote(Box<TcpHarmonyClient>),
}

impl DemoClient {
    fn add_param(&mut self, p: Param) -> ah_core::error::Result<()> {
        match self {
            DemoClient::Local(c) => c.add_param(p),
            DemoClient::Remote(c) => c.add_param(p),
        }
    }

    fn seal(&mut self, o: SessionOptions, s: StrategyKind) -> ah_core::error::Result<()> {
        match self {
            DemoClient::Local(c) => c.seal(o, s),
            DemoClient::Remote(c) => c.seal(o, s),
        }
    }

    fn fetch_batch(&mut self, max: usize) -> ah_core::error::Result<(Vec<FetchedTrial>, bool)> {
        match self {
            DemoClient::Local(c) => c.fetch_batch(max),
            DemoClient::Remote(c) => c.fetch_batch(max),
        }
    }

    fn report_batch(&mut self, reports: Vec<TrialReport>) -> ah_core::error::Result<()> {
        match self {
            DemoClient::Local(c) => c.report_batch(reports),
            DemoClient::Remote(c) => c.report_batch(reports),
        }
    }

    fn history(&mut self) -> ah_core::error::Result<(ah_core::history::History, bool)> {
        match self {
            DemoClient::Local(c) => c.history(),
            DemoClient::Remote(c) => c.history(),
        }
    }

    fn best(&mut self) -> ah_core::error::Result<Option<(Configuration, f64)>> {
        match self {
            DemoClient::Local(c) => c.best(),
            DemoClient::Remote(c) => c.best(),
        }
    }
}

/// `repro store demo`: one store-backed campaign; see the module docs.
pub fn demo(cfg: &DemoConfig) -> i32 {
    let evals = if cfg.quick { 60 } else { 200 };
    let telemetry = Telemetry::enabled();
    // In remote mode the server at --connect owns the store; locally we
    // boot a 2-shard server around the --store database.
    let (mut client, server, store) = if let Some(addr) = &cfg.connect {
        let addr: std::net::SocketAddr = addr.parse().unwrap_or_else(|_| {
            eprintln!("--connect expects HOST:PORT, got `{addr}`");
            std::process::exit(2);
        });
        let remote =
            TcpHarmonyClient::connect_with(addr, "store-demo", TcpClientOptions::default())
                .unwrap_or_else(|e| {
                    eprintln!("cannot connect to {addr}: {e}");
                    std::process::exit(2);
                });
        (DemoClient::Remote(Box::new(remote)), None, None)
    } else {
        let store = SharedStore::open_with(&cfg.store, telemetry.clone()).unwrap_or_else(|e| {
            eprintln!("cannot open store {}: {e}", cfg.store.display());
            std::process::exit(2);
        });
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 2,
            store: Some(store.clone()),
            ..Default::default()
        });
        let client = server.connect("store-demo").expect("connect");
        (DemoClient::Local(client), Some(server), Some(store))
    };
    client
        .add_param(Param::int("tile", 1, 128, 1))
        .expect("param");
    client
        .add_param(Param::int("unroll", 1, 16, 1))
        .expect("param");
    client
        .seal(
            SessionOptions {
                max_evaluations: evals,
                seed: 4242,
                ..Default::default()
            },
            StrategyKind::NelderMead,
        )
        .expect("seal");

    let mut measured = 0usize;
    loop {
        let (trials, finished) = client.fetch_batch(4).expect("fetch_batch");
        if finished {
            break;
        }
        let mut reports = Vec::with_capacity(trials.len());
        for t in &trials {
            measured += 1;
            if !cfg.eval_delay.is_zero() {
                std::thread::sleep(cfg.eval_delay);
            }
            reports.push(TrialReport {
                iteration: t.iteration,
                cost: demo_cost(&t.config),
                wall_time: 1.0,
            });
        }
        client.report_batch(reports).expect("report_batch");
        if let Some(n) = cfg.crash_after {
            if measured >= n {
                eprintln!("store demo: simulated crash after {measured} evaluations");
                // No flush, no shutdown: whatever the store appended so far
                // is what recovery gets to work with.
                std::process::abort();
            }
        }
    }

    let (history, _) = client.history().expect("history");
    let (best_config, best_cost) = client.best().expect("best").expect("nonempty");
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(store) = &store {
        store.flush().expect("flush store");
    }

    let rows = history.evaluations();
    let evaluations = rows.len();
    let served = rows.iter().filter(|e| e.cached).count();
    let hits = telemetry.counter(Counter::StoreHits);
    let misses = telemetry.counter(Counter::StoreMisses);
    let source = cfg
        .connect
        .clone()
        .unwrap_or_else(|| cfg.store.display().to_string());
    eprintln!(
        "store demo: {evaluations} evaluations, {measured} measured, {served} served \
         from {source} ({hits} hits / {misses} misses)"
    );

    if let Some(path) = &cfg.out {
        // Run-deterministic only: bit patterns and cache keys, never
        // serialized Configuration maps (HashMap order is per-process).
        let result = serde_json::json!({
            "evaluations": evaluations,
            "best_cost_bits": best_cost.to_bits(),
            "best_cost": best_cost,
            "best_config_key": best_config.cache_key(),
            "trajectory": rows.iter().map(|e| {
                serde_json::json!({"iteration": e.iteration, "cost_bits": e.cost.to_bits()})
            }).collect::<Vec<_>>(),
        });
        write_blob(
            path,
            &serde_json::to_string_pretty(&result).expect("result serializes"),
        );
    }
    if let Some(path) = &cfg.cache_out {
        // Store composition only exists in local mode; a remote server's
        // accounting lives on its /status endpoint.
        let served_fraction = served as f64 / evaluations.max(1) as f64;
        let accounting = if let Some(store) = &store {
            serde_json::json!({
                "store_hits": hits,
                "store_misses": misses,
                "measured": measured,
                "served": served,
                "served_fraction": served_fraction,
                "stats": store.stats(),
            })
        } else {
            serde_json::json!({
                "store_hits": hits,
                "store_misses": misses,
                "measured": measured,
                "served": served,
                "served_fraction": served_fraction,
            })
        };
        write_blob(
            path,
            &serde_json::to_string_pretty(&accounting).expect("accounting serializes"),
        );
    }
    0
}

/// Dispatch `repro store <subcommand>`; returns the process exit code.
pub fn run(args: &[String], quick: bool) -> i32 {
    let sub = args
        .iter()
        .skip_while(|a| a.as_str() != "store")
        .nth(1)
        .cloned()
        .unwrap_or_default();
    match sub.as_str() {
        "stats" => stats(args),
        "inspect" => inspect(args),
        "compact" => compact(args, None),
        "gc" => {
            let app = flag_value(args, "--app").unwrap_or_else(|| {
                eprintln!("repro store gc requires --app LABEL");
                std::process::exit(2);
            });
            compact(args, Some(&app))
        }
        "merge" => merge(args),
        "demo" => demo(&DemoConfig {
            store: if flag_value(args, "--connect").is_some() {
                flag_value(args, "--store").unwrap_or_default().into()
            } else {
                store_path(args)
            },
            connect: flag_value(args, "--connect"),
            out: flag_value(args, "--out"),
            cache_out: flag_value(args, "--cache-out"),
            crash_after: flag_value(args, "--crash-after").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--crash-after expects a positive integer, got `{v}`");
                    std::process::exit(2);
                })
            }),
            eval_delay: std::time::Duration::from_millis(
                parse_usize(args, "--eval-delay-ms", 0) as u64
            ),
            quick,
        }),
        other => {
            eprintln!(
                "unknown store subcommand `{other}`; \
                 expected stats | inspect | compact | gc | merge | demo"
            );
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ah-store-cli-{}-{name}", std::process::id()))
    }

    #[test]
    fn demo_twice_against_one_store_serves_the_second_run() {
        let store = tmp("demo.store");
        let _ = std::fs::remove_file(&store);
        let cold_out = tmp("cold.json");
        let warm_out = tmp("warm.json");
        let warm_cache = tmp("warm-cache.json");
        let base = DemoConfig {
            store: store.clone(),
            connect: None,
            out: Some(cold_out.display().to_string()),
            cache_out: None,
            crash_after: None,
            eval_delay: std::time::Duration::ZERO,
            quick: true,
        };
        assert_eq!(demo(&base), 0);
        let warm = DemoConfig {
            out: Some(warm_out.display().to_string()),
            cache_out: Some(warm_cache.display().to_string()),
            store: store.clone(),
            ..base
        };
        assert_eq!(demo(&warm), 0);

        let cold_blob = std::fs::read_to_string(&cold_out).unwrap();
        let warm_blob = std::fs::read_to_string(&warm_out).unwrap();
        assert_eq!(cold_blob, warm_blob, "warm result must be byte-identical");
        let cache: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&warm_cache).unwrap()).unwrap();
        assert!(cache["store_hits"].as_u64().unwrap() > 0);
        assert!(
            cache["served_fraction"].as_f64().unwrap() >= 0.9,
            "warm run should be served from the store: {cache:?}"
        );
        for p in [&store, &cold_out, &warm_out, &warm_cache] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merge_subcommand_is_predicted_by_dry_run_and_idempotent() {
        let dst = tmp("merge-dst.store");
        let src = tmp("merge-src.store");
        for p in [&dst, &src] {
            let _ = std::fs::remove_file(p);
        }
        let rec = |x: i64, cost: f64| {
            let cfg = ah_core::space::SearchSpace::builder()
                .int("x", 0, 64, 1)
                .build()
                .unwrap()
                .project(&[x as f64]);
            StoreRecord::new("merge-cli", 3, cfg, cost, cost)
        };
        let mut a = PerfStore::open(&dst).unwrap();
        a.insert(rec(1, 10.0)).unwrap();
        a.insert(rec(2, 20.0)).unwrap();
        a.flush().unwrap();
        let mut b = PerfStore::open(&src).unwrap();
        b.insert(rec(2, 99.0)).unwrap(); // collides: first write (dst) wins
        b.insert(rec(3, 30.0)).unwrap();
        b.flush().unwrap();
        drop((a, b));

        let argv = |extra: &[&str]| -> Vec<String> {
            let mut v = vec![
                "store".to_string(),
                "merge".to_string(),
                "--store".to_string(),
                dst.display().to_string(),
                "--from".to_string(),
                src.display().to_string(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        // Dry run must not write.
        assert_eq!(run(&argv(&["--dry-run"]), true), 0);
        assert_eq!(PerfStore::open(&dst).unwrap().live_configs(), 2);
        // Real merge folds in the one novel record, keeps dst's x=2 cost.
        assert_eq!(run(&argv(&[]), true), 0);
        let merged = PerfStore::open(&dst).unwrap();
        assert_eq!(merged.live_configs(), 3);
        let x2 = merged
            .live_records()
            .into_iter()
            .find(|r| r.config.int("x") == Some(2))
            .unwrap();
        assert_eq!(x2.cost(), 20.0, "first write wins on collision");
        drop(merged);
        // Re-merge is a no-op.
        assert_eq!(run(&argv(&[]), true), 0);
        assert_eq!(PerfStore::open(&dst).unwrap().live_configs(), 3);
        for p in [&dst, &src] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn stats_and_compact_subcommands_round_trip() {
        let store = tmp("ops.store");
        let _ = std::fs::remove_file(&store);
        let cfg = DemoConfig {
            store: store.clone(),
            connect: None,
            out: None,
            cache_out: None,
            crash_after: None,
            eval_delay: std::time::Duration::ZERO,
            quick: true,
        };
        assert_eq!(demo(&cfg), 0);
        let args: Vec<String> = ["store", "stats", "--store", &store.display().to_string()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args, true), 0);
        let args: Vec<String> = ["store", "compact", "--store", &store.display().to_string()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args, true), 0);
        let reopened = PerfStore::open(&store).unwrap();
        assert!(!reopened.is_empty());
        assert_eq!(reopened.len(), reopened.live_configs());
        let _ = std::fs::remove_file(&store);
    }
}

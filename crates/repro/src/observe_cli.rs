//! `repro observe` / `repro watch`: the live side of the observability
//! plane.
//!
//! * `observe` runs the same faulted Nelder–Mead campaign as
//!   `repro metrics`/`repro trace`, but with the HTTP observability
//!   endpoint attached to the tuning server and the campaign stretched in
//!   time, so an external poller (a human with `curl`, `repro watch`, the
//!   CI smoke job) can inspect `/metrics` and `/status` *mid-campaign*.
//!   The bound address is printed to stdout as `observe: http://<addr>`.
//! * `watch` polls a live server's `/status` once per interval and prints
//!   a one-line progress view per tick: evaluations, best cost, strategy
//!   phase, simplex spread, pending trials, and per-shard queue depths.
//!
//! Both speak plain HTTP/1.1 over [`ah_core::server::observe::http_get`] —
//! no client dependency, same as the server side.

use crate::experiments::fault::{self, ObserveOpts};
use ah_clustersim::FaultPlan;
use ah_core::prelude::*;
use ah_core::server::observe::http_get;
use serde_json::Value;
use std::time::Duration;

/// `repro observe`: run the observed fault campaign with a live endpoint.
pub fn serve(quick: bool, addr: &str, tick_delay_ms: u64, linger_ms: u64) -> i32 {
    let evals = if quick { 40 } else { 120 };
    let plan = FaultPlan::new(2026, 0.12, 0.08, 0.18);
    let opts = ObserveOpts {
        addr: Some(addr.to_string()),
        tick_delay: (tick_delay_ms > 0).then(|| Duration::from_millis(tick_delay_ms)),
        linger: (linger_ms > 0).then(|| Duration::from_millis(linger_ms)),
    };
    let outcome = fault::faulty_history_with(StrategyKind::NelderMead, evals, 62, &plan, 3, &opts);
    eprintln!(
        "observed fault run: {} evaluations, {} crashes, {} lost reports, {} stragglers",
        outcome.history.len(),
        outcome.crashes,
        outcome.lost,
        outcome.stragglers
    );
    0
}

/// Pull `path` from a live observability endpoint, exiting with a message
/// on connection failure. Shared by `watch` and the `--from` flags of
/// `trace`/`metrics`.
pub(crate) fn pull(addr: &str, path: &str) -> Result<String, String> {
    match http_get(addr, path) {
        Ok((200, body)) => Ok(body),
        Ok((code, _)) => Err(format!("GET {path} from {addr}: HTTP {code}")),
        Err(e) => Err(format!("GET {path} from {addr}: {e}")),
    }
}

/// One `/status` document rendered as a single progress line. Multiple
/// tuning sessions produce one line each.
fn progress_lines(doc: &Value) -> Vec<String> {
    let depths: Vec<String> = doc
        .get("server")
        .and_then(|s| s.get("queue_depths"))
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .map(|d| d.as_u64().unwrap_or(0).to_string())
                .collect()
        })
        .unwrap_or_default();
    let sessions = doc.get("sessions").and_then(Value::as_array).unwrap_or(&[]);
    if sessions.is_empty() {
        return vec![format!(
            "no sessions yet; shard queues [{}]",
            depths.join(",")
        )];
    }
    sessions
        .iter()
        .map(|s| {
            let app = s.get("app").and_then(Value::as_str).unwrap_or("?");
            if s.get("phase").and_then(Value::as_str) != Some("tuning") {
                return format!("{app}: declaring parameters");
            }
            let evals = s.get("evaluations").and_then(Value::as_u64).unwrap_or(0);
            let best = s
                .get("best_cost")
                .and_then(Value::as_f64)
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "-".into());
            let phase = s
                .get("search")
                .and_then(|v| v.get("phase"))
                .and_then(Value::as_str)
                .unwrap_or("?");
            let spread = s
                .get("search")
                .and_then(|v| v.get("simplex"))
                .and_then(|v| v.get("spread"))
                .and_then(Value::as_f64)
                .map(|sp| format!(" spread={sp:.4}"))
                .unwrap_or_default();
            let pending = s.get("pending").and_then(Value::as_u64).unwrap_or(0);
            let outstanding = s.get("outstanding").and_then(Value::as_u64).unwrap_or(0);
            let stopped = s
                .get("stop_reason")
                .and_then(Value::as_str)
                .map(|r| format!(" stopped={r}"))
                .unwrap_or_default();
            format!(
                "{app}: evals={evals} best={best} phase={phase}{spread} \
                 pending={pending} outstanding={outstanding} \
                 queues=[{}]{stopped}",
                depths.join(",")
            )
        })
        .collect()
}

/// `repro watch`: poll `/status` and print one progress line per tick.
/// Stops after `ticks` polls (0 = until every session reports a stop
/// reason), or as soon as the server becomes unreachable.
pub fn watch(addr: &str, interval_ms: u64, ticks: usize) -> i32 {
    let mut polled = 0usize;
    loop {
        let body = match pull(addr, "/status") {
            Ok(b) => b,
            Err(e) => {
                // Unreachable after at least one good poll usually means
                // the campaign ended and took the endpoint down: that is a
                // clean exit for a watcher, not an error.
                eprintln!("watch: {e}");
                return if polled > 0 { 0 } else { 2 };
            }
        };
        let Ok(doc) = serde_json::parse(&body) else {
            eprintln!("watch: /status returned invalid JSON");
            return 2;
        };
        for line in progress_lines(&doc) {
            println!("{line}");
        }
        polled += 1;
        if ticks > 0 && polled >= ticks {
            return 0;
        }
        if ticks == 0 {
            let sessions = doc.get("sessions").and_then(Value::as_array).unwrap_or(&[]);
            let all_stopped = !sessions.is_empty()
                && sessions
                    .iter()
                    .all(|s| s.get("stop_reason").map(|r| *r != Value::Null) == Some(true));
            if all_stopped {
                return 0;
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(10)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end over a real socket: serve the quick campaign from one
    /// thread, watch and pull from another, mid-campaign.
    #[test]
    fn watch_and_pull_see_a_live_campaign() {
        // Fixed loopback port: port 0 would print the resolved address to
        // stdout where this test cannot read it back.
        let addr = "127.0.0.1:47717";
        let server = std::thread::spawn(move || {
            // Slow ticks stretch the campaign; linger keeps the endpoint
            // up long enough for the final assertions.
            serve(true, addr, 5, 1500)
        });
        // Wait for the endpoint to come up.
        let mut status = None;
        for _ in 0..200 {
            if let Ok(body) = pull(addr, "/status") {
                status = Some(body);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let status = status.expect("observability endpoint never came up");
        let doc: Value = serde_json::parse(&status).unwrap();
        assert!(doc.get("sessions").is_some(), "{status}");

        // A watcher bounded by ticks terminates and reports progress.
        let code = watch(addr, 20, 3);
        assert_eq!(code, 0);

        // The exposition is live on the same endpoint.
        let metrics = pull(addr, "/metrics").expect("metrics");
        assert!(metrics.contains("ah_trials_proposed_total"), "{metrics}");

        // And the Chrome trace endpoint serves span slices of the run.
        let trace = pull(addr, "/trace").expect("trace");
        let trace: Value = serde_json::parse(&trace).unwrap();
        assert!(trace.get("traceEvents").is_some());

        assert_eq!(server.join().unwrap(), 0);
    }
}

//! `repro observe` / `repro watch`: the live side of the observability
//! plane.
//!
//! * `observe` runs the same faulted Nelder–Mead campaign as
//!   `repro metrics`/`repro trace`, but with the HTTP observability
//!   endpoint attached to the tuning server and the campaign stretched in
//!   time, so an external poller (a human with `curl`, `repro watch`, the
//!   CI smoke job) can inspect `/metrics` and `/status` *mid-campaign*.
//!   The bound address is printed to stdout as `observe: http://<addr>`.
//! * `watch` polls a live server's `/status` once per interval and prints
//!   a one-line progress view per tick: evaluations, best cost, strategy
//!   phase, simplex spread, pending trials, and per-shard queue depths.
//!   When the server retains a time-series (`/metrics/history`), a second
//!   line per tick reports windowed evaluation/report rates; against older
//!   servers the same rates are derived from successive `/status` counter
//!   snapshots instead.
//! * `fleet` renders one server's `/fleet` aggregation — a per-peer table
//!   of freshness, sessions, queue depth, and counters, plus fleet totals
//!   and merged per-tenant metrics.
//!
//! All speak plain HTTP/1.1 over [`ah_core::server::observe::http_get`] —
//! no client dependency, same as the server side.

use crate::experiments::fault::{self, ObserveOpts};
use ah_clustersim::FaultPlan;
use ah_core::prelude::*;
use ah_core::server::observe::http_get;
use serde_json::Value;
use std::time::Duration;

/// `repro observe`: run the observed fault campaign with a live endpoint.
pub fn serve(quick: bool, addr: &str, tick_delay_ms: u64, linger_ms: u64) -> i32 {
    let evals = if quick { 40 } else { 120 };
    let plan = FaultPlan::new(2026, 0.12, 0.08, 0.18);
    let opts = ObserveOpts {
        addr: Some(addr.to_string()),
        tick_delay: (tick_delay_ms > 0).then(|| Duration::from_millis(tick_delay_ms)),
        linger: (linger_ms > 0).then(|| Duration::from_millis(linger_ms)),
        sample_interval: None,
    };
    let outcome = fault::faulty_history_with(StrategyKind::NelderMead, evals, 62, &plan, 3, &opts);
    eprintln!(
        "observed fault run: {} evaluations, {} crashes, {} lost reports, {} stragglers",
        outcome.history.len(),
        outcome.crashes,
        outcome.lost,
        outcome.stragglers
    );
    // The campaign ran with the sampler attached; close with the whole-run
    // rates the time-series retained.
    if let Some(w) = outcome
        .timeseries
        .as_ref()
        .and_then(|s| s.window(Duration::from_secs(3600)))
    {
        let rate = |name: &str| {
            w.counter_rates
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        eprintln!(
            "sampled {} point(s) over {:.1}s: evals/s={:.2} reports/s={:.2}",
            w.samples,
            w.seconds,
            rate("trials_reported"),
            rate("trials_measured"),
        );
    }
    0
}

/// Pull `path` from a live observability endpoint, exiting with a message
/// on connection failure. Shared by `watch` and the `--from` flags of
/// `trace`/`metrics`.
pub(crate) fn pull(addr: &str, path: &str) -> Result<String, String> {
    match http_get(addr, path) {
        Ok((200, body)) => Ok(body),
        Ok((code, _)) => Err(format!("GET {path} from {addr}: HTTP {code}")),
        Err(e) => Err(format!("GET {path} from {addr}: {e}")),
    }
}

/// One `/status` document rendered as a single progress line. Multiple
/// tuning sessions produce one line each.
fn progress_lines(doc: &Value) -> Vec<String> {
    let depths: Vec<String> = doc
        .get("server")
        .and_then(|s| s.get("queue_depths"))
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .map(|d| d.as_u64().unwrap_or(0).to_string())
                .collect()
        })
        .unwrap_or_default();
    let sessions = doc.get("sessions").and_then(Value::as_array).unwrap_or(&[]);
    if sessions.is_empty() {
        return vec![format!(
            "no sessions yet; shard queues [{}]",
            depths.join(",")
        )];
    }
    sessions
        .iter()
        .map(|s| {
            let app = s.get("app").and_then(Value::as_str).unwrap_or("?");
            if s.get("phase").and_then(Value::as_str) != Some("tuning") {
                return format!("{app}: declaring parameters");
            }
            let evals = s.get("evaluations").and_then(Value::as_u64).unwrap_or(0);
            let best = s
                .get("best_cost")
                .and_then(Value::as_f64)
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "-".into());
            let phase = s
                .get("search")
                .and_then(|v| v.get("phase"))
                .and_then(Value::as_str)
                .unwrap_or("?");
            let spread = s
                .get("search")
                .and_then(|v| v.get("simplex"))
                .and_then(|v| v.get("spread"))
                .and_then(Value::as_f64)
                .map(|sp| format!(" spread={sp:.4}"))
                .unwrap_or_default();
            let pending = s.get("pending").and_then(Value::as_u64).unwrap_or(0);
            let outstanding = s.get("outstanding").and_then(Value::as_u64).unwrap_or(0);
            let stopped = s
                .get("stop_reason")
                .and_then(Value::as_str)
                .map(|r| format!(" stopped={r}"))
                .unwrap_or_default();
            format!(
                "{app}: evals={evals} best={best} phase={phase}{spread} \
                 pending={pending} outstanding={outstanding} \
                 queues=[{}]{stopped}",
                depths.join(",")
            )
        })
        .collect()
}

/// Successive-snapshot rate fallback for servers without a time-series:
/// remembers the previous tick's cumulative counters and wall clock, and
/// turns the current tick's counters into per-second rates.
#[derive(Default)]
struct RateTracker {
    last: Option<(std::time::Instant, u64, u64)>,
}

impl RateTracker {
    /// Feed this tick's cumulative (evaluations, reports); returns per-
    /// second rates once two ticks have been seen.
    fn tick(&mut self, evals: u64, reports: u64) -> Option<(f64, f64)> {
        let now = std::time::Instant::now();
        let rates = self.last.map(|(at, e, r)| {
            let dt = now.duration_since(at).as_secs_f64().max(1e-9);
            (
                evals.saturating_sub(e) as f64 / dt,
                reports.saturating_sub(r) as f64 / dt,
            )
        });
        self.last = Some((now, evals, reports));
        rates
    }
}

/// Cumulative (evaluations, reports) counters from a `/status` document.
fn status_counters(doc: &Value) -> (u64, u64) {
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    (counter("trials_reported"), counter("trials_measured"))
}

/// Windowed (evals/s, reports/s, window_s) from a `/metrics/history`
/// document, when the window holds at least two samples.
fn history_rates(doc: &Value) -> Option<(f64, f64, f64)> {
    let window = doc.get("window")?;
    let rate = |name: &str| window.get("rates")?.get(name)?.as_f64();
    Some((
        rate("trials_reported")?,
        rate("trials_measured")?,
        window.get("seconds").and_then(Value::as_f64)?,
    ))
}

/// One rates line per tick. Prefers the server-side time-series window;
/// falls back to deltas between this watcher's own successive `/status`
/// snapshots. `history_supported` caches whether `/metrics/history`
/// exists so a missing endpoint is probed only once.
fn rates_line(
    addr: &str,
    status: &Value,
    tracker: &mut RateTracker,
    history_supported: &mut Option<bool>,
) -> Option<String> {
    if *history_supported != Some(false) {
        match pull(addr, "/metrics/history?window=10") {
            Ok(body) => {
                *history_supported = Some(true);
                if let Some((evals, reports, secs)) = serde_json::parse(&body)
                    .ok()
                    .as_ref()
                    .and_then(history_rates)
                {
                    // Keep the fallback tracker warm in case the window
                    // later drains below two samples.
                    let (e, r) = status_counters(status);
                    tracker.tick(e, r);
                    return Some(format!(
                        "rates: evals/s={evals:.2} reports/s={reports:.2} (history window={secs:.1}s)"
                    ));
                }
            }
            Err(_) => *history_supported = Some(false),
        }
    }
    let (e, r) = status_counters(status);
    let (evals, reports) = tracker.tick(e, r)?;
    Some(format!(
        "rates: evals/s={evals:.2} reports/s={reports:.2} (status deltas)"
    ))
}

/// `repro watch`: poll `/status` and print one progress line per tick.
/// Stops after `ticks` polls (0 = until every session reports a stop
/// reason), or as soon as the server becomes unreachable.
pub fn watch(addr: &str, interval_ms: u64, ticks: usize) -> i32 {
    let mut polled = 0usize;
    let mut tracker = RateTracker::default();
    let mut history_supported = None;
    loop {
        let body = match pull(addr, "/status") {
            Ok(b) => b,
            Err(e) => {
                // Unreachable after at least one good poll usually means
                // the campaign ended and took the endpoint down: that is a
                // clean exit for a watcher, not an error.
                eprintln!("watch: {e}");
                return if polled > 0 { 0 } else { 2 };
            }
        };
        let Ok(doc) = serde_json::parse(&body) else {
            eprintln!("watch: /status returned invalid JSON");
            return 2;
        };
        for line in progress_lines(&doc) {
            println!("{line}");
        }
        if let Some(line) = rates_line(addr, &doc, &mut tracker, &mut history_supported) {
            println!("{line}");
        }
        polled += 1;
        if ticks > 0 && polled >= ticks {
            return 0;
        }
        if ticks == 0 {
            let sessions = doc.get("sessions").and_then(Value::as_array).unwrap_or(&[]);
            let all_stopped = !sessions.is_empty()
                && sessions
                    .iter()
                    .all(|s| s.get("stop_reason").map(|r| *r != Value::Null) == Some(true));
            if all_stopped {
                return 0;
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(10)));
    }
}

/// Render one `/fleet` document as a per-peer table plus totals.
fn fleet_lines(doc: &Value) -> Vec<String> {
    let u = |v: &Value, key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    let mut out = vec![format!(
        "fleet: {} peer(s), {} fresh",
        u(doc, "peers"),
        u(doc, "fresh")
    )];
    out.push(format!(
        "{:<24} {:>4} {:>5} {:>6} {:>8} {:>6} {:>7} {:>7} {:>8}",
        "ADDR", "SELF", "FRESH", "AGE_S", "SESSIONS", "QUEUE", "EVALS", "REPORTS", "REFUSED"
    ));
    for row in doc.get("rows").and_then(Value::as_array).unwrap_or(&[]) {
        let addr = row.get("addr").and_then(Value::as_str).unwrap_or("?");
        if let Some(err) = row.get("error").and_then(Value::as_str) {
            out.push(format!("{addr:<24} {err}"));
            continue;
        }
        let yn = |key: &str| {
            if row.get(key).and_then(Value::as_bool).unwrap_or(false) {
                "yes"
            } else {
                "no"
            }
        };
        let age = row
            .get("age_s")
            .and_then(Value::as_f64)
            .map(|a| format!("{a:.1}"))
            .unwrap_or_else(|| "-".into());
        out.push(format!(
            "{:<24} {:>4} {:>5} {:>6} {:>8} {:>6} {:>7} {:>7} {:>8}",
            addr,
            yn("self"),
            yn("fresh"),
            age,
            u(row, "sessions"),
            u(row, "queue_depth"),
            u(row, "evaluations"),
            u(row, "reports"),
            u(row, "quota_refusals"),
        ));
    }
    if let Some(totals) = doc.get("totals") {
        out.push(format!(
            "totals: evals={} reports={} sessions={} refusals={}",
            u(totals, "evaluations"),
            u(totals, "reports"),
            u(totals, "sessions"),
            u(totals, "quota_refusals"),
        ));
    }
    if let Some(tenants) = doc.get("tenants").and_then(Value::as_object) {
        for (tenant, metrics) in tenants {
            let cells: Vec<String> = metrics
                .as_object()
                .map(|m| {
                    m.iter()
                        .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
                        .collect()
                })
                .unwrap_or_default();
            out.push(format!("tenant {tenant}: {}", cells.join(" ")));
        }
    }
    out
}

/// `repro fleet --from ADDR`: pull one server's `/fleet` aggregation and
/// print the per-peer table.
pub fn fleet(addr: &str) -> i32 {
    let body = match pull(addr, "/fleet") {
        Ok(b) => b,
        Err(e) => {
            eprintln!("fleet: {e}");
            return 2;
        }
    };
    let Ok(doc) = serde_json::parse(&body) else {
        eprintln!("fleet: /fleet returned invalid JSON");
        return 2;
    };
    for line in fleet_lines(&doc) {
        println!("{line}");
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end over a real socket: serve the quick campaign from one
    /// thread, watch and pull from another, mid-campaign.
    #[test]
    fn watch_and_pull_see_a_live_campaign() {
        // Fixed loopback port: port 0 would print the resolved address to
        // stdout where this test cannot read it back.
        let addr = "127.0.0.1:47717";
        let server = std::thread::spawn(move || {
            // Slow ticks stretch the campaign; linger keeps the endpoint
            // up long enough for the final assertions.
            serve(true, addr, 5, 1500)
        });
        // Wait for the endpoint to come up.
        let mut status = None;
        for _ in 0..200 {
            if let Ok(body) = pull(addr, "/status") {
                status = Some(body);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let status = status.expect("observability endpoint never came up");
        let doc: Value = serde_json::parse(&status).unwrap();
        assert!(doc.get("sessions").is_some(), "{status}");

        // A watcher bounded by ticks terminates and reports progress.
        let code = watch(addr, 20, 3);
        assert_eq!(code, 0);

        // The exposition is live on the same endpoint.
        let metrics = pull(addr, "/metrics").expect("metrics");
        assert!(metrics.contains("ah_trials_proposed_total"), "{metrics}");

        // The sampler is attached: history serves windowed deltas, and
        // the default SLO rules hold on a healthy local campaign.
        let history = pull(addr, "/metrics/history?window=60").expect("history");
        let history: Value = serde_json::parse(&history).unwrap();
        assert!(history.get("retained").and_then(Value::as_u64).unwrap() >= 1);
        let health = pull(addr, "/healthz").expect("healthz");
        let health: Value = serde_json::parse(&health).unwrap();
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

        // And the Chrome trace endpoint serves span slices of the run.
        let trace = pull(addr, "/trace").expect("trace");
        let trace: Value = serde_json::parse(&trace).unwrap();
        assert!(trace.get("traceEvents").is_some());

        assert_eq!(server.join().unwrap(), 0);
    }

    #[test]
    fn rate_tracker_needs_two_ticks_and_divides_by_elapsed() {
        let mut tracker = RateTracker::default();
        assert!(tracker.tick(10, 5).is_none());
        std::thread::sleep(Duration::from_millis(5));
        let (evals, reports) = tracker.tick(30, 15).unwrap();
        assert!(evals > 0.0 && reports > 0.0, "{evals} {reports}");
        assert!(evals > reports, "20 evals vs 10 reports over the same span");
        // Counters that went backwards (server restart) clamp to zero.
        std::thread::sleep(Duration::from_millis(2));
        let (evals, reports) = tracker.tick(0, 0).unwrap();
        assert_eq!((evals, reports), (0.0, 0.0));
    }

    #[test]
    fn history_rates_read_the_window_block() {
        let doc: Value = serde_json::parse(
            r#"{"window":{"seconds":2.0,"rates":{"trials_reported":3.5,"trials_measured":3.0}}}"#,
        )
        .unwrap();
        let (evals, reports, secs) = history_rates(&doc).unwrap();
        assert_eq!((evals, reports, secs), (3.5, 3.0, 2.0));
        // An empty window (fewer than two samples) yields nothing.
        let empty: Value = serde_json::parse(r#"{"window":null}"#).unwrap();
        assert!(history_rates(&empty).is_none());
    }

    #[test]
    fn fleet_lines_render_rows_totals_and_tenants() {
        let doc: Value = serde_json::parse(
            r#"{
                "peers": 2, "fresh": 1,
                "totals": {"evaluations": 70, "reports": 68, "sessions": 3, "quota_refusals": 1},
                "tenants": {"acme": {"evaluations": 7, "reports": 7}},
                "rows": [
                    {"addr": "127.0.0.1:9001", "self": true, "fresh": true, "age_s": 0.0,
                     "sessions": 2, "queue_depth": 4, "evaluations": 50, "reports": 48,
                     "quota_refusals": 1},
                    {"addr": "127.0.0.1:9002", "self": false, "fresh": false, "age_s": 12.5,
                     "sessions": 1, "queue_depth": 0, "evaluations": 20, "reports": 20,
                     "quota_refusals": 0},
                    {"addr": "127.0.0.1:9003", "self": false, "fresh": false,
                     "error": "unreachable"}
                ]
            }"#,
        )
        .unwrap();
        let lines = fleet_lines(&doc);
        let text = lines.join("\n");
        assert!(lines[0].contains("2 peer(s), 1 fresh"), "{text}");
        assert!(text.contains("127.0.0.1:9001"), "{text}");
        assert!(text.contains("12.5"), "stale peer age missing: {text}");
        assert!(text.contains("unreachable"), "{text}");
        assert!(
            text.contains("evals=70 reports=68 sessions=3 refusals=1"),
            "{text}"
        );
        assert!(
            text.contains("tenant acme: evaluations=7 reports=7"),
            "{text}"
        );
    }
}

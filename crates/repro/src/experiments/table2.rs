//! Table II: POP parameter values before and after tuning (27 iterations),
//! with the best improvement of 16.7%.

use super::common::in_band;
use super::table1::param_campaign;
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_core::offline::ShortRunApp;

/// The experiment.
pub struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Table II: POP parameter values, default vs after 27 iterations"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let (out, app) = param_campaign(quick);
        let default_cfg = app.default_config();
        let best = &out.result.best_config;
        let mut rows = Vec::new();
        for (name, default_v) in default_cfg.iter() {
            let tuned_v = best.get(name).expect("same space");
            if default_v != tuned_v {
                rows.push(vec![
                    name.to_string(),
                    default_v.to_string(),
                    tuned_v.to_string(),
                ]);
            }
        }
        let gain = out.improvement_pct();
        let narrative = format!(
            "{}\nBest improvement after {} iterations: {}\n",
            table::render(&["Parameter", "Default", "After tuning"], &rows),
            out.result.evaluations,
            table::pct(gain),
        );

        let band = if quick { (1.0, 45.0) } else { (8.0, 28.0) };
        let findings = vec![
            Finding::check(
                "best improvement after 27 iterations",
                "16.7%",
                table::pct(gain),
                in_band(gain, band.0, band.1),
            ),
            Finding::check(
                "several parameters move off their defaults",
                "12 parameters changed in Table II",
                format!("{} parameters changed", rows.len()),
                rows.len() >= 4,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "improvement_pct": gain,
                "changed_parameters": rows.len(),
                "iterations": out.result.evaluations,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Table2.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

//! Helpers shared by the experiment implementations.

use ah_core::offline::{OfflineTuner, ShortRunApp};
use ah_core::session::SessionOptions;
use ah_core::strategy::{NelderMead, NelderMeadOptions, SearchStrategy, StartPoint};

/// A Nelder–Mead strategy seeded at explicit coordinates (the application's
/// default configuration — how the paper's campaigns start).
pub fn nm_from(coords: Vec<f64>) -> Box<dyn SearchStrategy> {
    Box::new(NelderMead::new(NelderMeadOptions {
        start: StartPoint::Coords(coords),
        ..Default::default()
    }))
}

/// A Nelder–Mead strategy whose whole initial simplex is given (the
/// prior-runs seeding technique).
pub fn nm_simplex(points: Vec<Vec<f64>>) -> Box<dyn SearchStrategy> {
    Box::new(NelderMead::new(NelderMeadOptions {
        start: StartPoint::Simplex(points),
        ..Default::default()
    }))
}

/// Off-line tuning campaign with explicit stopping criteria.
pub fn tune_with<A: ShortRunApp>(
    app: &mut A,
    strategy: Box<dyn SearchStrategy>,
    opts: SessionOptions,
) -> ah_core::offline::OfflineOutcome {
    OfflineTuner::new(opts).tune(app, strategy)
}

/// Standard off-line tuning campaign with a seeded session.
pub fn tune<A: ShortRunApp>(
    app: &mut A,
    strategy: Box<dyn SearchStrategy>,
    max_evaluations: usize,
    seed: u64,
) -> ah_core::offline::OfflineOutcome {
    let tuner = OfflineTuner::new(SessionOptions {
        max_evaluations,
        seed,
        ..Default::default()
    });
    tuner.tune(app, strategy)
}

/// `true` if `measured` lies within `[lo, hi]` — the band we accept as
/// "same shape as the paper".
pub fn in_band(measured: f64, lo: f64, hi: f64) -> bool {
    (lo..=hi).contains(&measured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_check() {
        assert!(in_band(15.0, 10.0, 20.0));
        assert!(!in_band(25.0, 10.0, 20.0));
    }
}

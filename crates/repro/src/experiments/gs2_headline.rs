//! §VI headline: GS2 layout tuning on 128 processors (Seaborg 8×16).
//!
//! "By changing the data layout, the program execution time was reduced
//! from 55.06s to 16.25s (3.4× faster) without collision mode and from
//! 71.08s to 31.55s (2.3× faster) with collision mode" — for a typical
//! benchmarking run of 10 time steps.

use super::common::{in_band, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_core::strategy::NelderMead;
use ah_gs2::{CollisionModel, Gs2Config, Gs2LayoutApp, Gs2Model};

/// The experiment.
pub struct Gs2Headline;

impl Experiment for Gs2Headline {
    fn id(&self) -> &'static str {
        "gs2_headline"
    }

    fn title(&self) -> &'static str {
        "GS2 headline: layout tuning, 128 processors, with/without collisions"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let model = if quick {
            let mut m = Gs2Model::on_seaborg(16, 8);
            m.nx = 16;
            m.ny = 8;
            m.nl = 16;
            m
        } else {
            Gs2Model::on_seaborg(16, 8)
        };
        let steps = 10;
        let evals = if quick { 30 } else { 80 };

        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        let mut data = Vec::new();
        for (label, collision, seed) in [
            ("without collisions", CollisionModel::None, 128_u64),
            ("with collisions", CollisionModel::Lorentz, 129),
        ] {
            let base = Gs2Config {
                nodes: 8,
                collision,
                ..Gs2Config::paper_default()
            };
            let mut app = Gs2LayoutApp::new(model.clone(), base, steps);
            let out = tune(&mut app, Box::new(NelderMead::default()), evals, seed);
            let speedup = out.speedup();
            speedups.push(speedup);
            rows.push(vec![
                label.to_string(),
                table::secs(out.default_cost),
                table::secs(out.result.best_cost),
                out.result
                    .best_config
                    .choice("layout")
                    .expect("layout present")
                    .to_string(),
                format!("{speedup:.2}x"),
            ]);
            data.push(serde_json::json!({
                "mode": label,
                "default_time": out.default_cost,
                "tuned_time": out.result.best_cost,
                "speedup": speedup,
                "best_layout": out.result.best_config.choice("layout"),
            }));
        }

        let narrative = table::render(
            &[
                "collision mode",
                "lxyes default (s)",
                "tuned (s)",
                "best layout",
                "speedup",
            ],
            &rows,
        );

        let (no_coll, with_coll) = (speedups[0], speedups[1]);
        let no_band = if quick { (1.3, 20.0) } else { (2.0, 5.0) };
        let with_band = if quick { (1.1, 20.0) } else { (1.5, 3.5) };
        let findings = vec![
            Finding::check(
                "speedup without collision mode",
                "3.4x (55.06s -> 16.25s)",
                format!("{no_coll:.2}x"),
                in_band(no_coll, no_band.0, no_band.1),
            ),
            Finding::check(
                "speedup with collision mode",
                "2.3x (71.08s -> 31.55s)",
                format!("{with_coll:.2}x"),
                in_band(with_coll, with_band.0, with_band.1),
            ),
            Finding::check(
                "collision mode narrows the layout gap",
                "2.3x < 3.4x",
                format!("{with_coll:.2}x < {no_coll:.2}x"),
                with_coll < no_coll,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({ "modes": data }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Gs2Headline.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

//! §IV text result: SNES computation distribution with 40,000 grid points
//! on 32 processors → up to 11.5% improvement over the default equal
//! partitioning.

use super::common::{in_band, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_clustersim::{Machine, NetworkModel, NodeSpec};
use ah_petsc::{CavityDistributionApp, DrivenCavity};

/// A 32-processor cluster with two node generations (mild heterogeneity, as
/// in the departmental clusters the paper's PETSc runs used).
fn cluster32() -> Machine {
    let network = NetworkModel::new((1e-6, 2e9), (30e-6, 120e6));
    let mut nodes = Vec::with_capacity(32);
    for i in 0..32 {
        // Two racks of different generations: 16 older (0.8) then 16 newer
        // (1.2) single-CPU nodes.
        let speed = if i < 16 { 0.8 } else { 1.2 };
        nodes.push(NodeSpec::new(1, speed));
    }
    Machine::heterogeneous("mixed 32x1", nodes, network)
}

/// The experiment.
pub struct PetscSnesLarge;

impl Experiment for PetscSnesLarge {
    fn id(&self) -> &'static str {
        "petsc_snes_large"
    }

    fn title(&self) -> &'static str {
        "PETSc SNES at scale: 40,000 grid points, 32 processors (11.5%)"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        // 40,000 points = 20×2,000: strips are split along the long axis so
        // the distribution is fine-grained (~62 rows per processor) — the
        // paper tunes the distribution of grid *points*, not coarse blocks.
        let (nx, ny) = (20, 2000);
        let evals = if quick { 800 } else { 2000 };
        let cavity = DrivenCavity::new(nx, ny, cluster32(), 20);
        let space_log10 = {
            let app = CavityDistributionApp::new(cavity.clone());
            ah_core::offline::ShortRunApp::space(&app)
                .log10_cardinality()
                .unwrap_or(0.0)
        };
        let default = cavity.default_distribution();
        let coords: Vec<f64> = default
            .interior_boundaries()
            .iter()
            .map(|&b| b as f64)
            .collect();
        let mut app = CavityDistributionApp::new(cavity);
        let strategy = Box::new(ah_core::strategy::NelderMead::new(
            ah_core::strategy::NelderMeadOptions {
                start: ah_core::strategy::StartPoint::Coords(coords),
                init_scale: 0.1,
                ..Default::default()
            },
        ));
        let out = tune(&mut app, strategy, evals, 40000);
        let gain = out.improvement_pct();

        let narrative = table::render(
            &[
                "grid points",
                "procs",
                "iterations",
                "default (s)",
                "tuned (s)",
                "improvement",
            ],
            &[vec![
                (nx * ny).to_string(),
                "32".into(),
                out.result.evaluations.to_string(),
                table::secs(out.default_cost),
                table::secs(out.result.best_cost),
                table::pct(gain),
            ]],
        );

        let band = if quick { (1.0, 40.0) } else { (5.0, 25.0) };
        let findings = vec![
            Finding::check(
                "improvement over default partitioning",
                "up to 11.5%",
                table::pct(gain),
                in_band(gain, band.0, band.1),
            ),
            Finding::info(
                "search space",
                "O(10^36) points",
                format!("O(10^{space_log10:.0}) points"),
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "improvement_pct": gain,
                "iterations": out.result.evaluations,
                "log10_space": space_log10,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_improves() {
        let r = PetscSnesLarge.run(&RunCtx::quick(true));
        assert!(
            r.data["improvement_pct"].as_f64().unwrap() > 0.0,
            "{}",
            r.render()
        );
    }
}

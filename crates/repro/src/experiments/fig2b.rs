//! Figure 2(b): SLES matrix-decomposition tuning on a small clustered
//! matrix over four processors.
//!
//! The paper's figure shows the default even 4-way split (solid lines) and
//! the tuned uneven split (dashed lines) that hugs the dense sub-matrices.
//! We regenerate the same artefact: the boundary positions before and after
//! tuning, together with per-partition loads and communication volumes.

use super::common::{nm_from, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_clustersim::{Machine, NetworkModel};
use ah_petsc::tunable::partition_from_config;
use ah_petsc::{SlesDecompositionApp, SlesProblem};
use ah_sparse::gen::{clustered_blocks, ones};
use ah_sparse::RowPartition;

/// Dense-block structure of the Figure 2(a)-style matrix: uneven clusters
/// so the even split cuts through the big ones.
const BLOCKS: [usize; 6] = [30, 110, 25, 60, 95, 80];

/// The experiment.
pub struct Fig2b;

impl Experiment for Fig2b {
    fn id(&self) -> &'static str {
        "fig2b"
    }

    fn title(&self) -> &'static str {
        "Figure 2(b): PETSc SLES matrix decomposition, 4 processors"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let parts = 4;
        let a = clustered_blocks(&BLOCKS, 0.85, 20);
        let n = a.rows();
        let machine = Machine::uniform("petsc 4x1", 4, 1, 1.0, NetworkModel::default());
        let mut problem = SlesProblem::new(a.clone(), ones(n), machine);
        problem.set_iterations(200);
        let mut app = SlesDecompositionApp::new(problem, parts);

        let even = RowPartition::even(n, parts);
        let default_coords: Vec<f64> = even
            .interior_boundaries()
            .iter()
            .map(|&b| b as f64)
            .collect();
        let evals = if quick { 40 } else { 200 };
        let out = tune(&mut app, nm_from(default_coords), evals, 2006);

        let tuned = partition_from_config(&out.result.best_config, n, parts);
        let mut narrative = String::new();
        narrative.push_str(&format!(
            "Matrix: {n}x{n}, dense clusters of rows {BLOCKS:?}\n\n"
        ));
        let row = |label: &str, p: &RowPartition, time: f64| {
            vec![
                label.to_string(),
                format!("{:?}", p.interior_boundaries()),
                format!("{:?}", p.loads(&a)),
                format!("{}", p.total_cut(&a)),
                table::secs(time),
            ]
        };
        narrative.push_str(&table::render(
            &[
                "decomposition",
                "boundaries",
                "nnz per part",
                "cut",
                "sim time (s)",
            ],
            &[
                row("default (even)", &even, out.default_cost),
                row("tuned", &tuned, out.result.best_cost),
            ],
        ));

        let improvement = out.improvement_pct();
        let cut_reduced = tuned.total_cut(&a) < even.total_cut(&a);
        let findings = vec![
            Finding::check(
                "tuned decomposition beats even default",
                "tuned (dashed) better than default (solid)",
                format!("{} improvement", table::pct(improvement)),
                improvement > 0.0,
            ),
            Finding::check(
                "tuned boundaries reduce cross-partition nonzeros",
                "boundaries avoid cutting dense sub-matrices",
                format!("cut {} -> {}", even.total_cut(&a), tuned.total_cut(&a)),
                cut_reduced,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "n": n,
                "default_boundaries": even.interior_boundaries(),
                "tuned_boundaries": tuned.interior_boundaries(),
                "default_time": out.default_cost,
                "tuned_time": out.result.best_cost,
                "improvement_pct": improvement,
                "iterations": out.result.evaluations,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Fig2b.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
        assert!(r.data["improvement_pct"].as_f64().unwrap() > 0.0);
    }
}

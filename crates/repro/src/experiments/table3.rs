//! Table III: GS2 (negrid, ntheta, nodes) tuning for benchmarking runs
//! (10 time steps) on the Linux cluster, for the `lxyes` and `yxles`
//! layouts.
//!
//! Paper rows: `lxyes` default (16,26,32) = 43.7s → tuned (8,22,8) = 18.4s
//! (57.9%, 8 iterations); `yxles` default = 16.4s → tuned (8,22,8) = 14.8s
//! (9.8%, 9 iterations).

use super::common::{in_band, nm_from, tune_with};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_core::offline::OfflineOutcome;
use ah_core::session::SessionOptions;
use ah_gs2::{CollisionModel, Gs2Config, Gs2Model, Gs2ResolutionApp};

/// Run one resolution-tuning campaign; shared with Table IV.
pub fn resolution_campaign(
    layout: &str,
    steps: usize,
    quick: bool,
    seed: u64,
) -> (OfflineOutcome, Gs2ResolutionApp) {
    let model = if quick {
        let mut m = Gs2Model::on_linux_cluster(32);
        m.nx = 16;
        m.ny = 8;
        m.nl = 16;
        m
    } else {
        Gs2Model::on_linux_cluster(32)
    };
    let base = Gs2Config {
        layout: layout.parse().expect("layout parses"),
        negrid: 16,
        ntheta: 26,
        nodes: 32,
        collision: CollisionModel::None,
    };
    let mut app = Gs2ResolutionApp::new(model, base, steps);
    // Budget comparable to the paper's short campaigns; the reported
    // "iterations" figure is the first iteration within 5% of the final
    // best, which is how quickly the gain was actually reached.
    let out = tune_with(
        &mut app,
        nm_from(vec![16.0, 26.0, 32.0]),
        SessionOptions {
            max_evaluations: if quick { 25 } else { 40 },
            seed,
            ..Default::default()
        },
    );
    (out, app)
}

/// Render the Table III/IV shape for two layouts.
pub fn render_rows(results: &[(&str, &OfflineOutcome)]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .flat_map(|(layout, out)| {
            let best = &out.result.best_config;
            let tuned_label = format!(
                "({},{},{})",
                best.int("negrid").expect("negrid"),
                best.int("ntheta").expect("ntheta"),
                best.int("nodes").expect("nodes"),
            );
            let near_best = out
                .result
                .history
                .iterations_to_within(1.05)
                .unwrap_or(out.result.evaluations);
            vec![
                vec![
                    format!("{layout}: default - no tuning (16,26,32)"),
                    "-".to_string(),
                    format!("{}", table::secs(out.default_cost)),
                ],
                vec![
                    format!("{layout}: tuned version {tuned_label}"),
                    near_best.to_string(),
                    format!(
                        "{} ({})",
                        table::secs(out.result.best_cost),
                        table::pct(out.improvement_pct())
                    ),
                ],
            ]
        })
        .collect();
    table::render(
        &[
            "Tuning method (negrid,ntheta,nodes)",
            "Tuning time (iterations)",
            "Tuning result - seconds (improvement %)",
        ],
        &rows,
    )
}

/// The experiment.
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Table III: GS2 tuning result for benchmarking run (10 steps)"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let (out_lx, _) = resolution_campaign("lxyes", 10, quick, 331);
        let (out_yx, _) = resolution_campaign("yxles", 10, quick, 332);
        let narrative = render_rows(&[("lxyes", &out_lx), ("yxles", &out_yx)]);

        let lx_gain = out_lx.improvement_pct();
        let yx_gain = out_yx.improvement_pct();
        let lx_band = if quick { (5.0, 95.0) } else { (30.0, 80.0) };
        let findings = vec![
            Finding::check(
                "lxyes benchmarking improvement",
                "57.9% (43.7s -> 18.4s)",
                table::pct(lx_gain),
                in_band(lx_gain, lx_band.0, lx_band.1),
            ),
            Finding::check(
                "yxles benchmarking improvement (smaller: layout already good)",
                "9.8% (16.4s -> 14.8s)",
                table::pct(yx_gain),
                yx_gain < lx_gain,
            ),
            Finding::check(
                "starting from the better layout still wins overall",
                "tuned yxles 14.8s < tuned lxyes 18.4s",
                format!(
                    "{} vs {}",
                    table::secs(out_yx.result.best_cost),
                    table::secs(out_lx.result.best_cost)
                ),
                out_yx.result.best_cost <= out_lx.result.best_cost * 1.05,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "lxyes": { "default": out_lx.default_cost, "tuned": out_lx.result.best_cost,
                            "improvement_pct": lx_gain },
                "yxles": { "default": out_yx.default_cost, "tuned": out_yx.result.best_cost,
                            "improvement_pct": yx_gain },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Table3.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

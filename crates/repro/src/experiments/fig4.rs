//! Figure 4: POP block-size tuning on 480 processors under six node
//! topologies of the SP-3.
//!
//! The paper's bars show, per topology `A×B` (A nodes × B processors per
//! node), the execution time with the tuned block size and with the default
//! 180×100. Headline shapes: every topology improves (up to ~15%), and no
//! single block size is best for all topologies.

use super::common::{nm_from, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::{chart, table};
use ah_clustersim::machines::sp3_seaborg;
use ah_pop::{OceanGrid, PopBlockApp};
use std::collections::HashSet;

/// The experiment.
pub struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "Figure 4: POP block-size tuning, 480 processors, six topologies"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let (grid, topologies, evals): (OceanGrid, Vec<(usize, usize)>, usize) = if quick {
            (
                OceanGrid::synthetic(360, 240),
                vec![(3, 16), (12, 4), (24, 2)],
                25,
            )
        } else {
            (
                OceanGrid::paper_grid(),
                vec![(30, 16), (48, 10), (60, 8), (80, 6), (120, 4), (240, 2)],
                60,
            )
        };

        let mut rows = Vec::new();
        let mut bars = Vec::new();
        let mut best_blocks = HashSet::new();
        let mut improvements = Vec::new();
        let mut per_topology = Vec::new();
        for (i, &(nodes, ppn)) in topologies.iter().enumerate() {
            let machine = sp3_seaborg(nodes, ppn);
            let steps = 3;
            let mut app = PopBlockApp::new(grid.clone(), machine, steps);
            let out = tune(&mut app, nm_from(vec![180.0, 100.0]), evals, 480 + i as u64);
            let bx = out.result.best_config.int("bx").expect("bx present");
            let by = out.result.best_config.int("by").expect("by present");
            best_blocks.insert((bx, by));
            let gain = out.improvement_pct();
            improvements.push(gain);
            rows.push(vec![
                format!("{nodes}x{ppn}"),
                format!("{bx}x{by}"),
                table::secs(out.result.best_cost),
                table::secs(out.default_cost),
                table::pct(gain),
            ]);
            bars.push((
                format!("{nodes}x{ppn} tuned ({bx}x{by})"),
                out.result.best_cost,
            ));
            bars.push((format!("{nodes}x{ppn} default (180x100)"), out.default_cost));
            per_topology.push(serde_json::json!({
                "topology": format!("{nodes}x{ppn}"),
                "best_block": [bx, by],
                "tuned_time": out.result.best_cost,
                "default_time": out.default_cost,
                "improvement_pct": gain,
            }));
        }

        let narrative = format!(
            "Grid {}x{} over 480 processors; default block 180x100.\n\n{}\n{}",
            grid.nx,
            grid.ny,
            table::render(
                &[
                    "topology",
                    "best block",
                    "tuned (s)",
                    "default (s)",
                    "improvement"
                ],
                &rows,
            ),
            chart::bars(&bars, 40),
        );

        let max_gain = improvements.iter().cloned().fold(0.0, f64::max);
        let all_improve = improvements.iter().all(|&g| g >= -0.01);
        let findings = vec![
            Finding::check(
                "tuned block size beats default for some topology",
                "up to 15% faster than 180x100",
                format!("max improvement {}", table::pct(max_gain)),
                max_gain >= 4.0,
            ),
            Finding::check(
                "no topology regresses under tuning",
                "tuned bars never taller than default bars",
                format!(
                    "min improvement {}",
                    table::pct(improvements.iter().cloned().fold(f64::INFINITY, f64::min))
                ),
                all_improve,
            ),
            if quick {
                // Three shrunken topologies can legitimately share a best
                // block; the full six-topology run enforces divergence.
                Finding::info(
                    "no single block size is best for all topologies",
                    "best block differs across topologies",
                    format!("{} distinct best blocks (quick mode)", best_blocks.len()),
                )
            } else {
                Finding::check(
                    "no single block size is best for all topologies",
                    "best block differs across topologies",
                    format!("{} distinct best blocks", best_blocks.len()),
                    best_blocks.len() >= 2,
                )
            },
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({ "topologies": per_topology }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Fig4.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

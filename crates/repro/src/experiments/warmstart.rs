//! Warm-started re-tuning through the persistent performance database
//! (paper §II: "a database of past performance results" — known
//! configurations are never re-measured).
//!
//! Two identical tuning campaigns run back to back against one store file:
//! the cold campaign measures everything and populates the database; the
//! warm campaign asks the same questions and the server answers them from
//! the database without dispatching trials. The checks are the paper's
//! promise made precise: the warm run re-measures (almost) nothing and
//! still lands on the bit-identical result.
//!
//! With `repro warmstart --store PATH` the database persists across
//! process invocations, so a *second* invocation starts warm — its "cold"
//! campaign already hits the store (CI exercises exactly this).

use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use ah_core::param::Param;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::{HarmonyServer, ServerConfig};
use ah_core::session::SessionOptions;
use ah_core::space::Configuration;
use ah_core::store::SharedStore;
use ah_core::telemetry::{Counter, Telemetry};
use std::path::{Path, PathBuf};

/// The experiment.
pub struct Warmstart;

/// Application label campaigns tune under (the store key's first half).
const APP: &str = "warmstart-stencil";

/// Deterministic synthetic objective: costs must be functions of the
/// configuration alone for stored costs to be interchangeable with fresh
/// measurements.
fn cost_of(cfg: &Configuration) -> f64 {
    let bx = cfg.int("bx").unwrap() as f64;
    let by = cfg.int("by").unwrap() as f64;
    10.0 + 0.3 * (bx - 37.0).powi(2) + 0.7 * (by - 11.0).powi(2) + 0.01 * bx * by
}

struct Campaign {
    measured: usize,
    store_hits: u64,
    evaluations: usize,
    best_key: Vec<i64>,
    best_cost: f64,
    trajectory: Vec<(usize, u64)>,
}

fn campaign(path: &Path, evals: usize) -> Campaign {
    let telemetry = Telemetry::enabled();
    let store = SharedStore::open_with(path, telemetry.clone()).expect("open store");
    let server = HarmonyServer::start_with_config(ServerConfig {
        shards: 2,
        store: Some(store.clone()),
        ..Default::default()
    });
    let client = server.connect(APP).expect("connect");
    client.add_param(Param::int("bx", 1, 96, 1)).expect("param");
    client.add_param(Param::int("by", 1, 96, 1)).expect("param");
    client
        .seal(
            SessionOptions {
                max_evaluations: evals,
                seed: 4242,
                ..Default::default()
            },
            StrategyKind::NelderMead,
        )
        .expect("seal");
    let mut measured = 0usize;
    loop {
        let (trials, finished) = client.fetch_batch(4).expect("fetch_batch");
        if finished {
            break;
        }
        let reports: Vec<TrialReport> = trials
            .iter()
            .map(|t| {
                measured += 1;
                TrialReport {
                    iteration: t.iteration,
                    cost: cost_of(&t.config),
                    wall_time: 1.0,
                }
            })
            .collect();
        client.report_batch(reports).expect("report_batch");
    }
    let (history, _) = client.history().expect("history");
    let (best_config, best_cost) = client.best().expect("best").expect("nonempty");
    server.shutdown();
    store.flush().expect("flush store");
    Campaign {
        measured,
        store_hits: telemetry.counter(Counter::StoreHits),
        evaluations: history.evaluations().len(),
        best_key: best_config.cache_key(),
        best_cost,
        trajectory: history
            .evaluations()
            .iter()
            .map(|e| (e.iteration, e.cost.to_bits()))
            .collect(),
    }
}

impl Experiment for Warmstart {
    fn id(&self) -> &'static str {
        "warmstart"
    }

    fn title(&self) -> &'static str {
        "Performance database: warm-started re-tuning serves cached measurements"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let evals = if quick { 60 } else { 200 };
        // With an explicit --store the database persists across
        // invocations (the file is never cleared here); otherwise use a
        // throwaway path and start genuinely cold.
        let path: PathBuf = match &ctx.store {
            Some(p) => p.clone(),
            None => {
                let p =
                    std::env::temp_dir().join(format!("ah-warmstart-{}.store", std::process::id()));
                let _ = std::fs::remove_file(&p);
                p
            }
        };
        let cold = campaign(&path, evals);
        let warm = campaign(&path, evals);

        let served = warm.evaluations.saturating_sub(warm.measured);
        let served_fraction = served as f64 / warm.evaluations.max(1) as f64;
        let identical = cold.best_key == warm.best_key
            && cold.best_cost.to_bits() == warm.best_cost.to_bits()
            && cold.trajectory == warm.trajectory;

        let narrative = format!(
            "App `{APP}`, {evals}-evaluation Nelder-Mead campaigns, store: {}\n\
             cold: measured {}/{} evaluations ({} store hits)\n\
             warm: measured {}/{} evaluations ({} store hits, {:.1}% served)\n",
            path.display(),
            cold.measured,
            cold.evaluations,
            cold.store_hits,
            warm.measured,
            warm.evaluations,
            warm.store_hits,
            served_fraction * 100.0,
        );
        let findings = vec![
            Finding::check(
                "warm run is served from the database",
                "known configurations are not re-measured (§II)",
                format!("{:.1}% of evaluations served", served_fraction * 100.0),
                served_fraction >= 0.9,
            ),
            Finding::check(
                "stored costs replay the cold trajectory",
                "bit-identical best point and history",
                if identical { "identical" } else { "diverged" }.to_string(),
                identical,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                // Deterministic across invocations (CI byte-compares it);
                // volatile counters live outside this object.
                "result": {
                    "evaluations": cold.evaluations,
                    "best_cost_bits": cold.best_cost.to_bits(),
                    "best_cost": cold.best_cost,
                    "best_config_key": cold.best_key,
                    "trajectory": cold.trajectory.iter().map(|(i, bits)| {
                        serde_json::json!({"iteration": i, "cost_bits": bits})
                    }).collect::<Vec<_>>(),
                },
                "cold_store_hits": cold.store_hits,
                "warm_store_hits": warm.store_hits,
                "warm_served_fraction": served_fraction,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Warmstart.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.data["cold_store_hits"].as_u64(), Some(0));
        assert!(r.data["warm_store_hits"].as_u64().unwrap() > 0);
    }

    #[test]
    fn explicit_store_path_persists_between_runs() {
        let path =
            std::env::temp_dir().join(format!("ah-warmstart-persist-{}.store", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ctx = RunCtx {
            quick: true,
            store: Some(path),
        };
        let first = Warmstart.run(&ctx);
        let second = Warmstart.run(&ctx);
        // Second invocation starts warm: even its first campaign hits.
        assert_eq!(first.data["cold_store_hits"].as_u64(), Some(0));
        assert!(second.data["cold_store_hits"].as_u64().unwrap() > 0);
        assert_eq!(first.data["result"], second.data["result"]);
    }
}

//! Fault-tolerant tuning: crashes, lost reports and stragglers in the
//! worker pool leave the search trajectory bit-identical.
//!
//! The paper's tuning runs occupied shared clusters for hours; on such
//! machines workers die and reports go missing. This experiment injects a
//! seeded fault schedule ([`FaultPlan`]) into a pool of workers sharing one
//! tuning session, and checks the server-side requeue/eviction machinery
//! preserves the *exact* search trajectory of a fault-free serial client:
//! costs are deterministic functions of the configuration and reports are
//! flushed in proposal order, so who measures a trial — or how many times —
//! cannot change what the search explores.

use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_clustersim::{FaultKind, FaultPlan};
use ah_core::prelude::*;
use ah_core::server::protocol::TrialReport;
use ah_core::server::{HarmonyClient, ServerConfig};
use std::collections::{HashMap, HashSet};

/// The experiment.
pub struct Fault;

fn declare(c: &HarmonyClient) {
    c.add_param(Param::int("rows", 1, 64, 1)).unwrap();
    c.add_param(Param::int("cols", 1, 64, 1)).unwrap();
}

/// Deterministic stand-in cost: a POP-like block-size bowl.
fn objective(cfg: &Configuration) -> f64 {
    let r = cfg.int("rows").expect("rows") as f64;
    let c = cfg.int("cols").expect("cols") as f64;
    (r - 24.0).powi(2) * 0.7 + (c - 17.0).powi(2) + (r * c - 400.0).abs() * 0.01
}

fn options(evals: usize, seed: u64) -> SessionOptions {
    SessionOptions {
        max_evaluations: evals,
        seed,
        ..Default::default()
    }
}

fn serial_history(strategy: StrategyKind, evals: usize, seed: u64) -> History {
    let server = HarmonyServer::start_with(1);
    let c = server.connect("fault-serial").unwrap();
    declare(&c);
    c.seal(options(evals, seed), strategy).unwrap();
    loop {
        let f = c.fetch().unwrap();
        if f.finished {
            break;
        }
        c.report(objective(&f.config)).unwrap();
    }
    let (h, _) = c.history().unwrap();
    server.shutdown();
    h
}

pub(crate) struct FaultyOutcome {
    pub(crate) history: History,
    pub(crate) crashes: usize,
    pub(crate) lost: usize,
    pub(crate) stragglers: usize,
    pub(crate) rejoins: usize,
    /// The run's telemetry handle — counters and the full event trace of
    /// exactly this faulted campaign.
    pub(crate) telemetry: Telemetry,
    /// The sampled time-series ring, when the run was observed or sampling
    /// was requested explicitly.
    pub(crate) timeseries: Option<ah_core::telemetry::timeseries::TimeSeries>,
}

/// Live-observation knobs for [`faulty_history_with`]: where to serve the
/// observability endpoint, how long to stall between ticks (stretches the
/// campaign so an external poller can watch it mid-flight), and how long to
/// keep serving after the search finishes.
#[derive(Default)]
pub(crate) struct ObserveOpts {
    pub(crate) addr: Option<String>,
    pub(crate) tick_delay: Option<std::time::Duration>,
    pub(crate) linger: Option<std::time::Duration>,
    /// Force time-series sampling at this cadence even without an HTTP
    /// address (tests compare window deltas against the driver's tally).
    pub(crate) sample_interval: Option<std::time::Duration>,
}

pub(crate) fn faulty_history(
    strategy: StrategyKind,
    evals: usize,
    seed: u64,
    plan: &FaultPlan,
    workers: usize,
) -> FaultyOutcome {
    faulty_history_with(
        strategy,
        evals,
        seed,
        plan,
        workers,
        &ObserveOpts::default(),
    )
}

pub(crate) fn faulty_history_with(
    strategy: StrategyKind,
    evals: usize,
    seed: u64,
    plan: &FaultPlan,
    workers: usize,
    observe: &ObserveOpts,
) -> FaultyOutcome {
    let telemetry = Telemetry::enabled();
    // A live observer gets the full fleet-observability plane: a sampled
    // time-series ring (fast cadence — observed campaigns are short) and
    // the default SLO rule set behind `/healthz`.
    let series = (observe.addr.is_some() || observe.sample_interval.is_some())
        .then(|| ah_core::telemetry::timeseries::TimeSeries::new(telemetry.clone()));
    let server = HarmonyServer::start_with_config(ServerConfig {
        shards: 2,
        telemetry: telemetry.clone(),
        timeseries: series.clone(),
        slo_rules: ah_core::telemetry::slo::default_rules(),
        ..Default::default()
    });
    let sampler = series.as_ref().map(|s| {
        // One synchronous pre-campaign sample pins the window's left edge
        // at zero fault counters before any churn starts.
        s.sample_now();
        s.start_sampler(
            observe
                .sample_interval
                .unwrap_or(std::time::Duration::from_millis(50)),
        )
    });
    let observer = observe.addr.as_deref().map(|addr| {
        let handle = server.observe(addr).unwrap_or_else(|e| {
            eprintln!("cannot bind observer on {addr}: {e}");
            std::process::exit(2);
        });
        // The bound address on stdout is the contract with pollers
        // (`repro watch`, the CI smoke job): port 0 resolves here.
        println!("observe: http://{}", handle.addr());
        handle
    });
    let founder = server.connect("fault-pool").unwrap();
    declare(&founder);
    founder.seal(options(evals, seed), strategy).unwrap();
    let session = founder.session_id();
    let mut members: Vec<HarmonyClient> = (0..workers)
        .map(|_| server.attach(session).unwrap())
        .collect();

    let mut held: Vec<(u32, TrialReport)> = Vec::new();
    let mut faulted: HashSet<usize> = HashSet::new();
    // Measure spans, one per in-flight trial, keyed by iteration token:
    // begun on fetch, ended on report, faulted on crash/lost-report. The
    // Chrome trace of the campaign shows every measurement slice per
    // worker track, faults annotated.
    let mut measuring: HashMap<usize, SpanToken> = HashMap::new();
    let (mut crashes, mut lost, mut stragglers, mut rejoins) = (0, 0, 0, 0);
    let mut finished = false;
    while !finished {
        if let Some(delay) = observe.tick_delay {
            std::thread::sleep(delay);
        }
        for h in held.iter_mut() {
            h.0 -= 1;
        }
        let mut due = Vec::new();
        held.retain_mut(|h| {
            if h.0 == 0 {
                due.push(h.1.clone());
                false
            } else {
                true
            }
        });
        if !due.is_empty() {
            for r in &due {
                if let Some(span) = measuring.remove(&r.iteration) {
                    telemetry.span_end(span);
                }
            }
            founder.report_batch(due).unwrap();
        }
        for (worker, member) in members.iter_mut().enumerate() {
            let (trials, fin) = member.fetch_batch(1).unwrap();
            if fin {
                finished = true;
                break;
            }
            let Some(t) = trials.into_iter().next() else {
                continue;
            };
            if held.iter().any(|(_, r)| r.iteration == t.iteration) {
                continue; // still "measuring" its straggling trial
            }
            measuring.entry(t.iteration).or_insert_with(|| {
                telemetry.span_begin(SpanKind::Measure, t.iteration, "worker", worker as u64)
            });
            let report = TrialReport {
                iteration: t.iteration,
                cost: objective(&t.config),
                wall_time: objective(&t.config),
            };
            let fault = if faulted.insert(t.iteration) {
                plan.at_observed(t.iteration as u64, &telemetry)
            } else {
                FaultKind::None
            };
            match fault {
                FaultKind::None => {
                    if let Some(span) = measuring.remove(&t.iteration) {
                        telemetry.span_end(span);
                    }
                    member.report_batch(vec![report]).unwrap();
                }
                FaultKind::Crash => {
                    crashes += 1;
                    rejoins += 1;
                    if let Some(span) = measuring.remove(&t.iteration) {
                        telemetry.span_fault(span, "crash");
                    }
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::LostReport => {
                    lost += 1;
                    rejoins += 1;
                    if let Some(span) = measuring.remove(&t.iteration) {
                        telemetry.span_fault(span, "lost_report");
                    }
                    held.push((4, report));
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::Straggler { factor } => {
                    stragglers += 1;
                    held.push(((factor as u32).clamp(2, 8), report));
                }
            }
        }
    }
    // The session can finish while stragglers still hold reports the
    // search no longer needs; their measurements never complete.
    for (_, span) in measuring.drain() {
        telemetry.span_fault(span, "campaign_finished");
    }
    let (history, _) = founder.history().unwrap();
    if let Some(handle) = observer {
        // Final /status (stop reason, converged simplex) stays available
        // for a grace period before the plane goes away.
        if let Some(linger) = observe.linger {
            std::thread::sleep(linger);
        }
        handle.stop();
    }
    if let Some(mut sampler) = sampler {
        sampler.stop();
    }
    if let Some(series) = &series {
        // Final synchronous sample: the window's right edge sees the whole
        // campaign regardless of where the sampler thread stopped.
        series.sample_now();
    }
    server.shutdown();
    FaultyOutcome {
        history,
        crashes,
        lost,
        stragglers,
        rejoins,
        telemetry,
        timeseries: series,
    }
}

fn identical(a: &History, b: &History) -> bool {
    serde_json::to_string(a).unwrap() == serde_json::to_string(b).unwrap()
}

impl Experiment for Fault {
    fn id(&self) -> &'static str {
        "fault"
    }

    fn title(&self) -> &'static str {
        "Fault tolerance: faulty worker pools keep the exact search trajectory"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let evals = if quick { 40 } else { 120 };
        let workers = 3;
        let plan = FaultPlan::new(2026, 0.12, 0.08, 0.18);

        let mut rows = Vec::new();
        let mut all_identical = true;
        let mut total_faults = 0usize;
        let mut total_rejoins = 0usize;
        let mut telemetry_agrees = true;
        let mut per_strategy = Vec::new();
        for (label, strategy, seed) in [
            ("random", StrategyKind::Random, 61_u64),
            ("nelder-mead", StrategyKind::NelderMead, 62),
            ("pro", StrategyKind::Pro, 63),
        ] {
            let want = serial_history(strategy.clone(), evals, seed);
            let got = faulty_history(strategy.clone(), evals, seed, &plan, workers);
            let same = identical(&want, &got.history);
            all_identical &= same;
            let faults = got.crashes + got.lost + got.stragglers;
            total_faults += faults;
            total_rejoins += got.rejoins;
            rows.push(vec![
                label.to_string(),
                want.len().to_string(),
                got.crashes.to_string(),
                got.lost.to_string(),
                got.stragglers.to_string(),
                got.rejoins.to_string(),
                if same { "bit-identical" } else { "DIVERGED" }.to_string(),
            ]);
            // Cross-check: the observability layer must agree with the
            // driver's own tally of what it injected and what the server
            // reported back.
            // The history holds fresh evaluations *and* cache-replayed
            // duplicates (a strategy revisiting a configuration), so the
            // two counters together must account for every entry.
            let t = &got.telemetry;
            let accounted = t.counter(Counter::TrialsReported) + t.counter(Counter::CacheReplays);
            let agrees = t.counter(Counter::FaultsCrash) == got.crashes as u64
                && t.counter(Counter::FaultsLostReport) == got.lost as u64
                && t.counter(Counter::FaultsStraggler) == got.stragglers as u64
                && accounted == want.len() as u64;
            if !agrees {
                eprintln!(
                    "fault[{label}]: telemetry crash={}/{} lost={}/{} straggler={}/{} \
                     reported+replayed={}/{} (counter/driver)",
                    t.counter(Counter::FaultsCrash),
                    got.crashes,
                    t.counter(Counter::FaultsLostReport),
                    got.lost,
                    t.counter(Counter::FaultsStraggler),
                    got.stragglers,
                    accounted,
                    want.len(),
                );
            }
            telemetry_agrees &= agrees;
            per_strategy.push(serde_json::json!({
                "strategy": label,
                "evaluations": want.len(),
                "crashes": got.crashes,
                "lost_reports": got.lost,
                "stragglers": got.stragglers,
                "rejoins": got.rejoins,
                "trajectory_identical": same,
                "telemetry_counters": t.counters_json(),
            }));
        }

        let narrative = format!(
            "{workers} workers share each session; fault schedule seed {}, \
             p(crash)={}, p(lost)={}, p(straggler)={}\n\n{}",
            plan.seed,
            plan.crash_prob,
            plan.lost_prob,
            plan.straggler_prob,
            table::render(
                &[
                    "strategy",
                    "evals",
                    "crashes",
                    "lost",
                    "stragglers",
                    "rejoins",
                    "trajectory"
                ],
                &rows,
            )
        );

        let findings = vec![
            Finding::check(
                "trajectory under faults",
                "bit-identical to fault-free serial run",
                if all_identical {
                    "bit-identical for random, nelder-mead, pro".into()
                } else {
                    "diverged".to_string()
                },
                all_identical,
            ),
            Finding::check(
                "fault schedule actually fires",
                "> 0 injected faults",
                format!("{total_faults} faults, {total_rejoins} worker rejoins"),
                total_faults > 0 && total_rejoins > 0,
            ),
            Finding::check(
                "telemetry agrees with the driver",
                "per-kind fault counters and reported-trial counts match",
                if telemetry_agrees {
                    "crash/lost/straggler counters and reported totals match".into()
                } else {
                    "counter totals diverged from the driver's tally".to_string()
                },
                telemetry_agrees,
            ),
            Finding::info(
                "recovery mechanism",
                "requeue by iteration token, dedupe stale duplicates",
                "leave/eviction requeues; duplicates ignored via issued-high watermark",
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "workers": workers,
                "evaluations": evals,
                "fault_plan": {
                    "seed": plan.seed,
                    "crash_prob": plan.crash_prob,
                    "lost_prob": plan.lost_prob,
                    "straggler_prob": plan.straggler_prob,
                },
                "strategies": per_strategy,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde_json::Value;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Fault.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }

    proptest! {
        // Each case is a whole multi-worker campaign; a handful of seeded
        // schedules is plenty to exercise every fault arm.
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Span pairing is total under any fault schedule: every begun
        /// span ends exactly once (normally or with a fault cause), and
        /// the Chrome export round-trips as JSON with per-track monotonic
        /// timestamps.
        #[test]
        fn span_pairing_survives_any_fault_schedule(
            seed in 1u64..10_000,
            crash in 0.0..0.25f64,
            lost in 0.0..0.2f64,
            straggler in 0.0..0.3f64,
        ) {
            let plan = FaultPlan::new(seed, crash, lost, straggler);
            let got = faulty_history(StrategyKind::NelderMead, 25, seed, &plan, 3);
            let t = &got.telemetry;

            // Every begin was closed, and closed exactly once (unique ids).
            prop_assert_eq!(t.open_spans(), 0);
            let spans = t.spans();
            let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), spans.len());
            // Faulted measurements carry their cause.
            for s in &spans {
                if let Some(cause) = s.cause {
                    prop_assert!(
                        ["crash", "lost_report", "campaign_finished"].contains(&cause),
                        "unexpected fault cause {cause}"
                    );
                }
            }

            // Chrome export round-trips and is per-track monotonic.
            let text = serde_json::to_string(&t.chrome_trace()).unwrap();
            let doc: Value = serde_json::parse(&text).unwrap();
            let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
            let mut last_ts: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            let mut slices = 0usize;
            for e in events {
                if e.get("ph").and_then(Value::as_str) != Some("X") {
                    continue;
                }
                slices += 1;
                let tid = e.get("tid").and_then(Value::as_u64).unwrap();
                let ts = e.get("ts").and_then(Value::as_u64).unwrap();
                if let Some(prev) = last_ts.insert(tid, ts) {
                    prop_assert!(
                        ts >= prev,
                        "track {tid} went backwards: {prev} -> {ts}"
                    );
                }
            }
            prop_assert_eq!(slices, spans.len());
        }

        /// The sampled time-series agrees with the driver's own books
        /// under churn: fault-counter deltas over a window spanning the
        /// whole campaign equal the crash/lost/straggler tallies the
        /// driver counted by hand, and any narrower window is bounded by
        /// them. The sampler runs concurrently with the campaign, so this
        /// also shakes out races between sampling and counter updates.
        #[test]
        fn sampler_window_deltas_match_fault_tally(
            seed in 1u64..10_000,
            crash in 0.0..0.25f64,
            lost in 0.0..0.2f64,
            straggler in 0.0..0.3f64,
            narrow_us in 1u64..50_000,
        ) {
            use ah_core::telemetry::Counter;
            let plan = FaultPlan::new(seed, crash, lost, straggler);
            let opts = ObserveOpts {
                sample_interval: Some(std::time::Duration::from_millis(5)),
                ..Default::default()
            };
            let got =
                faulty_history_with(StrategyKind::NelderMead, 25, seed, &plan, 3, &opts);
            let series = got.timeseries.as_ref().unwrap();
            // The ring must not have wrapped, or the pre-campaign sample
            // (the window's zero baseline) is gone.
            prop_assert!(
                series.len() < ah_core::telemetry::timeseries::DEFAULT_RING_CAPACITY,
                "ring wrapped: {} samples",
                series.len()
            );
            let delta_of = |w: &ah_core::telemetry::timeseries::WindowStats, c: Counter| {
                w.counter_deltas
                    .iter()
                    .find(|(n, _)| *n == c.name())
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            let tally = [
                (Counter::FaultsCrash, got.crashes as u64),
                (Counter::FaultsLostReport, got.lost as u64),
                (Counter::FaultsStraggler, got.stragglers as u64),
            ];
            let full = series
                .window(std::time::Duration::from_secs(1_000_000))
                .unwrap();
            for (c, want) in tally {
                let d = delta_of(&full, c);
                prop_assert!(d == want, "counter {}: delta {d} != tally {want}", c.name());
            }
            if let Some(narrow) = series.window(std::time::Duration::from_micros(narrow_us)) {
                for (c, want) in tally {
                    let d = delta_of(&narrow, c);
                    prop_assert!(
                        d <= want,
                        "narrow window {} delta {d} exceeds tally {want}",
                        c.name()
                    );
                }
            }
        }
    }
}

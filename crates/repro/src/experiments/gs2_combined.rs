//! §VI conclusion: "we applied two different techniques to tuning GS2:
//! data distribution and parameters manipulation. Taken together these two
//! techniques reduced the runtime of GS2 by a factor of 5.1."
//!
//! We tune the data layout and the `(negrid, ntheta, nodes)` resolution
//! parameters *jointly* from the shipped default (`lxyes`, 16, 26, full
//! machine) and compare the combined speedup against each technique alone.

use super::common::{in_band, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_core::strategy::NelderMead;
use ah_gs2::{CollisionModel, Gs2CombinedApp, Gs2Config, Gs2LayoutApp, Gs2Model, Gs2ResolutionApp};

/// The experiment.
pub struct Gs2Combined;

impl Experiment for Gs2Combined {
    fn id(&self) -> &'static str {
        "gs2_combined"
    }

    fn title(&self) -> &'static str {
        "GS2 combined: layout + parameter tuning together (5.1x)"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let model = if quick {
            let mut m = Gs2Model::on_seaborg(16, 8);
            m.nx = 16;
            m.ny = 8;
            m.nl = 16;
            m
        } else {
            Gs2Model::on_seaborg(16, 8)
        };
        let base = Gs2Config {
            nodes: 8,
            collision: CollisionModel::None,
            ..Gs2Config::paper_default()
        };
        let steps = 10;

        // Technique 1: layout only.
        let mut layout_app = Gs2LayoutApp::new(model.clone(), base, steps);
        let layout_out = tune(
            &mut layout_app,
            Box::new(NelderMead::default()),
            if quick { 30 } else { 80 },
            511,
        );

        // Technique 2: resolution only (at the default layout).
        let mut res_app = Gs2ResolutionApp::new(model.clone(), base, steps);
        res_app.nodes_range = (1, 16);
        let res_out = tune(
            &mut res_app,
            Box::new(NelderMead::default()),
            if quick { 25 } else { 40 },
            512,
        );

        // Both together.
        let mut combined_app = Gs2CombinedApp::new(model, base, steps);
        combined_app.nodes_range = (1, 16);
        let combined_out = tune(
            &mut combined_app,
            Box::new(NelderMead::default()),
            if quick { 50 } else { 120 },
            513,
        );

        let narrative = table::render(
            &["technique", "default (s)", "tuned (s)", "speedup"],
            &[
                vec![
                    "data layout only".into(),
                    table::secs(layout_out.default_cost),
                    table::secs(layout_out.result.best_cost),
                    format!("{:.2}x", layout_out.speedup()),
                ],
                vec![
                    "parameters only".into(),
                    table::secs(res_out.default_cost),
                    table::secs(res_out.result.best_cost),
                    format!("{:.2}x", res_out.speedup()),
                ],
                vec![
                    "combined".into(),
                    table::secs(combined_out.default_cost),
                    table::secs(combined_out.result.best_cost),
                    format!("{:.2}x", combined_out.speedup()),
                ],
            ],
        );

        let combined = combined_out.speedup();
        let layout_only = layout_out.speedup();
        let res_only = res_out.speedup();
        let band = if quick { (1.5, 30.0) } else { (3.5, 9.0) };
        let findings = vec![
            Finding::check(
                "combined speedup",
                "5.1x",
                format!("{combined:.2}x"),
                in_band(combined, band.0, band.1),
            ),
            Finding::check(
                "combined beats each technique alone",
                "two techniques compose",
                format!("{combined:.2}x vs layout {layout_only:.2}x, parameters {res_only:.2}x"),
                combined >= layout_only * 0.98 && combined >= res_only * 0.98,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "combined_speedup": combined,
                "layout_speedup": layout_only,
                "resolution_speedup": res_only,
                "best_config": format!("{}", combined_out.result.best_config),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Gs2Combined.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

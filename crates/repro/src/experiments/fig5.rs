//! Figure 5: GS2 layout tuning across environments.
//!
//! The paper compares data layouts on Seaborg 16×8, Seaborg 8×16, and a
//! Linux cluster 64×2 (A nodes × B processors per node). When the data can
//! be aligned with the topology, the right layout (`yxles`, `yxels`) beats
//! the default `lxyes` significantly.

use super::common::tune;
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::{chart, table};
use ah_core::strategy::NelderMead;
use ah_gs2::{CollisionModel, Gs2Config, Gs2LayoutApp, Gs2Model, Layout};

/// The experiment.
pub struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Figure 5: GS2 layout tuning in different environments"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        // (label, model, nodes used)
        let environments: Vec<(&str, Gs2Model, usize)> = vec![
            ("seaborg 16x8", Gs2Model::on_seaborg(8, 16), 16),
            ("seaborg 8x16", Gs2Model::on_seaborg(16, 8), 8),
            ("linux 64x2", Gs2Model::on_linux_cluster(64), 64),
        ];
        let layouts: Vec<Layout> = if quick {
            vec![
                "lxyes".parse().expect("layout"),
                "yxles".parse().expect("layout"),
                "yxels".parse().expect("layout"),
            ]
        } else {
            Layout::paper_candidates()
        };
        let steps = 10;

        let mut bars = Vec::new();
        let mut rows = Vec::new();
        let mut per_env = Vec::new();
        let mut default_beaten_everywhere = true;
        let mut harmony_found_best_everywhere = true;
        for (i, (label, model, nodes)) in environments.iter().enumerate() {
            let base = Gs2Config {
                nodes: *nodes,
                collision: CollisionModel::None,
                ..Gs2Config::paper_default()
            };
            let app = Gs2LayoutApp::new(model.clone(), base, steps);
            let mut times: Vec<(String, f64)> = layouts
                .iter()
                .map(|&l| (l.to_string(), app.time_of(l)))
                .collect();
            for (l, t) in &times {
                bars.push((format!("{label} {l}"), *t));
            }
            let default_time = times
                .iter()
                .find(|(l, _)| l == "lxyes")
                .expect("default layout in menu")
                .1;
            times.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
            let (best_layout, best_time) = times[0].clone();
            if best_layout == "lxyes" {
                default_beaten_everywhere = false;
            }
            // Run Harmony itself over the full 120-layout menu and check it
            // finds a layout at least as good as the curated candidates.
            let mut tune_app = Gs2LayoutApp::new(model.clone(), base, steps);
            let out = tune(
                &mut tune_app,
                Box::new(NelderMead::default()),
                if quick { 25 } else { 60 },
                550 + i as u64,
            );
            if out.result.best_cost > best_time * 1.02 {
                harmony_found_best_everywhere = false;
            }
            rows.push(vec![
                label.to_string(),
                best_layout.clone(),
                table::secs(best_time),
                table::secs(default_time),
                format!("{:.2}x", default_time / best_time),
                format!(
                    "{} ({})",
                    out.result.best_config.choice("layout").expect("layout"),
                    table::secs(out.result.best_cost)
                ),
            ]);
            per_env.push(serde_json::json!({
                "environment": label,
                "best_layout": best_layout,
                "best_time": best_time,
                "default_time": default_time,
                "harmony_layout": out.result.best_config.choice("layout"),
                "harmony_time": out.result.best_cost,
            }));
        }

        let narrative = format!(
            "{}\n{}",
            table::render(
                &[
                    "environment",
                    "best layout",
                    "best (s)",
                    "lxyes default (s)",
                    "speedup",
                    "harmony pick (120 layouts)",
                ],
                &rows,
            ),
            chart::bars(&bars, 40),
        );

        let speedups: Vec<f64> = per_env
            .iter()
            .map(|e| {
                e["default_time"].as_f64().expect("time") / e["best_time"].as_f64().expect("time")
            })
            .collect();
        let max_speedup = speedups.iter().cloned().fold(0.0, f64::max);
        let findings = vec![
            Finding::check(
                "right layout beats default lxyes on aligned topologies",
                "yxles/yxels significantly faster",
                format!(
                    "best layouts: {rows:?}",
                    rows = rows.iter().map(|r| r[1].clone()).collect::<Vec<_>>()
                ),
                default_beaten_everywhere,
            ),
            Finding::check(
                "layout choice matters a lot",
                "multiple-x gaps on aligned topologies",
                format!("max speedup {max_speedup:.2}x"),
                max_speedup > 1.5,
            ),
            Finding::check(
                "Harmony's search over all 120 layouts matches the curated best",
                "tuning recommends the layouts the GS2 team adopted",
                format!("matched in all environments: {harmony_found_best_everywhere}"),
                harmony_found_best_everywhere,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({ "environments": per_env }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Fig5.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

//! Table I: POP parameter changes through the first 12 tuning iterations
//! on 32 processors (8 nodes × 4), with a 12.1% improvement after trying
//! just 12 configurations.
//!
//! The paper's table lists, per iteration, only the parameter whose value
//! changed. We regenerate the analogous artefact from the session history:
//! the chain of best-so-far configurations with the parameters that changed
//! at each improvement step.

use super::common::{nm_from, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_clustersim::machines::hockney;
use ah_core::offline::OfflineOutcome;
use ah_pop::{OceanGrid, PopParamApp};

/// Run the shared Table I/II campaign (27 iterations on 32 processors).
pub fn param_campaign(quick: bool) -> (OfflineOutcome, PopParamApp) {
    let grid = if quick {
        OceanGrid::synthetic(360, 240)
    } else {
        OceanGrid::paper_grid()
    };
    let machine = hockney(8, 4);
    let mut app = PopParamApp::new(grid, machine, (180, 100), 3);
    let default_coords = ah_pop::PopParams::default().to_coords();
    let out = tune(&mut app, nm_from(default_coords), 27, 3201);
    (out, app)
}

/// The experiment.
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table I: POP parameter changes through iterations (32 processors)"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let (out, _app) = param_campaign(quick);
        // Table I semantics (paper footnote): each row shows the parameters
        // whose values changed relative to the previous iteration's
        // configuration.
        let trace = out.result.history.step_change_trace();
        let mut rows = vec![vec![
            "0".to_string(),
            "(use default configuration)".to_string(),
            String::new(),
            String::new(),
        ]];
        let mut sparse_steps = 0;
        for (step, row) in trace.iter().take(12).enumerate() {
            if row.changes.len() <= 2 && !row.changes.is_empty() {
                sparse_steps += 1;
            }
            for (k, c) in row.changes.iter().enumerate() {
                rows.push(vec![
                    if k == 0 {
                        (step + 1).to_string()
                    } else {
                        String::new()
                    },
                    c.name.clone(),
                    c.from.clone(),
                    c.to.clone(),
                ]);
            }
        }
        let gain12 = out.improvement_pct_after(12);
        let narrative = format!(
            "{}\nImprovement after 12 configurations: {}\n",
            table::render(&["Iteration", "Parameter", "Change from", "To"], &rows),
            table::pct(gain12),
        );

        let band = if quick { (1.0, 40.0) } else { (4.0, 25.0) };
        let findings = vec![
            Finding::check(
                "improvement after 12 configurations",
                "12.1%",
                table::pct(gain12),
                super::common::in_band(gain12, band.0, band.1),
            ),
            Finding::check(
                "iterations change only a few parameters at a time",
                "one parameter changed per iteration",
                format!("{sparse_steps} of the first 12 iterations changed <=2 parameters"),
                sparse_steps >= 6,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "improvement_after_12_pct": gain12,
                "trace_rows": rows.len() - 1,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Table1.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

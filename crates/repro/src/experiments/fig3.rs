//! Figure 3: SNES driven-cavity computation distribution, 2,500 grid
//! points on 4 processing nodes, homogeneous vs. heterogeneous.
//!
//! The paper's figure shows the default equal split (solid) and the tuned
//! distribution (dashed): equal on homogeneous nodes, skewed toward the two
//! fast (Pentium 4) nodes on the heterogeneous cluster.

use super::common::{nm_from, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_clustersim::machines::{hetero_p4_p2, homo_p4};
use ah_petsc::tunable::partition_from_config;
use ah_petsc::{CavityDistributionApp, DrivenCavity};

/// The experiment.
pub struct Fig3;

impl Experiment for Fig3 {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn title(&self) -> &'static str {
        "Figure 3: SNES driven cavity distribution, homogeneous vs heterogeneous"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        // 2,500 grid points = 50×50; one strip of grid rows per node.
        let (nx, ny) = (50, 50);
        let evals = if quick { 50 } else { 150 };
        let sweeps = 20;

        let mut rows = Vec::new();
        let mut results = Vec::new();
        for (label, machine, seed) in [
            ("homogeneous (4x P4)", homo_p4(), 31_u64),
            ("heterogeneous (2x PII + 2x P4)", hetero_p4_p2(), 32),
        ] {
            let cavity = DrivenCavity::new(nx, ny, machine, sweeps);
            let default = cavity.default_distribution();
            let coords: Vec<f64> = default
                .interior_boundaries()
                .iter()
                .map(|&b| b as f64)
                .collect();
            let mut app = CavityDistributionApp::new(cavity);
            let out = tune(&mut app, nm_from(coords), evals, seed);
            let tuned = partition_from_config(&out.result.best_config, ny, 4);
            rows.push(vec![
                label.to_string(),
                format!("{:?}", default.row_counts()),
                format!("{:?}", tuned.row_counts()),
                table::secs(out.default_cost),
                table::secs(out.result.best_cost),
                table::pct(out.improvement_pct()),
            ]);
            results.push((label, tuned, out));
        }

        let narrative = format!(
            "Grid: {nx}x{ny} = {} points over 4 nodes (rows per node shown)\n\n{}",
            nx * ny,
            table::render(
                &[
                    "environment",
                    "default rows/node",
                    "tuned rows/node",
                    "default (s)",
                    "tuned (s)",
                    "improvement"
                ],
                &rows,
            )
        );

        let homo_gain = results[0].2.improvement_pct();
        let hetero_gain = results[1].2.improvement_pct();
        let hetero_rows = results[1].1.row_counts();
        // Machine layout: procs 0,1 are the slow PII nodes, 2,3 the fast P4s.
        let fast_get_more = hetero_rows[2] + hetero_rows[3] > hetero_rows[0] + hetero_rows[1];
        let findings = vec![
            Finding::check(
                "homogeneous: equal split stays near-optimal",
                "tuned ≈ default equal distribution",
                format!("gain {}", table::pct(homo_gain)),
                homo_gain < 20.0,
            ),
            Finding::check(
                "heterogeneous: fast nodes get more grid points",
                "bottom two (fast) nodes take larger share",
                format!("tuned rows {hetero_rows:?} (procs 2,3 are fast)"),
                fast_get_more,
            ),
            Finding::check(
                "heterogeneous gain dominates homogeneous gain",
                "distribution matters mainly on heterogeneous nodes",
                format!(
                    "hetero {} vs homo {}",
                    table::pct(hetero_gain),
                    table::pct(homo_gain)
                ),
                hetero_gain > homo_gain,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "homogeneous": {
                    "improvement_pct": homo_gain,
                    "tuned_rows": results[0].1.row_counts(),
                },
                "heterogeneous": {
                    "improvement_pct": hetero_gain,
                    "tuned_rows": hetero_rows,
                },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Fig3.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

//! Table IV: GS2 (negrid, ntheta, nodes) tuning for production runs
//! (1,000 time steps).
//!
//! Paper rows: `lxyes` default (16,26,32) = 1480.3s → tuned (10,20,28) =
//! 244.2s (83.5%); `yxles` default = 384.9s → tuned version better still
//! (tuned `yxles` is the best overall configuration).

use super::common::in_band;
use super::table3::{render_rows, resolution_campaign};
use crate::experiment::{ExpReport, Finding, RunCtx};
use crate::table;

/// The experiment.
pub struct Table4;

impl crate::experiment::Experiment for Table4 {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn title(&self) -> &'static str {
        "Table IV: GS2 tuning result for production run (1000 steps)"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let steps = 1000;
        let (out_lx, _) = resolution_campaign("lxyes", steps, quick, 441);
        let (out_yx, _) = resolution_campaign("yxles", steps, quick, 442);
        let narrative = render_rows(&[("lxyes", &out_lx), ("yxles", &out_yx)]);

        let lx_gain = out_lx.improvement_pct();
        let yx_gain = out_yx.improvement_pct();

        // Benchmark-run campaigns for the production-vs-benchmark contrast.
        let (bench_lx, _) = resolution_campaign("lxyes", 10, quick, 331);
        let bench_gain = bench_lx.improvement_pct();

        let lx_band = if quick { (10.0, 97.0) } else { (50.0, 92.0) };
        let findings = vec![
            Finding::check(
                "lxyes production improvement",
                "83.5% (1480.3s -> 244.2s)",
                table::pct(lx_gain),
                in_band(lx_gain, lx_band.0, lx_band.1),
            ),
            // Known substrate divergence (see EXPERIMENTS.md): our
            // flat-chunk decomposition can only repair lxyes alignment by
            // dropping to fewer processors, so tuned lxyes keeps a compute
            // penalty and the two layouts' *relative* production gains come
            // out nearly equal instead of 83.5% vs 50.6%.
            Finding::info(
                "yxles production improvement smaller than lxyes's",
                "83.5% (lxyes) vs 50.6% (yxles)",
                format!("{} vs {}", table::pct(lx_gain), table::pct(yx_gain)),
            ),
            Finding::check(
                "tuned yxles is the best overall production configuration",
                "best overall performance from better layout + tuning",
                format!(
                    "yxles tuned {} vs lxyes tuned {}",
                    table::secs(out_yx.result.best_cost),
                    table::secs(out_lx.result.best_cost)
                ),
                out_yx.result.best_cost <= out_lx.result.best_cost,
            ),
            Finding::check(
                "production gains exceed benchmarking gains (lxyes)",
                "83.5% production vs 57.9% benchmarking",
                format!(
                    "{} production vs {} benchmarking",
                    table::pct(lx_gain),
                    table::pct(bench_gain)
                ),
                lx_gain >= bench_gain - 5.0,
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "lxyes": { "default": out_lx.default_cost, "tuned": out_lx.result.best_cost,
                            "improvement_pct": lx_gain },
                "yxles": { "default": out_yx.default_cost, "tuned": out_yx.result.best_cost,
                            "improvement_pct": yx_gain },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Table4.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
    }
}

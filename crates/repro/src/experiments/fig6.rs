//! Figure 6: performance distribution over the GS2 production search space
//! from systematic sampling, compared with Active Harmony's result.
//!
//! Paper facts: O(10^5) possible configurations; O(10^4) sampled
//! systematically; sampling best (negrid, ntheta, nodes) = (8,16,32) at
//! 125.8s; fewer than 2% of configurations run under 200s; the Harmony
//! configuration lands within the top 5% of the sampled distribution.

use super::common::{nm_from, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::{chart, table};
use ah_core::report::{histogram, percentile_rank};
use ah_core::session::{SessionOptions, TuningSession};
use ah_core::strategy::GridSearch;
use ah_gs2::{CollisionModel, Gs2Config, Gs2Model, Gs2ResolutionApp};

/// Drive the systematic-sampling session to completion, measuring chunks
/// of samples on crossbeam scoped threads.
///
/// Systematic samples are mutually independent: GridSearch proposals are
/// feedback-free, so a whole chunk can be fetched up front
/// ([`TuningSession::suggest_batch`]), split into contiguous index ranges
/// across `workers` threads, merged back in index order, and reported in
/// proposal order. The resulting history — and therefore every downstream
/// percentile — is bit-identical to the serial sweep for a given seed,
/// regardless of worker count or scheduling.
fn parallel_sweep(session: &mut TuningSession, app: &Gs2ResolutionApp, workers: usize) {
    let workers = workers.max(1);
    let chunk_len = (workers * 32).max(64);
    let objective = |cfg: &ah_core::space::Configuration| {
        let negrid = cfg.int("negrid").expect("negrid") as usize;
        let ntheta = cfg.int("ntheta").expect("ntheta") as usize;
        let nodes = cfg.int("nodes").expect("nodes") as usize;
        app.time_of(negrid, ntheta, nodes)
    };
    loop {
        let trials = session.suggest_batch(chunk_len);
        if trials.is_empty() {
            break;
        }
        let span = trials.len().div_ceil(workers).max(1);
        let costs: Vec<f64> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = trials
                .chunks(span)
                .map(|part| {
                    let objective = &objective;
                    s.spawn(move |_| {
                        part.iter()
                            .map(|t| objective(&t.config))
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sampling worker panicked"))
                .collect()
        })
        .expect("scoped sampling sweep");
        for (t, cost) in trials.into_iter().zip(costs) {
            // The session may stop mid-chunk (budget edge); remaining
            // reports belong to dropped trials and are simply ignored.
            let _ = session.report(t, cost);
        }
    }
}

/// The experiment.
pub struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn title(&self) -> &'static str {
        "Figure 6: GS2 configuration-space distribution vs Harmony's result"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let model = if quick {
            let mut m = Gs2Model::on_linux_cluster(16);
            m.nx = 16;
            m.ny = 8;
            m.nl = 16;
            m
        } else {
            Gs2Model::on_linux_cluster(32)
        };
        let steps = 1000;
        let base = Gs2Config {
            nodes: if quick { 16 } else { 32 },
            collision: CollisionModel::None,
            ..Gs2Config::paper_default()
        };
        let app = Gs2ResolutionApp::new(model.clone(), base, steps);
        let space = ah_core::offline::ShortRunApp::space(&app);
        let space_size = space.cardinality().unwrap_or(0);

        // Systematic sampling of the whole space.
        let samples_target = if quick { 400 } else { 10_000 };
        let mut session = TuningSession::new(
            space.clone(),
            Box::new(GridSearch::new(samples_target)),
            SessionOptions {
                max_evaluations: samples_target,
                seed: 6,
                ..Default::default()
            },
        );
        // The sweep dominates this experiment's wall time; run it chunked
        // across scoped worker threads.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        parallel_sweep(&mut session, &app, workers);
        let sampled = session.result();
        let costs: Vec<f64> = sampled
            .history
            .evaluations()
            .iter()
            .filter(|e| !e.cached)
            .map(|e| e.cost)
            .collect();
        let sampling_best = sampled.best_cost;
        let best_cfg = &sampled.best_config;

        // Harmony's own search on the same space.
        let mut h_app = Gs2ResolutionApp::new(model, base, steps);
        let evals = if quick { 30 } else { 40 };
        let harmony = tune(&mut h_app, nm_from(vec![16.0, 26.0, 32.0]), evals, 600);
        let harmony_best = harmony.result.best_cost;
        let harmony_pctile = percentile_rank(&costs, harmony_best);

        // "Under 200s" threshold scaled to our units: the paper's 200s is
        // ~1.6x its sampling best (125.8s).
        let threshold = sampling_best * 1.6;
        let under = percentile_rank(&costs, threshold);

        let (bounds, hist_counts) = histogram(&costs, 20);
        let narrative = format!(
            "Search space: {space_size} configurations; sampled {} systematically.\n\
             Sampling best: {} at (negrid,ntheta,nodes)=({},{},{}).\n\
             Harmony best: {} ({} evaluations), percentile {:.1}%.\n\n{}",
            costs.len(),
            table::secs(sampling_best),
            best_cfg.int("negrid").expect("negrid"),
            best_cfg.int("ntheta").expect("ntheta"),
            best_cfg.int("nodes").expect("nodes"),
            table::secs(harmony_best),
            harmony.result.evaluations,
            harmony_pctile,
            chart::histogram(&bounds, &hist_counts, 50),
        );

        let findings = vec![
            Finding::check(
                "Harmony lands in the top of the distribution",
                "within the top 5% of configurations",
                format!("percentile {harmony_pctile:.1}%"),
                harmony_pctile <= if quick { 25.0 } else { 5.0 },
            ),
            Finding::check(
                "fast configurations are rare",
                "<2% of configurations under 200s (1.6x sampling best)",
                format!("{under:.1}% under 1.6x best"),
                under <= 8.0,
            ),
            Finding::check(
                "exhaustive-ish sampling finds a slightly better point",
                "sampling best 125.8s beats Harmony's 244.2s",
                format!(
                    "sampling {} <= harmony {}",
                    table::secs(sampling_best),
                    table::secs(harmony_best)
                ),
                sampling_best <= harmony_best,
            ),
            Finding::info(
                "sampling cost vs tuning cost",
                "months of CPU for exhaustive exploration",
                format!(
                    "{} sampled runs vs {} Harmony runs",
                    costs.len(),
                    harmony.result.evaluations
                ),
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "space_size": space_size,
                "samples": costs.len(),
                "sampling_best": sampling_best,
                "harmony_best": harmony_best,
                "harmony_percentile": harmony_pctile,
                "pct_under_threshold": under,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let r = Fig6.run(&RunCtx::quick(true));
        assert!(r.all_ok(), "{}", r.render());
        assert!(r.data["samples"].as_u64().unwrap() > 100);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let mut model = Gs2Model::on_linux_cluster(16);
        model.nx = 16;
        model.ny = 8;
        model.nl = 16;
        let base = Gs2Config {
            nodes: 16,
            collision: CollisionModel::None,
            ..Gs2Config::paper_default()
        };
        let app = Gs2ResolutionApp::new(model, base, 1000);
        let space = ah_core::offline::ShortRunApp::space(&app);
        let mk = || {
            TuningSession::new(
                space.clone(),
                Box::new(GridSearch::new(200)),
                SessionOptions {
                    max_evaluations: 200,
                    seed: 6,
                    ..Default::default()
                },
            )
        };
        let mut serial = mk();
        let serial_result = serial.run(|cfg| {
            let negrid = cfg.int("negrid").expect("negrid") as usize;
            let ntheta = cfg.int("ntheta").expect("ntheta") as usize;
            let nodes = cfg.int("nodes").expect("nodes") as usize;
            app.time_of(negrid, ntheta, nodes)
        });
        for workers in [1, 3, 8] {
            let mut par = mk();
            parallel_sweep(&mut par, &app, workers);
            let r = par.result();
            assert_eq!(r.history.len(), serial_result.history.len());
            for (a, b) in r
                .history
                .evaluations()
                .iter()
                .zip(serial_result.history.evaluations())
            {
                assert_eq!(a.iteration, b.iteration);
                assert_eq!(a.config.cache_key(), b.config.cache_key());
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "workers={workers}");
            }
            assert_eq!(
                r.best_cost.to_bits(),
                serial_result.best_cost.to_bits(),
                "workers={workers}"
            );
        }
    }
}

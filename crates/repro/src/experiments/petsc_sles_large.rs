//! §IV text results: SLES decomposition tuning at scale.
//!
//! * 21,025×21,025 matrix on 32 processors → ~18% improvement;
//! * 90,601×90,601 (search space O(10^100)) seeded with information from
//!   the smaller problem's tuning run (the SC'04 prior-runs technique) →
//!   15–20% improvement within ≈120 iterations.

use super::common::{in_band, nm_from, nm_simplex, tune};
use crate::experiment::{ExpReport, Experiment, Finding, RunCtx};
use crate::table;
use ah_clustersim::{Machine, NetworkModel};
use ah_core::offline::ShortRunApp;
use ah_petsc::tunable::partition_from_config;
use ah_petsc::{SlesDecompositionApp, SlesProblem};
use ah_sparse::gen::ones;
use ah_sparse::{CsrMatrix, RowPartition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uneven dense-cluster sizes summing to `n`, deterministic per seed.
fn cluster_sizes(n: usize, clusters: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sizes: Vec<f64> = (0..clusters).map(|_| rng.gen_range(0.3..3.0)).collect();
    let total: f64 = sizes.iter().sum();
    for s in &mut sizes {
        *s = (*s / total * n as f64).max(1.0);
    }
    let mut out: Vec<usize> = sizes.iter().map(|&s| s as usize).collect();
    let diff = n as i64 - out.iter().sum::<usize>() as i64;
    out[0] = (out[0] as i64 + diff).max(1) as usize;
    out
}

/// Sparse clustered matrix: like [`ah_sparse::gen::clustered_blocks`] but
/// with a per-row nonzero budget so very large matrices stay tractable.
fn sparse_clustered(n: usize, clusters: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let sizes = cluster_sizes(n, clusters, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let mut t: Vec<(usize, usize, f64)> = Vec::with_capacity(n * (nnz_per_row + 2));
    let mut start = 0usize;
    for &sz in &sizes {
        for i in 0..sz {
            for _ in 0..nnz_per_row / 2 {
                let j = rng.gen_range(0..sz);
                if j != i {
                    let v = -rng.gen_range(0.1..1.0);
                    t.push((start + i, start + j, v));
                    t.push((start + j, start + i, v));
                }
            }
        }
        start += sz;
    }
    for r in 0..n - 1 {
        t.push((r, r + 1, -0.05));
        t.push((r + 1, r, -0.05));
    }
    let mut row_abs = vec![0.0f64; n];
    for &(r, _, v) in &t {
        row_abs[r] += v.abs();
    }
    for (r, &abs) in row_abs.iter().enumerate() {
        t.push((r, r, 1.0 + abs));
    }
    CsrMatrix::from_triplets(n, n, &t)
}

fn machine32() -> Machine {
    Machine::uniform("petsc 8x4", 8, 4, 1.0, NetworkModel::default())
}

/// The experiment.
pub struct PetscSlesLarge;

impl Experiment for PetscSlesLarge {
    fn id(&self) -> &'static str {
        "petsc_sles_large"
    }

    fn title(&self) -> &'static str {
        "PETSc SLES at scale: 21,025^2 (18%) and 90,601^2 with prior-run seeding"
    }

    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let quick = ctx.quick;
        let parts = 32;
        let (n_small, n_large, clusters, evals_small, evals_large) = if quick {
            (2102, 4204, 16, 80, 60)
        } else {
            (21025, 90601, 32, 400, 120)
        };

        // --- Small problem: cold-started tuning. ---
        let a_small = sparse_clustered(n_small, clusters, 12, 7);
        let mut p_small = SlesProblem::new(a_small, ones(n_small), machine32());
        p_small.set_iterations(200);
        let mut app_small = SlesDecompositionApp::new(p_small, parts);
        let even_small = RowPartition::even(n_small, parts);
        let coords: Vec<f64> = even_small
            .interior_boundaries()
            .iter()
            .map(|&b| b as f64)
            .collect();
        let out_small = tune(&mut app_small, nm_from(coords), evals_small, 2104);
        let small_gain = out_small.improvement_pct();

        // --- Large problem: simplex seeded by scaling the small problem's
        // best boundaries (prior-run information). ---
        let scale = n_large as f64 / n_small as f64;
        let best_small = partition_from_config(&out_small.result.best_config, n_small, parts);
        let seed_coords: Vec<f64> = best_small
            .interior_boundaries()
            .iter()
            .map(|&b| b as f64 * scale)
            .collect();
        // Simplex vertices: scaled best plus jittered copies.
        let mut rng = StdRng::seed_from_u64(90601);
        let mut simplex = vec![seed_coords.clone()];
        for _ in 0..parts - 1 {
            let jitter: Vec<f64> = seed_coords
                .iter()
                .map(|&c| c + rng.gen_range(-0.02..0.02) * n_large as f64)
                .collect();
            simplex.push(jitter);
        }
        let a_large = sparse_clustered(n_large, clusters, 12, 7); // same structure, scaled
        let mut p_large = SlesProblem::new(a_large, ones(n_large), machine32());
        p_large.set_iterations(200);
        let mut app_large = SlesDecompositionApp::new(p_large, parts);
        let out_large = tune(&mut app_large, nm_simplex(simplex), evals_large, 2105);
        let large_gain = out_large.improvement_pct();
        let space_log10 = app_large.space().log10_cardinality().unwrap_or(0.0);

        let narrative = table::render(
            &[
                "problem",
                "procs",
                "iterations",
                "default (s)",
                "tuned (s)",
                "improvement",
            ],
            &[
                vec![
                    format!("{n_small}^2"),
                    parts.to_string(),
                    out_small.result.evaluations.to_string(),
                    table::secs(out_small.default_cost),
                    table::secs(out_small.result.best_cost),
                    table::pct(small_gain),
                ],
                vec![
                    format!("{n_large}^2 (seeded)"),
                    parts.to_string(),
                    out_large.result.evaluations.to_string(),
                    table::secs(out_large.default_cost),
                    table::secs(out_large.result.best_cost),
                    table::pct(large_gain),
                ],
            ],
        );

        let small_band = if quick { (3.0, 60.0) } else { (10.0, 30.0) };
        let large_band = if quick { (3.0, 60.0) } else { (10.0, 30.0) };
        let findings = vec![
            Finding::check(
                "21,025^2 improvement",
                "~18%",
                table::pct(small_gain),
                in_band(small_gain, small_band.0, small_band.1),
            ),
            Finding::check(
                "90,601^2 improvement with prior-run seeding",
                "15-20% in ~120 iterations",
                format!(
                    "{} in {} iterations",
                    table::pct(large_gain),
                    out_large.result.evaluations
                ),
                in_band(large_gain, large_band.0, large_band.1)
                    && out_large.result.evaluations <= evals_large,
            ),
            Finding::info(
                "large search space",
                "O(10^100) points",
                format!("O(10^{space_log10:.0}) points"),
            ),
        ];
        ExpReport {
            id: self.id().into(),
            title: self.title().into(),
            narrative,
            findings,
            data: serde_json::json!({
                "small": {
                    "n": n_small,
                    "improvement_pct": small_gain,
                    "iterations": out_small.result.evaluations,
                },
                "large": {
                    "n": n_large,
                    "improvement_pct": large_gain,
                    "iterations": out_large.result.evaluations,
                    "log10_space": space_log10,
                },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_sizes_sum_to_n() {
        let s = cluster_sizes(1000, 8, 3);
        assert_eq!(s.iter().sum::<usize>(), 1000);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn sparse_clustered_is_symmetric_and_bounded() {
        let a = sparse_clustered(300, 4, 8, 1);
        assert_eq!(a.rows(), 300);
        assert_eq!(a.transpose(), a);
        assert!(a.nnz() < 300 * 24);
    }

    #[test]
    fn quick_run_improves_both_problems() {
        let r = PetscSlesLarge.run(&RunCtx::quick(true));
        let small = r.data["small"]["improvement_pct"].as_f64().unwrap();
        let large = r.data["large"]["improvement_pct"].as_f64().unwrap();
        assert!(small > 0.0, "{}", r.render());
        assert!(large > 0.0, "{}", r.render());
    }
}

//! One module per paper table/figure.

pub mod common;
pub mod fault;
pub mod fig2b;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod gs2_combined;
pub mod gs2_headline;
pub mod petsc_sles_large;
pub mod petsc_snes_large;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod warmstart;

//! ASCII bar charts and histograms for figure-shaped experiments.

/// Render a horizontal bar chart. Values are scaled so the longest bar is
/// `width` characters.
pub fn bars(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let n = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:label_w$} | {} {value:.3}\n",
            "#".repeat(n)
        ));
    }
    out
}

/// Render a histogram from bucket upper bounds and counts.
pub fn histogram(bounds: &[f64], counts: &[usize], width: usize) -> String {
    assert_eq!(bounds.len(), counts.len());
    let max = counts.iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    for (b, &c) in bounds.iter().zip(counts) {
        let n = if max > 0 {
            (c * width).div_ceil(max).min(width)
        } else {
            0
        };
        out.push_str(&format!(
            "<= {:>10} | {} {}\n",
            crate::table::secs(*b),
            "#".repeat(n),
            c
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let chart = bars(&[("short".into(), 1.0), ("long".into(), 4.0)], 20);
        assert!(chart.contains(&"#".repeat(20)));
        assert!(chart.contains(&format!("short | {} 1.000", "#".repeat(5))));
    }

    #[test]
    fn bars_handle_zero_max() {
        let chart = bars(&[("a".into(), 0.0)], 10);
        assert!(chart.contains("a |  0.000"));
    }

    #[test]
    fn histogram_renders_counts() {
        let chart = histogram(&[10.0, 20.0], &[3, 6], 12);
        assert!(chart.lines().count() == 2);
        assert!(chart.contains("| ############ 6"));
    }
}

//! `repro metrics` / `repro trace`: observability artifacts of a faulted
//! tuning run.
//!
//! Both subcommands drive the same campaign as the `fault` experiment —
//! a Nelder–Mead session shared by three workers under a seeded fault
//! schedule of crashes, lost reports, and stragglers — with telemetry
//! enabled on the server, and then render what the telemetry saw:
//!
//! * `metrics` prints the counters and latency histograms in Prometheus
//!   text exposition format.
//! * `trace` prints a JSON timeline grouping every recorded event by trial
//!   (iteration token), with per-event stage, client, and cause — the full
//!   proposed → fetched → measured → reported lifecycle, including every
//!   requeue and fault along the way.
//!
//! `trace` also *verifies* completeness: every proposed trial must have a
//! reported event, and every requeue/eviction/fault must carry a cause.
//! A hole in the trace is an exit-code failure, not a shrug.
//!
//! With `--format chrome`, `trace` instead exports the run's timing spans
//! as Chrome trace-event JSON (loadable in Perfetto or `chrome://tracing`)
//! and fails if any span was left unpaired. With `--from <addr>`, both
//! subcommands pull from a live server's observability endpoint instead of
//! running a campaign: `metrics` fetches `/metrics`, `trace` fetches
//! `/trials` (the raw event ring) or `/trace` (Chrome format). Remote
//! pulls skip the completeness gate — a live campaign legitimately has
//! trials in flight.

use crate::experiments::fault;
use crate::observe_cli;
use ah_clustersim::FaultPlan;
use ah_core::prelude::*;

/// The instrumented campaign both subcommands observe: same workload,
/// seeds, and fault probabilities as the `fault` experiment's Nelder–Mead
/// row, so its numbers line up with that experiment's report.
fn observed_run(quick: bool) -> Telemetry {
    let evals = if quick { 40 } else { 120 };
    let plan = FaultPlan::new(2026, 0.12, 0.08, 0.18);
    let outcome = fault::faulty_history(StrategyKind::NelderMead, evals, 62, &plan, 3);
    eprintln!(
        "observed fault run: {} evaluations, {} crashes, {} lost reports, {} stragglers",
        outcome.history.len(),
        outcome.crashes,
        outcome.lost,
        outcome.stragglers
    );
    outcome.telemetry
}

/// Write `blob` to `out` when given, otherwise to stdout.
fn emit(blob: &str, out: Option<&str>) {
    match out {
        Some(path) => {
            std::fs::write(path, blob).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path}");
        }
        None => println!("{blob}"),
    }
}

/// `repro metrics`: Prometheus text exposition of the observed run, or of
/// a live server when `from` is given.
pub fn metrics(quick: bool, out: Option<&str>, from: Option<&str>) -> i32 {
    let blob = match from {
        Some(addr) => match observe_cli::pull(addr, "/metrics") {
            Ok(body) => body,
            Err(e) => {
                eprintln!("metrics: {e}");
                return 2;
            }
        },
        None => observed_run(quick).prometheus(),
    };
    emit(&blob, out);
    0
}

/// One trial's event timeline inside the `trace` JSON.
fn trial_timeline(iteration: usize, events: &[TrialEvent]) -> serde_json::Value {
    let timeline: Vec<serde_json::Value> = events
        .iter()
        .filter(|e| e.iteration == iteration)
        .map(|e| {
            serde_json::json!({
                "seq": e.seq,
                "at_us": e.at_us,
                "stage": e.stage.name(),
                "client": e.client,
                "cause": e.cause,
            })
        })
        .collect();
    serde_json::json!({ "iteration": iteration, "events": timeline })
}

/// `repro trace`: JSON event dump of the observed run, grouped per trial,
/// plus counters. Returns nonzero if any trial's lifecycle is incomplete.
///
/// `format` selects `"events"` (the lifecycle dump) or `"chrome"` (span
/// slices as Chrome trace-event JSON); `from` pulls from a live server
/// instead of running a campaign.
pub fn trace(quick: bool, out: Option<&str>, format: &str, from: Option<&str>) -> i32 {
    match format {
        "events" | "chrome" => {}
        other => {
            eprintln!("trace: unknown --format {other:?} (expected events|chrome)");
            return 2;
        }
    }
    if let Some(addr) = from {
        let path = if format == "chrome" {
            "/trace"
        } else {
            "/trials"
        };
        return match observe_cli::pull(addr, path) {
            Ok(body) => {
                emit(&body, out);
                0
            }
            Err(e) => {
                eprintln!("trace: {e}");
                2
            }
        };
    }
    let telemetry = observed_run(quick);
    if format == "chrome" {
        let blob = serde_json::to_string_pretty(&telemetry.chrome_trace())
            .expect("chrome trace serializes");
        emit(&blob, out);
        let open = telemetry.open_spans();
        if open > 0 {
            eprintln!("trace: {open} span(s) begun but never ended or faulted");
            return 1;
        }
        eprintln!(
            "trace: {} spans, all paired (begin → end/fault)",
            telemetry.spans().len()
        );
        return 0;
    }
    let events = telemetry.events();

    // Group by iteration token; iteration 0 carries member-level events
    // (evictions) that belong to no single trial.
    let mut iterations: Vec<usize> = events
        .iter()
        .map(|e| e.iteration)
        .filter(|&i| i != 0)
        .collect();
    iterations.sort_unstable();
    iterations.dedup();
    let trials: Vec<serde_json::Value> = iterations
        .iter()
        .map(|&i| trial_timeline(i, &events))
        .collect();
    let member_events: Vec<serde_json::Value> = events
        .iter()
        .filter(|e| e.iteration == 0)
        .map(|e| {
            serde_json::json!({
                "seq": e.seq,
                "at_us": e.at_us,
                "stage": e.stage.name(),
                "member": e.client,
                "cause": e.cause,
            })
        })
        .collect();
    let counters = telemetry.counters_json();

    // Completeness check: a trial that was proposed (or replayed into
    // existence) must end its life reported; causal stages must say why.
    let mut incomplete = Vec::new();
    for &i in &iterations {
        let stages: Vec<TrialStage> = events
            .iter()
            .filter(|e| e.iteration == i)
            .map(|e| e.stage)
            .collect();
        let proposed = stages.contains(&TrialStage::Proposed);
        let reported = stages.contains(&TrialStage::Reported);
        if proposed && !reported {
            incomplete.push(i);
        }
    }
    let causeless = events
        .iter()
        .filter(|e| {
            matches!(
                e.stage,
                TrialStage::Requeued | TrialStage::Evicted | TrialStage::Faulted
            ) && e.cause.is_none()
        })
        .count();

    let blob = serde_json::to_string_pretty(&serde_json::json!({
        "trials": trials,
        "member_events": member_events,
        "counters": counters,
        "dropped_events": telemetry.dropped_events(),
        "incomplete_trials": incomplete,
    }))
    .expect("trace serializes");
    emit(&blob, out);

    if !incomplete.is_empty() {
        eprintln!(
            "trace: {} proposed trial(s) never reached `reported`: {incomplete:?}",
            incomplete.len()
        );
        return 1;
    }
    if causeless > 0 {
        eprintln!("trace: {causeless} requeue/eviction/fault event(s) carry no cause");
        return 1;
    }
    eprintln!(
        "trace: {} trials, all lifecycles complete",
        iterations.len()
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_of_a_quick_faulted_run_is_complete() {
        let telemetry = observed_run(true);
        let events = telemetry.events();
        assert!(telemetry.dropped_events() == 0, "quick run overflowed ring");
        let proposed: std::collections::HashSet<usize> = events
            .iter()
            .filter(|e| e.stage == TrialStage::Proposed)
            .map(|e| e.iteration)
            .collect();
        let reported: std::collections::HashSet<usize> = events
            .iter()
            .filter(|e| e.stage == TrialStage::Reported)
            .map(|e| e.iteration)
            .collect();
        assert_eq!(proposed, reported, "some trials never finished");
        assert!(
            telemetry.counter(Counter::TrialsRequeued) > 0,
            "fault schedule should force at least one requeue"
        );
        // Faults were recorded with their kind as cause.
        assert!(events
            .iter()
            .filter(|e| e.stage == TrialStage::Faulted)
            .all(|e| e.cause.is_some()));
    }

    #[test]
    fn metrics_exposition_is_parseable_prometheus_text() {
        let telemetry = observed_run(true);
        let text = telemetry.prometheus();
        assert!(text.contains("ah_trials_reported_total 40"), "{text}");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample line: {line}"
            );
        }
    }
}

//! The experiment framework: one [`Experiment`] per paper table/figure.

use serde::Serialize;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// What is being compared (e.g. "speedup without collisions").
    pub metric: String,
    /// What the paper reports.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measured shape matches the paper's
    /// (`None` = informational only).
    pub ok: Option<bool>,
}

impl Finding {
    /// A checked comparison.
    pub fn check(
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> Self {
        Finding {
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
            ok: Some(ok),
        }
    }

    /// An informational row.
    pub fn info(
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        Finding {
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
            ok: None,
        }
    }
}

/// The rendered output of one experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ExpReport {
    /// Experiment id (e.g. `"fig4"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Rendered tables/charts (plain text).
    pub narrative: String,
    /// Paper-vs-measured comparisons.
    pub findings: Vec<Finding>,
    /// Raw result data for EXPERIMENTS.md / further analysis.
    pub data: serde_json::Value,
}

impl ExpReport {
    /// True if every checked finding matched the paper's shape.
    pub fn all_ok(&self) -> bool {
        self.findings.iter().all(|f| f.ok != Some(false))
    }

    /// Render as markdown-ish plain text.
    pub fn render(&self) -> String {
        let mut out = format!("## [{}] {}\n\n{}\n", self.id, self.title, self.narrative);
        if !self.findings.is_empty() {
            out.push_str("\nPaper vs. measured:\n");
            let rows: Vec<Vec<String>> = self
                .findings
                .iter()
                .map(|f| {
                    vec![
                        f.metric.clone(),
                        f.paper.clone(),
                        f.measured.clone(),
                        match f.ok {
                            Some(true) => "MATCH".into(),
                            Some(false) => "MISMATCH".into(),
                            None => "-".into(),
                        },
                    ]
                })
                .collect();
            out.push_str(&crate::table::render(
                &["metric", "paper", "measured", "shape"],
                &rows,
            ));
        }
        out
    }
}

/// Per-invocation context handed to every experiment.
#[derive(Debug, Clone, Default)]
pub struct RunCtx {
    /// Shrink workloads for smoke tests while keeping every code path; the
    /// full run regenerates the paper shape.
    pub quick: bool,
    /// Performance-store path (the CLI's `--store`). Experiments that
    /// support cross-session warm-starting open it; the rest ignore it.
    pub store: Option<std::path::PathBuf>,
}

impl RunCtx {
    /// A context with only the quick flag set.
    pub fn quick(quick: bool) -> Self {
        RunCtx {
            quick,
            ..Default::default()
        }
    }
}

/// A reproducible paper experiment.
pub trait Experiment {
    /// Stable id used on the CLI and in bench names.
    fn id(&self) -> &'static str;
    /// Human title (paper artifact it regenerates).
    fn title(&self) -> &'static str;
    /// Run the experiment under the given context.
    fn run(&self, ctx: &RunCtx) -> ExpReport;
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::experiments::fig2b::Fig2b),
        Box::new(crate::experiments::petsc_sles_large::PetscSlesLarge),
        Box::new(crate::experiments::fig3::Fig3),
        Box::new(crate::experiments::petsc_snes_large::PetscSnesLarge),
        Box::new(crate::experiments::fig4::Fig4),
        Box::new(crate::experiments::table1::Table1),
        Box::new(crate::experiments::table2::Table2),
        Box::new(crate::experiments::fig5::Fig5),
        Box::new(crate::experiments::gs2_headline::Gs2Headline),
        Box::new(crate::experiments::gs2_combined::Gs2Combined),
        Box::new(crate::experiments::table3::Table3),
        Box::new(crate::experiments::table4::Table4),
        Box::new(crate::experiments::fig6::Fig6),
        Box::new(crate::experiments::fault::Fault),
        Box::new(crate::experiments::warmstart::Warmstart),
    ]
}

/// Find an experiment by id.
pub fn by_id(id: &str) -> Option<Box<dyn Experiment>> {
    all_experiments().into_iter().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let all = all_experiments();
        assert_eq!(all.len(), 15);
        let mut ids: Vec<&str> = all.iter().map(|e| e.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15, "duplicate experiment ids");
        assert!(by_id("fig4").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn report_rendering_includes_findings() {
        let r = ExpReport {
            id: "x".into(),
            title: "T".into(),
            narrative: "body".into(),
            findings: vec![
                Finding::check("m", "1", "2", true),
                Finding::info("n", "a", "b"),
            ],
            data: serde_json::json!({}),
        };
        let s = r.render();
        assert!(s.contains("## [x] T"));
        assert!(s.contains("MATCH"));
        assert!(s.contains("| n"));
        assert!(r.all_ok());
    }

    #[test]
    fn all_ok_detects_mismatches() {
        let r = ExpReport {
            id: "x".into(),
            title: "T".into(),
            narrative: String::new(),
            findings: vec![Finding::check("m", "1", "2", false)],
            data: serde_json::json!({}),
        };
        assert!(!r.all_ok());
    }
}

//! `repro leaderboard` — the strategy roster raced head-to-head.
//!
//! Every search strategy the repo implements runs the same off-line tuning
//! problems and is ranked by **evaluations-to-target**: the number of fresh
//! short runs a campaign spends before its best cost reaches a target set
//! at a fixed fraction of the demonstrably achievable improvement.
//! Campaigns that exhaust their budget without reaching the target score
//! `2 × budget` (a finite "did not finish" penalty that still orders
//! near-misses by their remaining gap — see [`score`]).
//!
//! The race covers the paper's three application families (POP block
//! sizes, POP namelist parameters, PETSc SLES decomposition boundaries —
//! the last one constrained, exercising the feasibility-aware snapping)
//! and averages each pairing over several seeds. Results are written to
//! `BENCH_strategies.json`; the run fails if no adaptive newcomer
//! (annealing / genetic / surrogate) beats random search on some problem.

use ah_clustersim::machines::sp3_seaborg;
use ah_clustersim::{Machine, NetworkModel};
use ah_core::offline::{OfflineTuner, ShortRunApp};
use ah_core::session::{SessionOptions, StopReason};
use ah_core::strategy::{
    Annealing, Exhaustive, Genetic, GreedyFrom, GreedyOptions, GridSearch, NelderMead,
    NelderMeadOptions, ParallelRankOrder, ProOptions, RandomSearch, SearchStrategy, StartPoint,
    Surrogate,
};
use ah_petsc::{SlesDecompositionApp, SlesProblem};
use ah_pop::{OceanGrid, PopBlockApp, PopParamApp};
use ah_sparse::gen::{clustered_blocks, ones};
use std::io::Write;

/// The nine raced strategies, in roster order. The last three are the
/// adaptive newcomers the leaderboard gate checks against random search.
pub const ROSTER: [&str; 9] = [
    "random",
    "grid",
    "exhaustive",
    "greedy",
    "nelder-mead",
    "pro",
    "annealing",
    "genetic",
    "surrogate",
];

/// The adaptive strategies added by the strategy-suite expansion.
pub const NEWCOMERS: [&str; 3] = ["annealing", "genetic", "surrogate"];

/// One tuning problem of the race.
struct Problem {
    name: &'static str,
    budget: usize,
    /// Fraction of the pilot-demonstrated improvement the target demands.
    target_frac: f64,
    make: Box<dyn Fn() -> Box<dyn ShortRunApp>>,
}

const SLES_BLOCKS: [usize; 6] = [30, 110, 25, 60, 95, 80];

fn problems(quick: bool) -> Vec<Problem> {
    let budget = if quick { 60 } else { 150 };
    vec![
        Problem {
            name: "pop-blocks",
            budget,
            target_frac: 0.95,
            make: Box::new(|| {
                Box::new(PopBlockApp::new(
                    OceanGrid::synthetic(360, 240),
                    sp3_seaborg(12, 4),
                    3,
                ))
            }),
        },
        Problem {
            name: "pop-params",
            budget,
            target_frac: 0.97,
            make: Box::new(|| {
                Box::new(PopParamApp::new(
                    OceanGrid::synthetic(360, 240),
                    sp3_seaborg(12, 4),
                    (180, 100),
                    3,
                ))
            }),
        },
        Problem {
            name: "sles-decomp",
            budget,
            target_frac: 0.7,
            make: Box::new(|| {
                let a = clustered_blocks(&SLES_BLOCKS, 0.85, 20);
                let n = a.rows();
                let machine = Machine::uniform("petsc 4x1", 4, 1, 1.0, NetworkModel::default());
                let mut problem = SlesProblem::new(a, ones(n), machine);
                problem.set_iterations(200);
                Box::new(SlesDecompositionApp::new(problem, 4))
            }),
        },
    ]
}

/// Build a roster strategy for a problem whose default configuration embeds
/// at `default_coords`. Seeded strategies (greedy, the simplex family)
/// start from the default, as the paper's campaigns do.
pub fn build_strategy(
    name: &str,
    default_coords: &[f64],
    budget: usize,
) -> Box<dyn SearchStrategy> {
    match name {
        "random" => Box::new(RandomSearch::new()),
        "grid" => Box::new(GridSearch::new(budget)),
        "exhaustive" => Box::new(Exhaustive::new(10_000)),
        "greedy" => Box::new(GreedyFrom::new(
            default_coords.to_vec(),
            GreedyOptions::default(),
        )),
        "nelder-mead" => Box::new(NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(default_coords.to_vec()),
            ..NelderMeadOptions::default()
        })),
        "pro" => Box::new(ParallelRankOrder::new(ProOptions {
            start: StartPoint::Coords(default_coords.to_vec()),
            ..ProOptions::default()
        })),
        "annealing" => Box::new(Annealing::default()),
        "genetic" => Box::new(Genetic::default()),
        "surrogate" => Box::new(Surrogate::default()),
        other => panic!("unknown roster strategy `{other}`"),
    }
}

/// Evaluations-to-target of one seeded campaign: the fresh short runs
/// spent when the target was reached. A campaign that exhausts its budget
/// scores `2 × budget` plus up to one more budget scaled by the remaining
/// relative gap, so near-misses still rank above campaigns stuck at the
/// default.
fn score(
    app: &mut dyn ShortRunApp,
    strategy: Box<dyn SearchStrategy>,
    opts: &SessionOptions,
    default_cost: f64,
) -> (f64, f64) {
    let out = OfflineTuner::new(opts.clone()).tune(app, strategy);
    let target = opts.target_cost.expect("leaderboard sessions have targets");
    let budget = opts.max_evaluations as f64;
    let evals = if out.result.stop_reason == StopReason::TargetReached {
        out.result.history.runs() as f64
    } else {
        let span = (default_cost - target).max(f64::EPSILON);
        let gap = ((out.result.best_cost - target) / span).clamp(0.0, 1.0);
        2.0 * budget + budget * gap
    };
    (evals, out.result.best_cost)
}

/// Run the leaderboard; returns a process exit code.
pub fn run(args: &[String], quick: bool) -> i32 {
    let json_path = flag_value(args, "--json").unwrap_or_else(|| "BENCH_strategies.json".into());
    let seeds: u64 = flag_value(args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });

    let mut experiments = Vec::new();
    let mut mean_rank = vec![0.0f64; ROSTER.len()];
    let mut newcomer_beats_random_everywhere: Vec<&str> = NEWCOMERS.to_vec();
    let mut all_problems_have_winner = true;

    for p in problems(quick) {
        // Baseline and target: measure the default, then let a pilot
        // simplex campaign demonstrate what improvement is achievable;
        // the target demands `target_frac` of that gain.
        let mut app = (p.make)();
        let space = app.space();
        let default_cfg = app.default_config();
        let default_coords = space.embed(&default_cfg).expect("default embeds");
        let default_cost = app.run_short(&default_cfg).exec_time;
        let pilot_best = ["nelder-mead", "greedy"]
            .iter()
            .map(|s| {
                OfflineTuner::new(SessionOptions {
                    max_evaluations: 2 * p.budget,
                    seed: 9090,
                    ..SessionOptions::default()
                })
                .tune(
                    (p.make)().as_mut(),
                    build_strategy(s, &default_coords, p.budget),
                )
                .result
                .best_cost
            })
            .fold(f64::INFINITY, f64::min);
        let achievable = (default_cost - pilot_best).max(0.0);
        let target_cost = default_cost - p.target_frac * achievable;

        let opts = SessionOptions {
            max_evaluations: p.budget,
            target_cost: Some(target_cost),
            ..SessionOptions::default()
        };

        struct Row {
            strategy: &'static str,
            evals: f64,
            reached: usize,
            best: f64,
            rank: usize,
        }
        let mut rows = Vec::new();
        for name in ROSTER {
            let mut total_evals = 0.0;
            let mut total_best = 0.0;
            let mut reached = 0usize;
            for s in 0..seeds {
                let mut app = (p.make)();
                let strategy = build_strategy(name, &default_coords, p.budget);
                let (evals, best) = score(
                    app.as_mut(),
                    strategy,
                    &SessionOptions {
                        seed: 1000 + s,
                        ..opts.clone()
                    },
                    default_cost,
                );
                total_evals += evals;
                total_best += best;
                if evals <= p.budget as f64 {
                    reached += 1;
                }
            }
            rows.push(Row {
                strategy: name,
                evals: total_evals / seeds as f64,
                reached,
                best: total_best / seeds as f64,
                rank: 0,
            });
        }

        // Rank within the problem (ascending evaluations-to-target).
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| rows[a].evals.total_cmp(&rows[b].evals));
        for (rank, &i) in order.iter().enumerate() {
            rows[i].rank = rank + 1;
            mean_rank[i] += (rank + 1) as f64;
        }

        let random_score = rows[0].evals;
        let winners: Vec<&str> = NEWCOMERS
            .iter()
            .filter(|n| {
                rows.iter()
                    .find(|r| r.strategy == **n)
                    .map(|r| r.evals < random_score)
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        newcomer_beats_random_everywhere.retain(|n| winners.contains(n));
        if winners.is_empty() {
            all_problems_have_winner = false;
            eprintln!(
                "leaderboard: no adaptive newcomer beat random on {} \
                 (random reached in {random_score:.1})",
                p.name
            );
        }

        println!(
            "## {} (target {:.5}, default {:.5}, budget {})",
            p.name, target_cost, default_cost, p.budget
        );
        for &i in &order {
            println!(
                "  {:2}. {:12} evals-to-target {:7.1}  reached {}/{seeds}  best {:.5}",
                rows[i].rank, rows[i].strategy, rows[i].evals, rows[i].reached, rows[i].best,
            );
        }
        println!();
        let row_json: Vec<_> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "strategy": r.strategy,
                    "evals_to_target": r.evals,
                    "reached": format!("{}/{seeds}", r.reached),
                    "mean_best_cost": r.best,
                    "rank": r.rank,
                })
            })
            .collect();
        experiments.push(serde_json::json!({
            "name": p.name,
            "budget": p.budget,
            "seeds": seeds,
            "default_cost": default_cost,
            "target_cost": target_cost,
            "pilot_best": pilot_best,
            "strategies": row_json,
            "newcomers_beating_random": winners,
        }));
    }

    let n = experiments.len() as f64;
    let mut overall: Vec<(f64, &str)> = mean_rank
        .iter()
        .zip(ROSTER.iter())
        .map(|(r, s)| (r / n, *s))
        .collect();
    overall.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!("## overall (mean rank across problems)");
    for (r, s) in &overall {
        println!("  {s:12} {r:.2}");
    }

    let report = serde_json::json!({
        "bench": "strategies",
        "mode": if quick { "quick" } else { "full" },
        "experiments": experiments,
        "overall_ranking": overall.iter().map(|(r, s)| serde_json::json!({
            "strategy": s, "mean_rank": r,
        })).collect::<Vec<_>>(),
        "newcomers_beating_random_everywhere": newcomer_beats_random_everywhere,
        "every_problem_has_newcomer_winner": all_problems_have_winner,
    });
    let blob = serde_json::to_string_pretty(&report).expect("report serializes");
    match std::fs::File::create(&json_path).and_then(|mut f| {
        f.write_all(blob.as_bytes())?;
        f.write_all(b"\n")
    }) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("cannot write {json_path}: {e}");
            return 2;
        }
    }
    if !all_problems_have_winner {
        eprintln!("leaderboard FAILED: some problem had no adaptive newcomer beating random");
        return 1;
    }
    0
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_builds_every_strategy() {
        for name in ROSTER {
            let s = build_strategy(name, &[100.0, 100.0], 50);
            assert!(!s.name().is_empty());
        }
    }
}

//! `repro bench-server`: throughput of the Harmony tuning server.
//!
//! Drives C concurrent clients for I evaluations each against the
//! in-process server (single-shard baseline vs sharded pool, serial
//! fetch/report vs batched `FetchBatch`/`ReportBatch`) and against the TCP
//! transport, then reports ops/sec and per-evaluation latency percentiles.
//! The figures quantify the two server-side changes of this codebase's
//! "tuning at scale" layer: shard workers remove the single-dispatcher
//! bottleneck, and batch messages amortize one round-trip over a whole PRO
//! round of candidates.

use crate::swarm::{IndependentScript, Swarm, SwarmScript};
use ah_core::param::Param;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::tcp::{TcpClientOptions, TcpTransport, DEFAULT_MAX_CONNECTIONS};
use ah_core::server::{
    EventLoopConfig, HarmonyServer, ObserveHandle, ServerConfig, TcpHarmonyClient, TcpHarmonyServer,
};
use ah_core::session::SessionOptions;
use ah_core::store::SharedStore;
use ah_core::telemetry::Telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// How many trials a batched client asks for per round-trip.
pub const BATCH: usize = 16;

/// Process-global nonce so every scenario gets fresh application labels.
/// The throughput scenarios run unbounded sessions; re-using a label
/// against a warm store would turn them into infinite server-side serve
/// loops instead of benchmarks, so each run tunes apps nobody has seen.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

fn run_nonce() -> u64 {
    RUN_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Knobs of one `bench-server` run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Evaluations per client.
    pub iters: usize,
    /// Run every scenario with an *enabled* telemetry handle on server and
    /// clients. The regression gate run with this on proves observation is
    /// overhead-neutral: the same tolerance that catches real throughput
    /// collapses must not fire merely because recording was turned on.
    pub telemetry: bool,
    /// Attach a performance store at this path to every scenario's server.
    /// The gate run with this on proves store-enabled serving (cold-path
    /// inserts + fsync cadence) stays inside the same regression tolerance,
    /// and enables the warm-vs-cold cache demo section of the report.
    pub store: Option<std::path::PathBuf>,
    /// Serve the observability plane (`/metrics`, `/status`) on this
    /// address while each scenario runs. The gate run with this on proves
    /// the endpoint stays off the hot path: the same tolerance that
    /// catches real regressions must not fire with an observer attached.
    /// Scenarios run sequentially, so one fixed address works for all.
    pub observe: Option<String>,
    /// Simultaneous nonblocking clients of the high-concurrency
    /// `tcp/swarm` scenario (each tunes its own session through the
    /// readiness event loop; see [`crate::swarm`]).
    pub swarm_clients: usize,
    /// Evaluations per swarm client.
    pub swarm_iters: usize,
    /// Event-loop threads of the TCP scenarios' servers (`0` = auto).
    pub loop_threads: usize,
    /// Run the multi-tenant fair-dispatch scenario with this many tenants
    /// (`0` = skip it). Each tenant drives its own session over TCP under
    /// its own tenant id, so the deficit-round-robin dispatcher — not the
    /// connection order — decides who gets served; the report records
    /// overall throughput plus per-tenant p99 fetch latency. Like the
    /// swarm, the scenario is recorded but exempt from the relative gate
    /// (its shape depends on the tenant count, not on regressions).
    pub tenants: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 16,
            iters: 200,
            telemetry: false,
            store: None,
            observe: None,
            swarm_clients: 1000,
            swarm_iters: 8,
            loop_threads: 0,
            tenants: 0,
        }
    }
}

impl BenchConfig {
    /// Shrunken workload for CI regression gates: large enough to expose a
    /// real throughput collapse, small enough to finish in seconds.
    ///
    /// Keeps the *same client count* as the full run and shrinks only the
    /// per-client iteration count: the TCP scenarios' relative throughput
    /// depends on how many connections amortize each readiness-loop
    /// iteration, so gate runs must match the committed baseline's
    /// concurrency shape to compare like for like. (The swarm scenario
    /// does scale its client count down, which is why it is exempt from
    /// the relative gate.)
    pub fn quick() -> Self {
        BenchConfig {
            clients: 16,
            iters: 60,
            telemetry: false,
            store: None,
            observe: None,
            swarm_clients: 200,
            swarm_iters: 4,
            loop_threads: 0,
            tenants: 0,
        }
    }

    fn event_loop_transport(&self) -> TcpTransport {
        // Escape hatch for A/B measurements: rerun the TCP scenarios over
        // the legacy thread-per-connection front-end.
        if std::env::var_os("AH_BENCH_THREADED").is_some() {
            return TcpTransport::Threaded;
        }
        TcpTransport::EventLoop(EventLoopConfig {
            loop_threads: self.loop_threads,
            ..Default::default()
        })
    }

    fn server_telemetry(&self) -> Telemetry {
        if self.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }
}

/// The per-scenario observability attachment: the HTTP endpoint plus a
/// fast time-series sampler over the server's telemetry. Benching with
/// the sampler thread running is what proves its overhead stays inside
/// the regression gate's tolerance.
struct BenchObserver {
    handle: ObserveHandle,
    // Stopped (thread joined) when the observer is dropped by `stop`.
    _sampler: ah_core::telemetry::timeseries::Sampler,
}

impl BenchObserver {
    fn stop(self) {
        self.handle.stop();
    }
}

/// Attach the observability endpoint to a scenario's server when the run
/// asks for one.
fn observer_for(
    cfg: &BenchConfig,
    telemetry: &Telemetry,
    observe: impl FnOnce(&str) -> std::io::Result<ObserveHandle>,
) -> Option<BenchObserver> {
    cfg.observe.as_deref().map(|addr| {
        let handle = observe(addr).expect("bind bench observer");
        let series = ah_core::telemetry::timeseries::TimeSeries::new(telemetry.clone());
        let sampler = series.start_sampler(Duration::from_millis(100));
        eprintln!("bench-server: observing on http://{}", handle.addr());
        BenchObserver {
            handle,
            _sampler: sampler,
        }
    })
}

/// Measured outcome of one scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label, e.g. `"inproc/serial/1-shard"`.
    pub name: String,
    /// Evaluations completed across all clients.
    pub total_evals: usize,
    /// Evaluations per wall-clock second, all clients together.
    pub ops_per_sec: f64,
    /// Median per-evaluation latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-evaluation latency in microseconds.
    pub p99_us: f64,
}

fn session_options(seed: u64) -> SessionOptions {
    SessionOptions {
        // Effectively unbounded: the driver stops at `iters`, and neither
        // the budget nor replay-convergence should end the session first.
        max_evaluations: usize::MAX / 4,
        max_cached_replays: usize::MAX / 4,
        seed,
        ..Default::default()
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(name: String, mut latencies_us: Vec<f64>, wall_secs: f64) -> Scenario {
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let total = latencies_us.len();
    Scenario {
        name,
        total_evals: total,
        ops_per_sec: total as f64 / wall_secs.max(1e-9),
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

/// One client's serial tuning loop; returns per-evaluation latencies (µs).
fn drive_serial(client: &ah_core::server::HarmonyClient, iters: usize) -> Vec<f64> {
    let mut lat = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let fetched = client.fetch().expect("fetch");
        assert!(!fetched.finished, "bench session must not finish");
        let cost = fetched.config.int("x").expect("x") as f64;
        client.report_timed(cost, 0.0).expect("report");
        lat.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    lat
}

/// One client's batched tuning loop; per-evaluation latency is the batch
/// round-trip split evenly over its trials.
fn drive_batched(client: &ah_core::server::HarmonyClient, iters: usize) -> Vec<f64> {
    let mut lat = Vec::with_capacity(iters);
    let mut done = 0usize;
    while done < iters {
        let want = BATCH.min(iters - done);
        let t0 = Instant::now();
        let (trials, finished) = client.fetch_batch(want).expect("fetch_batch");
        assert!(
            !finished && !trials.is_empty(),
            "bench session must not finish"
        );
        let reports: Vec<TrialReport> = trials
            .iter()
            .map(|t| TrialReport {
                iteration: t.iteration,
                cost: t.config.int("x").expect("x") as f64,
                wall_time: 0.0,
            })
            .collect();
        let n = reports.len();
        client.report_batch(reports).expect("report_batch");
        let per_eval = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
        lat.extend(std::iter::repeat_n(per_eval, n));
        done += n;
    }
    lat
}

fn run_inproc(
    cfg: &BenchConfig,
    shards: usize,
    batched: bool,
    store: Option<&SharedStore>,
) -> Scenario {
    let nonce = run_nonce();
    let telemetry = cfg.server_telemetry();
    let server = HarmonyServer::start_with_config(ServerConfig {
        shards,
        telemetry: telemetry.clone(),
        store: store.cloned(),
        ..Default::default()
    });
    let observer = observer_for(cfg, &telemetry, |addr| server.observe(addr));
    let barrier = Barrier::new(cfg.clients + 1);
    let mut wall_secs = 0.0;
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let client = server
                    .connect(format!("bench-{nonce}-{i}"))
                    .expect("connect");
                client
                    .add_param(Param::int("x", 0, 1_000_000, 1))
                    .expect("param");
                client
                    .seal(session_options(i as u64 + 1), StrategyKind::Random)
                    .expect("seal");
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    if batched {
                        drive_batched(&client, cfg.iters)
                    } else {
                        drive_serial(&client, cfg.iters)
                    }
                })
            })
            .collect();
        // Setup (connect/declare/seal) stays outside the timed window.
        barrier.wait();
        let t0 = Instant::now();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        wall_secs = t0.elapsed().as_secs_f64();
        out
    });
    if let Some(handle) = observer {
        handle.stop();
    }
    server.shutdown();
    let mode = if batched { "batched" } else { "serial" };
    summarize(
        format!("inproc/{mode}/{shards}-shard"),
        latencies.into_iter().flatten().collect(),
        wall_secs,
    )
}

fn run_tcp(cfg: &BenchConfig, batched: bool, store: Option<&SharedStore>) -> Scenario {
    let nonce = run_nonce();
    let telemetry = cfg.server_telemetry();
    let server = TcpHarmonyServer::bind_with_transport(
        "127.0.0.1:0",
        DEFAULT_MAX_CONNECTIONS,
        ServerConfig {
            telemetry: telemetry.clone(),
            store: store.cloned(),
            ..Default::default()
        },
        cfg.event_loop_transport(),
    )
    .expect("bind");
    let observer = observer_for(cfg, &telemetry, |a| server.observe(a));
    let addr = server.local_addr();
    let client_opts = TcpClientOptions {
        telemetry: cfg.server_telemetry(),
        ..Default::default()
    };
    let barrier = Barrier::new(cfg.clients + 1);
    let mut wall_secs = 0.0;
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let barrier = &barrier;
                let opts = client_opts.clone();
                s.spawn(move || {
                    let mut client =
                        TcpHarmonyClient::connect_with(addr, &format!("bench-{nonce}-{i}"), opts)
                            .expect("connect");
                    client
                        .add_param(Param::int("x", 0, 1_000_000, 1))
                        .expect("param");
                    client
                        .seal(session_options(i as u64 + 1), StrategyKind::Random)
                        .expect("seal");
                    barrier.wait();
                    let mut lat = Vec::with_capacity(cfg.iters);
                    let mut done = 0usize;
                    while done < cfg.iters {
                        if batched {
                            let want = BATCH.min(cfg.iters - done);
                            let t0 = Instant::now();
                            let (trials, finished) = client.fetch_batch(want).expect("fetch_batch");
                            assert!(!finished && !trials.is_empty());
                            let reports: Vec<TrialReport> = trials
                                .iter()
                                .map(|t| TrialReport {
                                    iteration: t.iteration,
                                    cost: t.config.int("x").expect("x") as f64,
                                    wall_time: 0.0,
                                })
                                .collect();
                            let n = reports.len();
                            client.report_batch(reports).expect("report_batch");
                            let per_eval = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
                            lat.extend(std::iter::repeat_n(per_eval, n));
                            done += n;
                        } else {
                            let t0 = Instant::now();
                            let (config, finished) = client.fetch().expect("fetch");
                            assert!(!finished);
                            client
                                .report(config.int("x").expect("x") as f64)
                                .expect("report");
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                            done += 1;
                        }
                    }
                    client.close();
                    lat
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        wall_secs = t0.elapsed().as_secs_f64();
        out
    });
    if let Some(handle) = observer {
        handle.stop();
    }
    server.shutdown();
    let mode = if batched { "batched" } else { "serial" };
    summarize(
        format!("tcp/{mode}"),
        latencies.into_iter().flatten().collect(),
        wall_secs,
    )
}

/// High-concurrency scenario: `swarm_clients` simultaneous nonblocking
/// clients, each tuning its own session, multiplexed over the readiness
/// event loop. This is the scale the thread-per-connection front-end could
/// not reach — the point is sustaining the concurrency at all; throughput
/// is reported but (being client-count-dependent) excluded from the
/// relative regression gate.
fn run_swarm(cfg: &BenchConfig, store: Option<&SharedStore>) -> Scenario {
    let nonce = run_nonce();
    let telemetry = cfg.server_telemetry();
    let server = TcpHarmonyServer::bind_with_transport(
        "127.0.0.1:0",
        DEFAULT_MAX_CONNECTIONS.max(cfg.swarm_clients + 16),
        ServerConfig {
            telemetry: telemetry.clone(),
            store: store.cloned(),
            ..Default::default()
        },
        cfg.event_loop_transport(),
    )
    .expect("bind");
    let observer = observer_for(cfg, &telemetry, |a| server.observe(a));
    let scripts: Vec<IndependentScript> = (0..cfg.swarm_clients)
        .map(|i| {
            IndependentScript::new(
                format!("swarm-{nonce}-{i}"),
                i as u64 + 1,
                cfg.swarm_iters,
                2,
            )
        })
        .collect();
    let driver_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4);
    let swarm = Swarm::connect(server.local_addr(), scripts, driver_threads).expect("swarm");
    // The sockets are established; wait for the loop threads to adopt them
    // (acceptance is asynchronous) before asserting on the ceiling count.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut connected = server.active_connections();
    while connected < cfg.swarm_clients && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        connected = server.active_connections();
    }
    eprintln!(
        "bench-server: swarm holds {connected} concurrent connections \
         across {driver_threads} driver threads"
    );
    assert!(
        connected >= cfg.swarm_clients,
        "swarm only established {connected}/{} connections",
        cfg.swarm_clients
    );
    let t0 = Instant::now();
    let mut scripts = swarm.drive();
    let wall_secs = t0.elapsed().as_secs_f64();
    if let Some(handle) = observer {
        handle.stop();
    }
    server.shutdown();
    let latencies: Vec<f64> = scripts
        .iter_mut()
        .flat_map(|s| s.take_latencies())
        .collect();
    summarize("tcp/swarm".to_string(), latencies, wall_secs)
}

/// Multi-tenant fair-dispatch scenario: `cfg.tenants` clients, each under
/// its own tenant id, tune concurrently over TCP. Deficit-round-robin
/// dispatch on the shards is what keeps any one tenant from starving the
/// rest, so besides the aggregate throughput the interesting number is the
/// *spread* of per-tenant p99 fetch latencies — reported alongside the
/// scenario row. Exempt from the relative gate for the same reason as the
/// swarm: the shape depends on the tenant count the run simulated.
fn run_tenants(cfg: &BenchConfig, store: Option<&SharedStore>) -> (Scenario, serde_json::Value) {
    let nonce = run_nonce();
    let telemetry = cfg.server_telemetry();
    let server = TcpHarmonyServer::bind_with_transport(
        "127.0.0.1:0",
        DEFAULT_MAX_CONNECTIONS.max(cfg.tenants + 16),
        ServerConfig {
            telemetry: telemetry.clone(),
            store: store.cloned(),
            ..Default::default()
        },
        cfg.event_loop_transport(),
    )
    .expect("bind");
    let observer = observer_for(cfg, &telemetry, |a| server.observe(a));
    let addr = server.local_addr();
    let barrier = Barrier::new(cfg.tenants + 1);
    let mut wall_secs = 0.0;
    let per_tenant: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.tenants)
            .map(|i| {
                let barrier = &barrier;
                let opts = TcpClientOptions {
                    tenant: format!("tenant-{i}"),
                    telemetry: cfg.server_telemetry(),
                    ..Default::default()
                };
                s.spawn(move || {
                    let mut client =
                        TcpHarmonyClient::connect_with(addr, &format!("tenant-{nonce}-{i}"), opts)
                            .expect("connect");
                    client
                        .add_param(Param::int("x", 0, 1_000_000, 1))
                        .expect("param");
                    client
                        .seal(session_options(i as u64 + 1), StrategyKind::Random)
                        .expect("seal");
                    barrier.wait();
                    let mut lat = Vec::with_capacity(cfg.iters);
                    let mut done = 0usize;
                    while done < cfg.iters {
                        let want = BATCH.min(cfg.iters - done);
                        let t0 = Instant::now();
                        let (trials, finished) = client.fetch_batch(want).expect("fetch_batch");
                        assert!(!finished && !trials.is_empty());
                        let reports: Vec<TrialReport> = trials
                            .iter()
                            .map(|t| TrialReport {
                                iteration: t.iteration,
                                cost: t.config.int("x").expect("x") as f64,
                                wall_time: 0.0,
                            })
                            .collect();
                        let n = reports.len();
                        client.report_batch(reports).expect("report_batch");
                        let per_eval = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
                        lat.extend(std::iter::repeat_n(per_eval, n));
                        done += n;
                    }
                    client.close();
                    lat
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect();
        wall_secs = t0.elapsed().as_secs_f64();
        out
    });
    if let Some(handle) = observer {
        handle.stop();
    }
    server.shutdown();
    let p99s: Vec<f64> = per_tenant
        .iter()
        .map(|lat| {
            let mut sorted = lat.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            percentile(&sorted, 0.99)
        })
        .collect();
    let worst = p99s.iter().cloned().fold(0.0f64, f64::max);
    let best = p99s.iter().cloned().fold(f64::INFINITY, f64::min);
    let fairness = serde_json::json!({
        "tenants": cfg.tenants,
        "per_tenant_p99_us": p99s,
        "worst_p99_us": worst,
        "best_p99_us": best,
        // Worst-over-best per-tenant p99: 1.0 is perfectly fair dispatch;
        // a starved tenant shows up as a large ratio.
        "p99_spread": if best > 0.0 { worst / best } else { 0.0 },
    });
    let scenario = summarize(
        "tcp/tenants".to_string(),
        per_tenant.into_iter().flatten().collect(),
        wall_secs,
    );
    (scenario, fairness)
}

/// Warm-vs-cold cache demo: one bounded tuning session run twice under the
/// same application label with a deliberately slow (~50µs spin) objective.
/// The cold pass measures everything; the warm pass is answered from the
/// store without the objective ever running, which is the point of the
/// subsystem — serving a hit beats re-measurement by orders of magnitude.
fn store_cache_demo(cfg: &BenchConfig, store: &SharedStore) -> serde_json::Value {
    let evals = cfg.iters;
    let label = format!("store-demo-{}", run_nonce());
    let pass = |tag: &str| -> (f64, usize) {
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 2,
            telemetry: cfg.server_telemetry(),
            store: Some(store.clone()),
            ..Default::default()
        });
        let client = server.connect(label.clone()).expect("connect");
        client
            .add_param(Param::int("x", 0, 1_000_000, 1))
            .expect("param");
        client
            .seal(
                SessionOptions {
                    max_evaluations: evals,
                    seed: 4242,
                    ..Default::default()
                },
                StrategyKind::Random,
            )
            .expect("seal");
        let t0 = Instant::now();
        let mut measured = 0usize;
        loop {
            let (trials, finished) = client.fetch_batch(BATCH).expect("fetch_batch");
            if finished {
                break;
            }
            let reports: Vec<TrialReport> = trials
                .iter()
                .map(|t| {
                    measured += 1;
                    let spin = Instant::now();
                    while spin.elapsed() < Duration::from_micros(50) {}
                    TrialReport {
                        iteration: t.iteration,
                        cost: (t.config.int("x").expect("x") % 1000) as f64,
                        wall_time: 0.0,
                    }
                })
                .collect();
            client.report_batch(reports).expect("report_batch");
        }
        let wall = t0.elapsed().as_secs_f64();
        server.shutdown();
        eprintln!("store demo {tag}: {measured}/{evals} measured in {wall:.3}s");
        (wall, measured)
    };
    let (cold_secs, cold_measured) = pass("cold");
    let (warm_secs, warm_measured) = pass("warm");
    serde_json::json!({
        "evaluations": evals,
        "cold_secs": cold_secs,
        "cold_measured": cold_measured,
        "warm_secs": warm_secs,
        "warm_measured": warm_measured,
        "warm_speedup": cold_secs / warm_secs.max(1e-9),
    })
}

/// Run the full scenario matrix and return the machine-readable report.
pub fn run(cfg: &BenchConfig) -> serde_json::Value {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sharded = host_cores.clamp(2, 8);
    eprintln!(
        "bench-server: {} clients x {} evaluations, host cores: {host_cores}, telemetry: {}, store: {}",
        cfg.clients,
        cfg.iters,
        if cfg.telemetry { "on" } else { "off" },
        cfg.store
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "off".into()),
    );
    let store = cfg
        .store
        .as_deref()
        .map(|p| SharedStore::open(p).expect("open bench store"));

    let mut scenarios = vec![
        run_inproc(cfg, 1, false, store.as_ref()),
        run_inproc(cfg, sharded, false, store.as_ref()),
        run_inproc(cfg, 1, true, store.as_ref()),
        run_inproc(cfg, sharded, true, store.as_ref()),
        run_tcp(cfg, false, store.as_ref()),
        run_tcp(cfg, true, store.as_ref()),
        run_swarm(cfg, store.as_ref()),
    ];
    let fairness = (cfg.tenants > 0).then(|| {
        let (scenario, fairness) = run_tenants(cfg, store.as_ref());
        scenarios.push(scenario);
        fairness
    });

    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "scenario", "ops/sec", "p50 (us)", "p99 (us)"
    );
    for s in &scenarios {
        println!(
            "{:<28} {:>12.0} {:>12.1} {:>12.1}",
            s.name, s.ops_per_sec, s.p50_us, s.p99_us
        );
    }

    let by_name = |n: &str| scenarios.iter().find(|s| s.name == n);
    let serial_1 = by_name("inproc/serial/1-shard").map(|s| s.ops_per_sec);
    let serial_n = scenarios
        .iter()
        .find(|s| s.name.starts_with("inproc/serial/") && !s.name.ends_with("/1-shard"))
        .map(|s| s.ops_per_sec);
    let batched_n = scenarios
        .iter()
        .find(|s| s.name.starts_with("inproc/batched/") && !s.name.ends_with("/1-shard"))
        .map(|s| s.ops_per_sec);
    let speedup_sharded = match (serial_1, serial_n) {
        (Some(a), Some(b)) if a > 0.0 => b / a,
        _ => 0.0,
    };
    let speedup_batched = match (serial_1, batched_n) {
        (Some(a), Some(b)) if a > 0.0 => b / a,
        _ => 0.0,
    };
    println!(
        "sharded vs single dispatcher: {speedup_sharded:.2}x; \
         sharded+batched vs single serial: {speedup_batched:.2}x"
    );
    if host_cores == 1 {
        println!(
            "note: single-core host — shard workers cannot run in parallel, \
             so the sharding speedup reflects scheduling overhead only."
        );
    }

    let mut report = serde_json::json!({
        "host_cores": host_cores,
        "clients": cfg.clients,
        "swarm_clients": cfg.swarm_clients,
        "iterations_per_client": cfg.iters,
        "telemetry": cfg.telemetry,
        "batch": BATCH,
        "shards_tested": [1, sharded],
        "scenarios": scenarios.iter().map(|s| serde_json::json!({
            "name": s.name.clone(),
            "total_evals": s.total_evals,
            "ops_per_sec": s.ops_per_sec,
            "p50_us": s.p50_us,
            "p99_us": s.p99_us,
        })).collect::<Vec<_>>(),
        "speedup_sharded_vs_single_dispatcher": speedup_sharded,
        "speedup_sharded_batched_vs_single_serial": speedup_batched,
    });
    if let Some(fairness) = fairness {
        if let serde_json::Value::Object(entries) = &mut report {
            entries.push(("tenants".to_string(), fairness));
        }
    }
    if let Some(store) = &store {
        let demo = store_cache_demo(cfg, store);
        let _ = store.flush();
        if let serde_json::Value::Object(entries) = &mut report {
            entries.push(("store".to_string(), demo));
        }
    }
    report
}

/// Fold the host-dependent shard count out of a scenario name so reports
/// from machines with different core counts stay comparable:
/// `inproc/serial/6-shard` and `inproc/serial/4-shard` both become
/// `inproc/serial/N-shard` (the 1-shard baseline keeps its name).
fn canonical_name(name: &str) -> String {
    match name.strip_suffix("-shard") {
        Some(prefix) if !prefix.ends_with("/1") => {
            let (head, _) = prefix.rsplit_once('/').unwrap_or(("", prefix));
            format!("{head}/N-shard")
        }
        _ => name.to_string(),
    }
}

/// Relative throughput of every scenario in a report, normalized to the
/// in-process serial single-shard baseline of the *same* report. Absolute
/// ops/sec vary wildly across CI runners; the ratios are the stable signal
/// (how much sharding/batching/TCP costs or buys on this host).
fn relative_throughput(report: &serde_json::Value) -> Option<Vec<(String, f64)>> {
    let scenarios = report.get("scenarios")?.as_array()?;
    let baseline = scenarios.iter().find_map(|s| {
        (s.get("name")?.as_str()? == "inproc/serial/1-shard").then(|| s.get("ops_per_sec"))?
    })?;
    let baseline = baseline.as_f64().filter(|v| *v > 0.0)?;
    let mut out = Vec::new();
    for s in scenarios {
        let name = canonical_name(s.get("name")?.as_str()?);
        if name == "tcp/swarm" || name == "tcp/tenants" {
            // The swarm's ratio depends on how many clients it simulated,
            // and full runs (1000) and quick gate runs (200) deliberately
            // differ — comparing the ratios would gate on client count,
            // not on regressions. Its guarantee (sustaining the swarm at
            // all) is asserted inside `run_swarm` instead. The tenants
            // scenario is optional (`--tenants N`) and likewise shaped by
            // its count, so it is recorded but never gated.
            continue;
        }
        let ops = s.get("ops_per_sec")?.as_f64()?;
        out.push((name, ops / baseline));
    }
    Some(out)
}

/// Compare a fresh report against a committed baseline; returns the list
/// of regressions (empty = pass). A scenario regresses when its relative
/// throughput falls more than `tolerance` (a fraction, e.g. `0.25`) below
/// the baseline's relative throughput for the same canonical scenario.
/// Scenarios present on only one side are reported as failures too — a
/// silently vanished scenario must not read as "no regression".
pub fn check_regression(
    current: &serde_json::Value,
    baseline: &serde_json::Value,
    tolerance: f64,
) -> Vec<String> {
    let Some(cur) = relative_throughput(current) else {
        return vec!["current report is malformed (no scenarios/baseline ops)".into()];
    };
    let Some(base) = relative_throughput(baseline) else {
        return vec!["baseline report is malformed (no scenarios/baseline ops)".into()];
    };
    let mut failures = Vec::new();
    println!(
        "{:<28} {:>10} {:>10} {:>9}",
        "scenario (vs 1-shard serial)", "baseline", "current", "change"
    );
    for (name, base_ratio) in &base {
        let Some((_, cur_ratio)) = cur.iter().find(|(n, _)| n == name) else {
            failures.push(format!("scenario `{name}` missing from current run"));
            continue;
        };
        let change = cur_ratio / base_ratio - 1.0;
        println!(
            "{name:<28} {base_ratio:>9.2}x {cur_ratio:>9.2}x {change:>+8.1}%",
            change = change * 100.0
        );
        if *cur_ratio < base_ratio * (1.0 - tolerance) {
            failures.push(format!(
                "`{name}` relative throughput {cur_ratio:.2}x is more than \
                 {:.0}% below baseline {base_ratio:.2}x",
                tolerance * 100.0
            ));
        }
    }
    for (name, _) in &cur {
        if !base.iter().any(|(n, _)| n == name) {
            failures.push(format!("scenario `{name}` missing from baseline"));
        }
    }
    failures
}

/// Intersect two attempts' regression failures by scenario: keep the
/// *current* attempt's message for every scenario that also failed in the
/// previous attempts. One-sided noise clears a scenario in some attempt;
/// a genuine regression fails it in all of them, so only scenarios in the
/// intersection are verdicts.
pub fn intersect_failures(previous: &[String], current: &[String]) -> Vec<String> {
    fn scenario_key(msg: &str) -> &str {
        // check_regression quotes the scenario name in backticks; messages
        // without one (e.g. "malformed report") are keyed by full text.
        msg.split('`').nth(1).unwrap_or(msg)
    }
    current
        .iter()
        .filter(|cur| {
            previous
                .iter()
                .any(|prev| scenario_key(prev) == scenario_key(cur))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bench_produces_sane_numbers() {
        let cfg = BenchConfig {
            clients: 3,
            iters: 20,
            telemetry: true,
            store: None,
            // Exercise the observer across every scenario: each run binds,
            // serves, and tears down the endpoint without skewing numbers.
            observe: Some("127.0.0.1:0".into()),
            swarm_clients: 24,
            swarm_iters: 4,
            loop_threads: 2,
            tenants: 0,
        };
        let report = run(&cfg);
        assert_eq!(report["clients"].as_u64(), Some(3));
        let scenarios = report["scenarios"].as_array().unwrap();
        assert_eq!(scenarios.len(), 7);
        for s in scenarios {
            let want = if s["name"].as_str() == Some("tcp/swarm") {
                24 * 4
            } else {
                60
            };
            assert_eq!(s["total_evals"].as_u64(), Some(want), "{s:?}");
            assert!(s["ops_per_sec"].as_f64().unwrap() > 0.0);
            assert!(s["p99_us"].as_f64().unwrap() >= s["p50_us"].as_f64().unwrap());
        }
        assert!(report.get("store").is_none());
    }

    #[test]
    fn store_enabled_bench_reports_a_warm_demo() {
        let dir = std::env::temp_dir().join(format!("ah-bench-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.store");
        let _ = std::fs::remove_file(&path);
        let cfg = BenchConfig {
            clients: 2,
            iters: 25,
            telemetry: false,
            store: Some(path),
            observe: None,
            swarm_clients: 8,
            swarm_iters: 2,
            loop_threads: 0,
            tenants: 0,
        };
        let report = run(&cfg);
        assert_eq!(report["scenarios"].as_array().unwrap().len(), 7);
        let demo = &report["store"];
        assert_eq!(demo["cold_measured"].as_u64(), Some(25));
        // The warm pass is answered from the store: (almost) nothing runs.
        assert!(demo["warm_measured"].as_u64().unwrap() <= 2, "{demo:?}");
        assert!(demo["warm_speedup"].as_f64().unwrap() > 1.0, "{demo:?}");
    }

    #[test]
    fn tenant_scenario_reports_fairness_and_stays_ungated() {
        let cfg = BenchConfig {
            clients: 2,
            iters: 20,
            telemetry: false,
            store: None,
            observe: None,
            swarm_clients: 6,
            swarm_iters: 2,
            loop_threads: 0,
            tenants: 3,
        };
        let report = run(&cfg);
        let scenarios = report["scenarios"].as_array().unwrap();
        assert_eq!(scenarios.len(), 8);
        let tenants = scenarios
            .iter()
            .find(|s| s["name"].as_str() == Some("tcp/tenants"))
            .expect("tcp/tenants scenario");
        assert_eq!(tenants["total_evals"].as_u64(), Some(3 * 20));
        let fairness = &report["tenants"];
        assert_eq!(fairness["tenants"].as_u64(), Some(3));
        assert_eq!(fairness["per_tenant_p99_us"].as_array().unwrap().len(), 3);
        assert!(fairness["p99_spread"].as_f64().unwrap() >= 1.0);
        // Exempt from the relative gate: a baseline without the scenario
        // neither fails nor reports it missing.
        let base = serde_json::json!({
            "scenarios": [{"name": "inproc/serial/1-shard", "ops_per_sec": 1000.0}],
        });
        let cur = serde_json::json!({
            "scenarios": [
                {"name": "inproc/serial/1-shard", "ops_per_sec": 1000.0},
                {"name": "tcp/tenants", "ops_per_sec": 50.0},
            ],
        });
        assert!(check_regression(&cur, &base, 0.25).is_empty());
    }

    #[test]
    fn canonical_names_fold_shard_counts() {
        assert_eq!(
            canonical_name("inproc/serial/1-shard"),
            "inproc/serial/1-shard"
        );
        assert_eq!(
            canonical_name("inproc/serial/6-shard"),
            "inproc/serial/N-shard"
        );
        assert_eq!(
            canonical_name("inproc/batched/4-shard"),
            "inproc/batched/N-shard"
        );
        assert_eq!(canonical_name("tcp/serial"), "tcp/serial");
    }

    fn fake_report(ratios: &[(&str, f64)]) -> serde_json::Value {
        serde_json::json!({
            "scenarios": ratios.iter().map(|(name, r)| serde_json::json!({
                "name": name,
                "ops_per_sec": r * 10_000.0,
            })).collect::<Vec<_>>(),
        })
    }

    #[test]
    fn identical_reports_pass_the_regression_gate() {
        let report = fake_report(&[
            ("inproc/serial/1-shard", 1.0),
            ("inproc/serial/4-shard", 2.0),
            ("tcp/serial", 0.3),
        ]);
        assert!(check_regression(&report, &report, 0.25).is_empty());
    }

    #[test]
    fn absolute_speed_changes_do_not_fail_only_ratio_shifts_do() {
        let base = fake_report(&[
            ("inproc/serial/1-shard", 1.0),
            ("inproc/serial/8-shard", 2.0),
        ]);
        // Twice as fast overall (different runner), same ratios: fine.
        let faster = fake_report(&[
            ("inproc/serial/1-shard", 2.0),
            ("inproc/serial/2-shard", 4.0),
        ]);
        assert!(check_regression(&faster, &base, 0.25).is_empty());
        // Sharding collapsed from 2.0x to 1.2x relative: that is a regression.
        let collapsed = fake_report(&[
            ("inproc/serial/1-shard", 1.0),
            ("inproc/serial/8-shard", 1.2),
        ]);
        let failures = check_regression(&collapsed, &base, 0.25);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("N-shard"), "{failures:?}");
    }

    #[test]
    fn swarm_scenario_is_exempt_from_the_relative_gate() {
        // Full runs and quick gate runs deliberately simulate different
        // swarm sizes, so a wildly different swarm ratio must neither fail
        // the gate nor count as a missing scenario.
        let base = fake_report(&[
            ("inproc/serial/1-shard", 1.0),
            ("tcp/serial", 0.4),
            ("tcp/swarm", 0.9),
        ]);
        let cur = fake_report(&[
            ("inproc/serial/1-shard", 1.0),
            ("tcp/serial", 0.4),
            ("tcp/swarm", 0.05),
        ]);
        assert!(check_regression(&cur, &base, 0.25).is_empty());
        let no_swarm = fake_report(&[("inproc/serial/1-shard", 1.0), ("tcp/serial", 0.4)]);
        assert!(check_regression(&no_swarm, &base, 0.25).is_empty());
    }

    #[test]
    fn missing_scenarios_are_failures() {
        let base = fake_report(&[("inproc/serial/1-shard", 1.0), ("tcp/serial", 0.4)]);
        let cur = fake_report(&[("inproc/serial/1-shard", 1.0)]);
        let failures = check_regression(&cur, &base, 0.25);
        assert!(
            failures.iter().any(|f| f.contains("missing from current")),
            "{failures:?}"
        );
    }

    #[test]
    fn failure_intersection_is_per_scenario() {
        let a = vec![
            "`tcp/serial` relative throughput 0.20x is more than 25% below baseline 0.31x"
                .to_string(),
            "`inproc/batched/1-shard` relative throughput 2.00x is more than 25% below \
             baseline 5.00x"
                .to_string(),
        ];
        let b = vec![
            "`tcp/serial` relative throughput 0.21x is more than 25% below baseline 0.31x"
                .to_string(),
        ];
        // Only the scenario failing in *both* attempts survives, keeping
        // the newer message; the one that cleared in attempt 2 is noise.
        let both = intersect_failures(&a, &b);
        assert_eq!(both.len(), 1, "{both:?}");
        assert!(both[0].contains("tcp/serial") && both[0].contains("0.21x"));
        // A scenario that only appears in the newer attempt is noise too.
        assert!(intersect_failures(&b, &a).len() == 1);
        assert!(intersect_failures(&[], &b).is_empty());
        assert!(intersect_failures(&b, &[]).is_empty());
    }
}

//! `repro serve`: a long-running federated tuning server.
//!
//! ```text
//! repro serve --store PATH [--listen ADDR] [--observe ADDR]
//!             [--sync-peer ADDR[,ADDR...]] [--sync-interval-ms N]
//!             [--shards N] [--tenant-max-sessions N]
//!             [--tenant-max-inflight N] [--run-for-ms N]
//!             [--slo RULE]... [--sample-interval-ms N]
//! ```
//!
//! Boots a TCP Harmony server backed by `--store` with the observer HTTP
//! plane up, prints both bound addresses on stdout (one `listen ADDR` /
//! `observe ADDR` line each, so scripts can scrape the OS-assigned
//! ports), then parks until killed. Each `--sync-peer` names another
//! server's *observe* address; an anti-entropy thread pulls its
//! `/store/log` every `--sync-interval-ms` and merges the records, which
//! is how a second server warm-starts campaigns it never measured. The
//! store is flushed on a short idle cadence so a `kill` loses at most the
//! last tick.
//!
//! A background sampler snapshots every telemetry counter, gauge, and
//! histogram into a bounded time-series ring once per
//! `--sample-interval-ms`. The ring feeds `/metrics/history` (windowed
//! deltas and rates) and `/healthz`, whose SLO rules come from repeated
//! `--slo "metric op threshold[@window_s]"` flags (a built-in default
//! rule set is used when none are given).

use ah_core::server::{ServerConfig, TcpHarmonyServer};
use ah_core::store::SharedStore;
use ah_core::telemetry::slo::{self, SloRule};
use ah_core::telemetry::timeseries::TimeSeries;
use ah_core::telemetry::Telemetry;
use std::path::PathBuf;
use std::time::Duration;

/// Settings for one `repro serve` process.
pub struct ServeConfig {
    /// Performance database backing the server.
    pub store: PathBuf,
    /// TCP listen address for tuning clients (`0` port picks free).
    pub listen: String,
    /// HTTP observe address (`/metrics`, `/status`, `/store/log`).
    pub observe: String,
    /// Peer observe addresses to pull `/store/log` from.
    pub sync_peers: Vec<String>,
    /// Anti-entropy pull period (zero = server default).
    pub sync_interval: Duration,
    /// Shard workers.
    pub shards: usize,
    /// Per-tenant concurrent session cap.
    pub tenant_max_sessions: Option<usize>,
    /// Per-tenant in-flight trial cap.
    pub tenant_max_inflight: Option<usize>,
    /// Exit cleanly after this long (zero = run until killed); gives
    /// scripted harnesses a bounded lifetime without signal plumbing.
    pub run_for: Duration,
    /// SLO rule specs for `/healthz` (empty = built-in default rules).
    pub slo_rules: Vec<String>,
    /// Time-series sampler period (zero = default one second).
    pub sample_interval: Duration,
}

/// Parse `--slo` rule specs, exiting with a message on a bad spec.
fn parse_slo_rules(specs: &[String]) -> Result<Vec<SloRule>, String> {
    if specs.is_empty() {
        return Ok(slo::default_rules());
    }
    slo::parse_rules(specs)
}

/// Run the server; returns the process exit code.
pub fn run(cfg: &ServeConfig) -> i32 {
    let slo_rules = match parse_slo_rules(&cfg.slo_rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bad --slo rule: {e}");
            return 2;
        }
    };
    let telemetry = Telemetry::enabled();
    let store = match SharedStore::open_with(&cfg.store, telemetry.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open store {}: {e}", cfg.store.display());
            return 2;
        }
    };
    let series = TimeSeries::new(telemetry.clone());
    let server = match TcpHarmonyServer::bind_with(
        &cfg.listen,
        ah_core::server::tcp::DEFAULT_MAX_CONNECTIONS,
        ServerConfig {
            shards: cfg.shards.max(1),
            telemetry: telemetry.clone(),
            store: Some(store.clone()),
            sync_peers: cfg.sync_peers.clone(),
            sync_interval: cfg.sync_interval,
            tenant_max_sessions: cfg.tenant_max_sessions,
            tenant_max_inflight: cfg.tenant_max_inflight,
            timeseries: Some(series.clone()),
            slo_rules,
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", cfg.listen);
            return 2;
        }
    };
    let observe = match server.observe(&cfg.observe) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind observe {}: {e}", cfg.observe);
            return 2;
        }
    };
    let interval = if cfg.sample_interval.is_zero() {
        ah_core::telemetry::timeseries::DEFAULT_SAMPLE_INTERVAL
    } else {
        cfg.sample_interval
    };
    let mut sampler = series.start_sampler(interval);
    // Machine-scrapable address lines: harness scripts read these to learn
    // the OS-assigned ports.
    println!("listen {}", server.local_addr());
    println!("observe {}", observe.addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    eprintln!(
        "serving store {} ({} shards, {} sync peer(s))",
        cfg.store.display(),
        cfg.shards.max(1),
        cfg.sync_peers.len()
    );

    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(200));
        // Durability cadence: push appended records to disk so a plain
        // kill loses at most the records of the last tick.
        let _ = store.flush();
        if !cfg.run_for.is_zero() && started.elapsed() >= cfg.run_for {
            break;
        }
    }
    sampler.stop();
    observe.stop();
    server.shutdown();
    let _ = store.flush();
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_core::server::observe::http_get;
    use ah_core::server::tcp::{TcpClientOptions, TcpHarmonyClient};

    #[test]
    fn serve_prints_addresses_and_answers_clients() {
        let dir = std::env::temp_dir();
        let store = dir.join(format!("ah-serve-cli-{}.store", std::process::id()));
        let _ = std::fs::remove_file(&store);
        // Bind in-process on free ports, then poke both planes.
        let telemetry = Telemetry::enabled();
        let shared = SharedStore::open_with(&store, telemetry.clone()).unwrap();
        let server = TcpHarmonyServer::bind_with(
            "127.0.0.1:0",
            16,
            ServerConfig {
                shards: 1,
                telemetry,
                store: Some(shared.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let observe = server.observe("127.0.0.1:0").unwrap();
        let mut client = TcpHarmonyClient::connect_with(
            server.local_addr(),
            "serve-test",
            TcpClientOptions::default(),
        )
        .unwrap();
        client.leave().unwrap();
        let (code, body) = http_get(&observe.addr().to_string(), "/status").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("tenants"), "{body}");
        observe.stop();
        server.shutdown();
        let _ = std::fs::remove_file(&store);
    }

    #[test]
    fn slo_specs_default_and_reject_garbage() {
        assert_eq!(parse_slo_rules(&[]).unwrap(), slo::default_rules());
        let custom = parse_slo_rules(&["open_spans<5@10".to_string()]).unwrap();
        assert_eq!(custom.len(), 1);
        assert_eq!(custom[0].metric, "open_spans");
        assert!(parse_slo_rules(&["no operator here".to_string()]).is_err());
    }
}

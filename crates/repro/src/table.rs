//! Plain-text table rendering for experiment reports.

/// Render an ASCII table with a header row.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let sep = |c: char, junction: char| {
        let mut s = String::new();
        s.push(junction);
        for w in &widths {
            for _ in 0..w + 2 {
                s.push(c);
            }
            s.push(junction);
        }
        s.push('\n');
        s
    };
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (w, cell) in widths.iter().zip(cells) {
            s.push(' ');
            s.push_str(cell);
            for _ in 0..w - cell.chars().count() {
                s.push(' ');
            }
            s.push_str(" |");
        }
        s.push('\n');
        s
    };
    let mut out = String::new();
    out.push_str(&sep('-', '+'));
    out.push_str(&line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push_str(&sep('=', '+'));
    for row in rows {
        out.push_str(&line(row));
    }
    out.push_str(&sep('-', '+'));
    out
}

/// Format seconds with sensible precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.1}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

/// Format a percentage.
pub fn pct(p: f64) -> String {
    format!("{p:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        // All lines have equal width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{t}");
        assert!(t.contains("| longer |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(1480.31), "1480.3");
        assert_eq!(secs(55.064), "55.06");
        assert_eq!(secs(0.12345), "0.1235");
        assert_eq!(pct(57.94), "57.9%");
    }
}

//! CLI driving the paper-reproduction experiments.
//!
//! ```text
//! repro list                 # list experiment ids
//! repro all [--quick]        # run every experiment
//! repro fig4 table1 [...]    # run specific experiments
//! repro bench-server         # tuning-server throughput matrix
//! options:
//!   --quick        shrink workloads (smoke-test mode)
//!   --json PATH    also dump machine-readable results
//!   --clients N    bench-server: concurrent clients (default 16)
//!   --iters N      bench-server: evaluations per client (default 200)
//! ```

use ah_repro::{all_experiments, Experiment};
use std::io::Write;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn bench_server(args: &[String], json_path: Option<String>) {
    let parse = |flag: &str, default: usize| {
        flag_value(args, flag)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("{flag} expects a positive integer, got `{v}`");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    };
    let defaults = ah_repro::bench_server::BenchConfig::default();
    let cfg = ah_repro::bench_server::BenchConfig {
        clients: parse("--clients", defaults.clients).max(1),
        iters: parse("--iters", defaults.iters).max(1),
    };
    let report = ah_repro::bench_server::run(cfg);
    let path = json_path.unwrap_or_else(|| "BENCH_server.json".into());
    let blob = serde_json::to_string_pretty(&report).expect("report serializes");
    let mut f = std::fs::File::create(&path).expect("create json output");
    f.write_all(blob.as_bytes()).expect("write json output");
    f.write_all(b"\n").expect("write json output");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = flag_value(&args, "--json");
    let flag_values: Vec<Option<String>> = ["--json", "--clients", "--iters"]
        .iter()
        .map(|f| flag_value(&args, f))
        .collect();
    let selectors: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.iter().any(|v| v.as_deref() == Some(a.as_str())))
        .collect();

    if selectors.iter().any(|s| s.as_str() == "bench-server") {
        bench_server(&args, json_path);
        return;
    }

    if selectors.iter().any(|s| s.as_str() == "list") {
        for e in all_experiments() {
            println!("{:20} {}", e.id(), e.title());
        }
        return;
    }

    let run_all = selectors.is_empty() || selectors.iter().any(|s| s.as_str() == "all");
    let experiments: Vec<Box<dyn Experiment>> = if run_all {
        all_experiments()
    } else {
        let mut picked = Vec::new();
        for s in &selectors {
            match ah_repro::experiment::by_id(s) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("unknown experiment `{s}`; try `repro list`");
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    println!(
        "# Active Harmony (HPDC'06) reproduction — {} mode\n",
        if quick { "quick" } else { "full" }
    );
    let mut reports = Vec::new();
    let mut failures = 0;
    for e in experiments {
        eprintln!("running {} ...", e.id());
        let start = std::time::Instant::now();
        let report = e.run(quick);
        let elapsed = start.elapsed();
        println!("{}", report.render());
        println!("(completed in {:.1}s)\n", elapsed.as_secs_f64());
        if !report.all_ok() {
            failures += 1;
        }
        reports.push(report);
    }
    println!(
        "Summary: {}/{} experiments matched the paper's shape.",
        reports.len() - failures,
        reports.len()
    );

    if let Some(path) = json_path {
        let blob = serde_json::to_string_pretty(&reports).expect("reports serialize");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(blob.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

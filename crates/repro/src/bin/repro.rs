//! CLI driving the paper-reproduction experiments.
//!
//! ```text
//! repro list                 # list experiment ids
//! repro all [--quick]        # run every experiment
//! repro fig4 table1 [...]    # run specific experiments
//! repro bench-server         # tuning-server throughput matrix
//! repro fault-wal            # crash-safe tuning run through the WAL
//! repro metrics              # Prometheus metrics of a faulted tuning run
//! repro trace                # per-trial JSON event timeline of the same run
//! repro observe              # same faulted run with a live HTTP endpoint
//! repro watch                # poll a live server's /status, line per tick
//! repro fleet                # per-peer table from a server's /fleet view
//! repro store <sub>          # persistent performance DB:
//!                            #   stats | inspect | compact | gc | merge | demo
//! repro space <sub>          # search-space compiler:
//!                            #   list | stats | fingerprint | bench
//! repro serve                # long-running federated TCP tuning server
//! repro leaderboard          # race all strategies by evaluations-to-target
//! repro meta                 # meta-tuning: tune a strategy's hyper-params
//! options:
//!   --quick            shrink workloads (smoke-test mode)
//!   --json PATH        also dump machine-readable results
//!   --store PATH       performance database; experiments that support
//!                      warm-starting reuse it, bench-server adds a cache
//!                      demo, repro store requires it
//!   --clients N        bench-server: concurrent clients (default 16)
//!   --iters N          bench-server: evaluations per client (default 200)
//!   --swarm N          bench-server: nonblocking clients of the tcp/swarm
//!                      high-concurrency scenario (default 1000)
//!   --swarm-iters N    bench-server: evaluations per swarm client
//!                      (default 8)
//!   --loop-threads N   bench-server: event-loop threads of the TCP
//!                      servers (default 0 = auto)
//!   --check PATH       bench-server: fail on regression vs this baseline
//!   --tolerance F      bench-server: allowed relative drop (default 0.25)
//!   --attempts N       bench-server: gate retries before failing; a
//!                      scenario regresses only if it fails every attempt
//!                      (default 3)
//!   --telemetry        bench-server: run with telemetry recording enabled
//!   --observe ADDR     bench-server / observe: serve /metrics and /status
//!                      on ADDR while running (observe default 127.0.0.1:0)
//!   --wal PATH         fault-wal: write-ahead log location (required)
//!   --out PATH         fault-wal / store demo: results JSON (required for
//!                      fault-wal); metrics/trace: output (default stdout)
//!   --cache-out PATH   store demo: cache-accounting JSON
//!   --app LABEL        store inspect/gc: application label filter
//!   --limit N          store inspect: max records shown (default 20)
//!   --resume           fault-wal: resume from an existing log
//!   --crash-after N    fault-wal / store demo: abort() after N evaluations
//!   --eval-delay-ms N  fault-wal / store demo: sleep per evaluation
//!                      (for SIGKILL tests)
//!   --format F         trace: `events` (default) or `chrome` (Perfetto-
//!                      loadable trace-event JSON of the run's spans)
//!   --from ADDR        metrics/trace: pull from a live server's endpoint
//!                      instead of running a campaign; fleet: any member
//!                      of the fleet; watch: the server
//!                      to poll (required)
//!   --delay-ms N       observe: sleep per campaign tick (default 25)
//!   --linger-ms N      observe: keep the endpoint up after the campaign
//!                      finishes (default 2000)
//!   --interval-ms N    watch: poll interval (default 1000)
//!   --ticks N          watch: stop after N polls (default 0 = poll until
//!                      every session reports a stop reason)
//!   --from PATH        store merge: the peer database folded into --store
//!   --dry-run          store merge: report what would merge, write nothing
//!   --connect ADDR     store demo: drive the campaign over TCP against a
//!                      live server instead of an in-process one
//!   --listen ADDR      serve: TCP client address (default 127.0.0.1:0)
//!   --sync-peer ADDRS  serve: comma-separated peer observe addresses to
//!                      pull /store/log from (anti-entropy)
//!   --sync-interval-ms N  serve: anti-entropy pull period (default 500)
//!   --shards N         serve: shard workers (default 2)
//!   --tenant-max-sessions N  serve: per-tenant concurrent session cap
//!   --tenant-max-inflight N  serve: per-tenant in-flight trial cap
//!   --slo RULE         serve: /healthz SLO rule `metric op thresh[@win_s]`,
//!                      repeatable (default: built-in rule set)
//!   --sample-interval-ms N  serve: time-series sampler period
//!                      (default 1000)
//!   --run-for-ms N     serve: exit cleanly after N ms (default 0 = run
//!                      until killed)
//!   --tenants N        bench-server: add the fair-dispatch scenario with
//!                      N competing tenants (default 0 = off)
//!   --seeds N          leaderboard: seeded campaigns averaged per pairing
//!                      (default 3, 2 with --quick)
//!   --expect-memoized  meta: fail unless every campaign replays from the
//!                      store (CI warm-start check; needs --store)
//!   --space NAME       space: which synthetic space (`repro space list`)
//!   --points N         space bench: valid points to stream (default 1e6,
//!                      1e5 with --quick)
//!   --chunk N          space bench: chunk size (default 65536)
//!   --max-seconds S    space bench: fail if compile+stream exceeds S
//!                      (default 0 = no bound)
//! ```

use ah_repro::{all_experiments, Experiment, RunCtx};
use std::io::Write;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Every value of a repeatable flag, in order (`--slo A --slo B`).
fn repeated_flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .collect()
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> usize {
    flag_value(args, flag)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a non-negative integer, got `{v}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn bench_server(args: &[String], json_path: Option<String>, quick: bool) {
    let defaults = if quick {
        ah_repro::bench_server::BenchConfig::quick()
    } else {
        ah_repro::bench_server::BenchConfig::default()
    };
    let cfg = ah_repro::bench_server::BenchConfig {
        clients: parse_usize(args, "--clients", defaults.clients).max(1),
        iters: parse_usize(args, "--iters", defaults.iters).max(1),
        telemetry: args.iter().any(|a| a == "--telemetry"),
        store: flag_value(args, "--store").map(Into::into),
        observe: flag_value(args, "--observe"),
        swarm_clients: parse_usize(args, "--swarm", defaults.swarm_clients).max(1),
        swarm_iters: parse_usize(args, "--swarm-iters", defaults.swarm_iters).max(1),
        loop_threads: parse_usize(args, "--loop-threads", defaults.loop_threads),
        tenants: parse_usize(args, "--tenants", defaults.tenants),
    };
    // Regression gate: compare against a committed baseline instead of
    // overwriting it (a checking run must never move its own goalposts).
    if let Some(baseline_path) = flag_value(args, "--check") {
        let tolerance = flag_value(args, "--tolerance")
            .map(|v| {
                v.parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance expects a fraction in [0, 1), got `{v}`");
                        std::process::exit(2);
                    })
            })
            .unwrap_or(0.25);
        let attempts = parse_usize(args, "--attempts", 3).max(1);
        let blob = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline: serde_json::Value = serde_json::from_str(&blob).unwrap_or_else(|e| {
            eprintln!("baseline {baseline_path} is not valid JSON: {e}");
            std::process::exit(2);
        });
        // Short runs on shared runners are noisy in one direction only —
        // interference slows scenarios down, it never speeds them up — so a
        // genuine regression fails *every* attempt while noise does not.
        // The verdict is therefore per scenario: a scenario only counts as
        // regressed if it is below tolerance in every attempt (failures are
        // intersected across attempts, not required to clear in one run).
        let mut persistent: Option<Vec<String>> = None;
        for attempt in 1..=attempts {
            let report = ah_repro::bench_server::run(&cfg);
            let failures = ah_repro::bench_server::check_regression(&report, &baseline, tolerance);
            persistent = Some(match persistent {
                None => failures.clone(),
                Some(prev) => ah_repro::bench_server::intersect_failures(&prev, &failures),
            });
            if persistent.as_deref().is_some_and(|p| p.is_empty()) {
                println!(
                    "bench-server: no regression vs {baseline_path} \
                     (tolerance {tolerance}, attempt {attempt}/{attempts})"
                );
                if let Some(path) = json_path {
                    write_json(&path, &report);
                }
                return;
            }
            eprintln!("bench-server: attempt {attempt}/{attempts} saw a regression:");
            for f in &failures {
                eprintln!("  {f}");
            }
            if let Some(path) = json_path.as_deref() {
                write_json(path, &report);
            }
        }
        for f in persistent.unwrap_or_default() {
            eprintln!("bench-server REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    let report = ah_repro::bench_server::run(&cfg);
    let path = json_path.unwrap_or_else(|| "BENCH_server.json".into());
    write_json(&path, &report);
}

fn write_json(path: &str, value: &serde_json::Value) {
    let blob = serde_json::to_string_pretty(value).expect("report serializes");
    let mut f = std::fs::File::create(path).expect("create json output");
    f.write_all(blob.as_bytes()).expect("write json output");
    f.write_all(b"\n").expect("write json output");
    eprintln!("wrote {path}");
}

fn fault_wal(args: &[String], quick: bool) -> i32 {
    let require = |flag: &str| {
        flag_value(args, flag).unwrap_or_else(|| {
            eprintln!("fault-wal requires {flag} PATH");
            std::process::exit(2);
        })
    };
    let cfg = ah_repro::fault_wal::FaultWalConfig {
        wal: require("--wal").into(),
        out: require("--out").into(),
        resume: args.iter().any(|a| a == "--resume"),
        crash_after: flag_value(args, "--crash-after").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--crash-after expects a positive integer, got `{v}`");
                std::process::exit(2);
            })
        }),
        eval_delay: std::time::Duration::from_millis(parse_usize(args, "--eval-delay-ms", 0) as u64),
        quick,
    };
    ah_repro::fault_wal::run(&cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = flag_value(&args, "--json");
    let flag_values: Vec<Option<String>> = [
        "--json",
        "--clients",
        "--iters",
        "--swarm",
        "--swarm-iters",
        "--loop-threads",
        "--check",
        "--tolerance",
        "--attempts",
        "--wal",
        "--out",
        "--cache-out",
        "--store",
        "--app",
        "--limit",
        "--crash-after",
        "--eval-delay-ms",
        "--observe",
        "--format",
        "--from",
        "--delay-ms",
        "--linger-ms",
        "--interval-ms",
        "--ticks",
        "--connect",
        "--listen",
        "--sync-peer",
        "--sync-interval-ms",
        "--shards",
        "--tenant-max-sessions",
        "--tenant-max-inflight",
        "--run-for-ms",
        "--tenants",
        "--seeds",
        "--space",
        "--points",
        "--chunk",
        "--max-seconds",
        "--sample-interval-ms",
    ]
    .iter()
    .map(|f| flag_value(&args, f))
    .collect();
    // `--slo` repeats, so every occurrence's value must be excluded from
    // the selector scan, not just the first.
    let slo_values = repeated_flag_values(&args, "--slo");
    let selectors: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.iter().any(|v| v.as_deref() == Some(a.as_str())))
        .filter(|a| !slo_values.iter().any(|v| v == a.as_str()))
        .collect();

    if selectors.iter().any(|s| s.as_str() == "bench-server") {
        bench_server(&args, json_path, quick);
        return;
    }

    if selectors.iter().any(|s| s.as_str() == "fault-wal") {
        std::process::exit(fault_wal(&args, quick));
    }

    if selectors.first().map(|s| s.as_str()) == Some("leaderboard") {
        std::process::exit(ah_repro::leaderboard::run(&args, quick));
    }

    if selectors.first().map(|s| s.as_str()) == Some("meta") {
        std::process::exit(ah_repro::meta_cli::run(&args, quick));
    }

    if selectors.first().map(|s| s.as_str()) == Some("store") {
        std::process::exit(ah_repro::store_cli::run(&args, quick));
    }

    if selectors.first().map(|s| s.as_str()) == Some("space") {
        std::process::exit(ah_repro::space_cli::run(&args, quick));
    }

    if selectors.first().map(|s| s.as_str()) == Some("serve") {
        let store = flag_value(&args, "--store").unwrap_or_else(|| {
            eprintln!("repro serve requires --store PATH");
            std::process::exit(2);
        });
        let cap = |flag: &str| {
            flag_value(&args, flag).map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("{flag} expects a positive integer, got `{v}`");
                    std::process::exit(2);
                })
            })
        };
        let cfg = ah_repro::serve_cli::ServeConfig {
            store: store.into(),
            listen: flag_value(&args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into()),
            observe: flag_value(&args, "--observe").unwrap_or_else(|| "127.0.0.1:0".into()),
            sync_peers: flag_value(&args, "--sync-peer")
                .map(|v| {
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect()
                })
                .unwrap_or_default(),
            sync_interval: std::time::Duration::from_millis(parse_usize(
                &args,
                "--sync-interval-ms",
                0,
            ) as u64),
            shards: parse_usize(&args, "--shards", 2),
            tenant_max_sessions: cap("--tenant-max-sessions"),
            tenant_max_inflight: cap("--tenant-max-inflight"),
            run_for: std::time::Duration::from_millis(parse_usize(&args, "--run-for-ms", 0) as u64),
            slo_rules: slo_values.clone(),
            sample_interval: std::time::Duration::from_millis(parse_usize(
                &args,
                "--sample-interval-ms",
                0,
            ) as u64),
        };
        std::process::exit(ah_repro::serve_cli::run(&cfg));
    }

    let out = flag_value(&args, "--out");
    let from = flag_value(&args, "--from");
    if selectors.iter().any(|s| s.as_str() == "metrics") {
        std::process::exit(ah_repro::telemetry_cli::metrics(
            quick,
            out.as_deref(),
            from.as_deref(),
        ));
    }

    if selectors.iter().any(|s| s.as_str() == "trace") {
        let format = flag_value(&args, "--format").unwrap_or_else(|| "events".into());
        std::process::exit(ah_repro::telemetry_cli::trace(
            quick,
            out.as_deref(),
            &format,
            from.as_deref(),
        ));
    }

    if selectors.iter().any(|s| s.as_str() == "observe") {
        let addr = flag_value(&args, "--observe").unwrap_or_else(|| "127.0.0.1:0".into());
        let delay = parse_usize(&args, "--delay-ms", 25) as u64;
        let linger = parse_usize(&args, "--linger-ms", 2000) as u64;
        std::process::exit(ah_repro::observe_cli::serve(quick, &addr, delay, linger));
    }

    if selectors.iter().any(|s| s.as_str() == "watch") {
        let Some(addr) = from else {
            eprintln!("watch requires --from ADDR (the live server's observe address)");
            std::process::exit(2);
        };
        let interval = parse_usize(&args, "--interval-ms", 1000) as u64;
        let ticks = parse_usize(&args, "--ticks", 0);
        std::process::exit(ah_repro::observe_cli::watch(&addr, interval, ticks));
    }

    if selectors.iter().any(|s| s.as_str() == "fleet") {
        let Some(addr) = from else {
            eprintln!("fleet requires --from ADDR (any fleet member's observe address)");
            std::process::exit(2);
        };
        std::process::exit(ah_repro::observe_cli::fleet(&addr));
    }

    if selectors.iter().any(|s| s.as_str() == "list") {
        for e in all_experiments() {
            println!("{:20} {}", e.id(), e.title());
        }
        return;
    }

    let run_all = selectors.is_empty() || selectors.iter().any(|s| s.as_str() == "all");
    let experiments: Vec<Box<dyn Experiment>> = if run_all {
        all_experiments()
    } else {
        let mut picked = Vec::new();
        for s in &selectors {
            match ah_repro::experiment::by_id(s) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("unknown experiment `{s}`; try `repro list`");
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    println!(
        "# Active Harmony (HPDC'06) reproduction — {} mode\n",
        if quick { "quick" } else { "full" }
    );
    let ctx = RunCtx {
        quick,
        store: flag_value(&args, "--store").map(Into::into),
    };
    let mut reports = Vec::new();
    let mut failures = 0;
    for e in experiments {
        eprintln!("running {} ...", e.id());
        let start = std::time::Instant::now();
        let report = e.run(&ctx);
        let elapsed = start.elapsed();
        println!("{}", report.render());
        println!("(completed in {:.1}s)\n", elapsed.as_secs_f64());
        if !report.all_ok() {
            failures += 1;
        }
        reports.push(report);
    }
    println!(
        "Summary: {}/{} experiments matched the paper's shape.",
        reports.len() - failures,
        reports.len()
    );

    if let Some(path) = json_path {
        let blob = serde_json::to_string_pretty(&reports).expect("reports serialize");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(blob.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

//! Row partitions of a sparse matrix across processors.
//!
//! The PETSc SLES experiment (paper §IV, Figure 2) tunes the *boundaries* of
//! a row decomposition: partition `i` owns rows `[b_{i−1}, b_i)`. Two
//! quantities determine distributed solve performance and both are computed
//! here from the real matrix structure:
//!
//! * **load** — nonzeros per partition (per-iteration SpMV flops);
//! * **communication volume** — nonzeros whose column lives in another
//!   partition (halo values that must be exchanged every iteration).
//!
//! Figure 2(a)'s lesson is precisely that an even split (line B) can cut a
//! dense cluster across partitions, inflating the communication term, while
//! an uneven split (line A) hugging the cluster boundaries does not.

use crate::csr::CsrMatrix;

/// A contiguous row partition of `n` rows into `p` parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    /// `p+1` boundaries: part `i` owns rows `[bounds[i], bounds[i+1])`.
    bounds: Vec<usize>,
}

impl RowPartition {
    /// Build from interior boundaries (length `p−1`, strictly inside
    /// `(0, n)`); boundaries are sorted and clamped, and every part is
    /// guaranteed at least implicitly by the sort (empty parts are legal —
    /// the paper allows partitions as small as one row, and the tuner's
    /// objective punishes degenerate ones).
    pub fn from_boundaries(n: usize, interior: &[usize]) -> Self {
        let mut b = Vec::with_capacity(interior.len() + 2);
        b.push(0);
        let mut sorted: Vec<usize> = interior.iter().map(|&x| x.min(n)).collect();
        sorted.sort_unstable();
        b.extend(sorted);
        b.push(n);
        RowPartition { bounds: b }
    }

    /// An even split of `n` rows into `p` parts (the default configuration
    /// in the paper's experiments).
    pub fn even(n: usize, p: usize) -> Self {
        assert!(p >= 1);
        let interior: Vec<usize> = (1..p).map(|i| i * n / p).collect();
        Self::from_boundaries(n, &interior)
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total rows covered.
    pub fn rows(&self) -> usize {
        *self.bounds.last().expect("bounds nonempty")
    }

    /// Row range of part `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// The part owning row `r`.
    pub fn owner(&self, r: usize) -> usize {
        debug_assert!(r < self.rows());
        // bounds is sorted; find the last bound ≤ r.
        match self.bounds.binary_search(&r) {
            Ok(mut i) => {
                // r is itself a boundary; it starts part i — but repeated
                // boundaries (empty parts) mean we must take the last match.
                while i + 1 < self.bounds.len() - 1 && self.bounds[i + 1] == r {
                    i += 1;
                }
                i.min(self.parts() - 1)
            }
            Err(i) => i - 1,
        }
    }

    /// The interior boundaries (for round-tripping to tuner parameters).
    pub fn interior_boundaries(&self) -> &[usize] {
        &self.bounds[1..self.bounds.len() - 1]
    }

    /// Nonzeros owned by each part — the per-iteration SpMV work.
    pub fn loads(&self, a: &CsrMatrix) -> Vec<usize> {
        assert_eq!(a.rows(), self.rows());
        (0..self.parts())
            .map(|i| self.range(i).map(|r| a.row_nnz(r)).sum())
            .collect()
    }

    /// Rows owned by each part.
    pub fn row_counts(&self) -> Vec<usize> {
        (0..self.parts()).map(|i| self.range(i).len()).collect()
    }

    /// Communication volume per part: number of nonzeros in the part's rows
    /// whose column index belongs to a *different* part (remote vector
    /// entries needed each SpMV).
    pub fn comm_volumes(&self, a: &CsrMatrix) -> Vec<usize> {
        assert_eq!(a.rows(), self.rows());
        let mut vols = vec![0usize; self.parts()];
        for (i, vol) in vols.iter_mut().enumerate() {
            for r in self.range(i) {
                let (cols, _) = a.row(r);
                *vol += cols
                    .iter()
                    .filter(|&&c| !self.range(i).contains(&c))
                    .count();
            }
        }
        vols
    }

    /// Total cross-partition nonzeros (the cut size).
    pub fn total_cut(&self, a: &CsrMatrix) -> usize {
        self.comm_volumes(a).iter().sum()
    }

    /// Load imbalance: `max(load)/mean(load)` (1.0 = perfect).
    pub fn load_imbalance(&self, a: &CsrMatrix) -> f64 {
        let loads = self.loads(a);
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{clustered_blocks, laplacian_2d};

    #[test]
    fn even_partition_covers_all_rows() {
        let p = RowPartition::even(10, 4);
        assert_eq!(p.parts(), 4);
        assert_eq!(p.row_counts().iter().sum::<usize>(), 10);
        assert_eq!(p.row_counts(), vec![2, 3, 2, 3]);
    }

    #[test]
    fn owner_is_consistent_with_ranges() {
        let p = RowPartition::from_boundaries(20, &[5, 9, 15]);
        for part in 0..p.parts() {
            for r in p.range(part) {
                assert_eq!(p.owner(r), part, "row {r}");
            }
        }
    }

    #[test]
    fn unsorted_boundaries_are_repaired() {
        let p = RowPartition::from_boundaries(20, &[15, 5, 9]);
        assert_eq!(p.interior_boundaries(), &[5, 9, 15]);
    }

    #[test]
    fn empty_parts_are_legal() {
        let p = RowPartition::from_boundaries(10, &[4, 4, 8]);
        assert_eq!(p.row_counts(), vec![4, 0, 4, 2]);
        assert_eq!(p.owner(4), 2); // row 4 starts the first nonempty part after the empty one
    }

    #[test]
    fn loads_sum_to_nnz() {
        let a = laplacian_2d(8, 8);
        let p = RowPartition::even(a.rows(), 4);
        assert_eq!(p.loads(&a).iter().sum::<usize>(), a.nnz());
    }

    #[test]
    fn laplacian_even_split_has_small_cut() {
        let a = laplacian_2d(16, 16);
        let p = RowPartition::even(a.rows(), 4);
        // 1-D strip split of a 2-D grid: cut = 2 interfaces × 2 rows × nx.
        let cut = p.total_cut(&a);
        assert_eq!(cut, 3 * 2 * 16);
        assert!(p.load_imbalance(&a) < 1.05);
    }

    #[test]
    fn cutting_a_dense_block_costs_more() {
        // Blocks of 30/40/30: splitting at block boundaries (30, 70) must
        // beat splitting through the dense middle block (50).
        let a = clustered_blocks(&[30, 40, 30], 0.9, 3);
        let aligned = RowPartition::from_boundaries(100, &[30, 70]);
        let through = RowPartition::from_boundaries(100, &[35, 50]);
        assert!(
            aligned.total_cut(&a) < through.total_cut(&a),
            "aligned={} through={}",
            aligned.total_cut(&a),
            through.total_cut(&a)
        );
    }

    #[test]
    fn comm_volume_zero_for_single_part() {
        let a = laplacian_2d(6, 6);
        let p = RowPartition::even(a.rows(), 1);
        assert_eq!(p.total_cut(&a), 0);
    }
}

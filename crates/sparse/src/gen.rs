//! Matrix and problem generators.
//!
//! * [`laplacian_2d`] builds the standard five-point finite-difference
//!   Laplacian on an `nx × ny` grid — the PDE matrix class behind the
//!   paper's PETSc examples (`145² = 21,025` and `301² = 90,601` unknowns).
//! * [`clustered_blocks`] builds matrices whose nonzeros form dense
//!   diagonal clusters of uneven sizes, the structure sketched in
//!   Figure 2(a) where an even 4-way row split cuts dense blocks across
//!   partitions and a tuned uneven split does not.

use crate::csr::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Five-point Laplacian on an `nx × ny` grid (row-major numbering):
/// 4 on the diagonal, −1 for each grid neighbour. Symmetric positive
/// definite, `nx·ny` rows.
pub fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let mut t = Vec::with_capacity(5 * n);
    for j in 0..ny {
        for i in 0..nx {
            let r = j * nx + i;
            t.push((r, r, 4.0));
            if i > 0 {
                t.push((r, r - 1, -1.0));
            }
            if i + 1 < nx {
                t.push((r, r + 1, -1.0));
            }
            if j > 0 {
                t.push((r, r - nx, -1.0));
            }
            if j + 1 < ny {
                t.push((r, r + nx, -1.0));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &t)
}

/// A block-clustered sparse matrix in the spirit of Figure 2(a): `sizes`
/// dense diagonal blocks (with `density` fill), connected by a sparse
/// tridiagonal-style coupling so the matrix is irreducible. Made symmetric
/// and diagonally dominant so CG converges.
pub fn clustered_blocks(sizes: &[usize], density: f64, seed: u64) -> CsrMatrix {
    assert!(!sizes.is_empty());
    assert!((0.0..=1.0).contains(&density));
    let n: usize = sizes.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t: Vec<(usize, usize, f64)> = Vec::new();
    let mut start = 0usize;
    for &sz in sizes {
        for i in 0..sz {
            for j in (i + 1)..sz {
                if rng.gen_bool(density) {
                    let v = -rng.gen_range(0.1..1.0);
                    t.push((start + i, start + j, v));
                    t.push((start + j, start + i, v));
                }
            }
        }
        start += sz;
    }
    // Sparse coupling between consecutive rows across the whole matrix.
    for r in 0..n - 1 {
        t.push((r, r + 1, -0.05));
        t.push((r + 1, r, -0.05));
    }
    // Diagonal dominance: diag = 1 + sum |off-diag| per row.
    let mut row_abs = vec![0.0f64; n];
    for &(r, _, v) in &t {
        row_abs[r] += v.abs();
    }
    for (r, &abs) in row_abs.iter().enumerate() {
        t.push((r, r, 1.0 + abs));
    }
    CsrMatrix::from_triplets(n, n, &t)
}

/// A right-hand side of all ones, the conventional test RHS.
pub fn ones(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// A deterministic pseudo-random right-hand side.
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_dimensions_and_stencil() {
        let a = laplacian_2d(4, 3);
        assert_eq!(a.rows(), 12);
        // Interior point (1,1) = row 5 has all 5 stencil entries.
        assert_eq!(a.row_nnz(5), 5);
        // Corner has 3.
        assert_eq!(a.row_nnz(0), 3);
        // nnz = 5n - 2nx - 2ny boundary corrections.
        assert_eq!(a.nnz(), 5 * 12 - 2 * 4 - 2 * 3);
    }

    #[test]
    fn laplacian_is_symmetric() {
        let a = laplacian_2d(5, 7);
        assert_eq!(a.transpose(), a);
    }

    #[test]
    fn laplacian_row_sums_nonnegative() {
        // Diagonal dominance (weak in the interior, strict at boundaries).
        let a = laplacian_2d(6, 6);
        for r in 0..a.rows() {
            let (_, vals) = a.row(r);
            let sum: f64 = vals.iter().sum();
            assert!(sum >= -1e-12);
        }
    }

    #[test]
    fn clustered_blocks_shape() {
        let a = clustered_blocks(&[10, 40, 10, 20], 0.8, 1);
        assert_eq!(a.rows(), 80);
        assert_eq!(a.transpose(), a);
        // Dense 40-block rows are much heavier than small-block rows.
        let heavy: usize = (10..50).map(|r| a.row_nnz(r)).sum();
        let light: usize = (0..10).map(|r| a.row_nnz(r)).sum();
        assert!(heavy / 40 > light / 10);
    }

    #[test]
    fn clustered_blocks_deterministic_by_seed() {
        let a = clustered_blocks(&[8, 8], 0.5, 42);
        let b = clustered_blocks(&[8, 8], 0.5, 42);
        let c = clustered_blocks(&[8, 8], 0.5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rhs_generators() {
        assert_eq!(ones(3), vec![1.0, 1.0, 1.0]);
        let r = random_rhs(100, 7);
        assert_eq!(r.len(), 100);
        assert_eq!(r, random_rhs(100, 7));
    }
}

//! Dense vector kernels used by the iterative solvers.

/// Dot product `xᵀy`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + a·x`.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the CG direction update).
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn xpby_is_cg_direction_update() {
        let mut p = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn scale_works() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }
}

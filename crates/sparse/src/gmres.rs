//! Restarted GMRES for general (non-symmetric) systems — the SLES-style
//! workhorse solver of the PETSc facade.

use crate::csr::CsrMatrix;
use crate::vec_ops::{axpy, dot, norm2, scale};

/// Result of a GMRES solve.
#[derive(Debug, Clone)]
pub struct GmresOutcome {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Total inner iterations across restarts.
    pub iterations: usize,
    /// Number of restart cycles used.
    pub restarts: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solve `A x = b` with GMRES(m), zero initial guess.
pub fn gmres_solve(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    restart: usize,
    max_restarts: usize,
    threads: usize,
) -> GmresOutcome {
    assert_eq!(a.rows(), a.cols(), "GMRES needs a square matrix");
    assert_eq!(b.len(), a.rows());
    assert!(restart >= 1);
    let n = b.len();
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let mut total_iters = 0;
    let mut cycles = 0;

    'outer: for _ in 0..max_restarts {
        cycles += 1;
        // r = b − A x
        let mut r = vec![0.0; n];
        a.par_spmv(&x, &mut r, threads);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let beta = norm2(&r);
        let mut relres = beta / bnorm;
        if relres <= tol {
            break;
        }
        // Arnoldi with modified Gram-Schmidt.
        let m = restart;
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        scale(1.0 / beta, &mut r);
        v.push(r);
        let mut h = vec![vec![0.0f64; m]; m + 1];
        // Givens rotation factors and the residual vector g.
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k_used = 0;
        for k in 0..m {
            let mut w = vec![0.0; n];
            a.par_spmv(&v[k], &mut w, threads);
            for (i, vi) in v.iter().enumerate() {
                h[i][k] = dot(&w, vi);
                axpy(-h[i][k], vi, &mut w);
            }
            h[k + 1][k] = norm2(&w);
            total_iters += 1;
            k_used = k + 1;
            let happy = h[k + 1][k] < 1e-14;
            if !happy {
                scale(1.0 / h[k + 1][k], &mut w);
                v.push(w);
            }
            // Apply existing Givens rotations to the new column.
            for i in 0..k {
                let t = cs[i] * h[i][k] + sn[i] * h[i + 1][k];
                h[i + 1][k] = -sn[i] * h[i][k] + cs[i] * h[i + 1][k];
                h[i][k] = t;
            }
            // New rotation to zero h[k+1][k].
            let denom = (h[k][k].powi(2) + h[k + 1][k].powi(2)).sqrt();
            if denom > 0.0 {
                cs[k] = h[k][k] / denom;
                sn[k] = h[k + 1][k] / denom;
            } else {
                cs[k] = 1.0;
                sn[k] = 0.0;
            }
            h[k][k] = cs[k] * h[k][k] + sn[k] * h[k + 1][k];
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            relres = g[k + 1].abs() / bnorm;
            if relres <= tol || happy {
                // Solve the k+1 upper-triangular system and update x.
                update_solution(&mut x, &h, &g, &v, k + 1);
                if relres <= tol {
                    break 'outer;
                }
                continue 'outer; // happy breakdown: restart from new residual
            }
        }
        update_solution(&mut x, &h, &g, &v, k_used);
    }

    // True residual.
    let mut ax = vec![0.0; n];
    a.par_spmv(&x, &mut ax, threads);
    let res: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let true_rel = norm2(&res) / bnorm;
    GmresOutcome {
        x,
        iterations: total_iters,
        restarts: cycles,
        relative_residual: true_rel,
        converged: true_rel <= tol * 10.0, // allow slight drift vs recurrence
    }
}

/// Back-substitute the `k × k` triangular system `H y = g` and apply
/// `x ← x + V y`.
fn update_solution(x: &mut [f64], h: &[Vec<f64>], g: &[f64], v: &[Vec<f64>], k: usize) {
    let mut y = vec![0.0f64; k];
    for i in (0..k).rev() {
        let mut s = g[i];
        for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
            s -= h[i][j] * yj;
        }
        y[i] = if h[i][i].abs() > 1e-300 {
            s / h[i][i]
        } else {
            0.0
        };
    }
    for (j, yj) in y.iter().enumerate() {
        axpy(*yj, &v[j], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::gen::{laplacian_2d, ones, random_rhs};

    #[test]
    fn solves_spd_system() {
        let a = laplacian_2d(10, 10);
        let b = ones(a.rows());
        let out = gmres_solve(&a, &b, 1e-8, 30, 50, 1);
        assert!(out.converged, "relres={}", out.relative_residual);
        let mut ax = vec![0.0; a.rows()];
        a.spmv(&out.x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn solves_nonsymmetric_system() {
        // Upwind-biased convection-diffusion-like operator.
        let n = 60;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 3.0));
            if i > 0 {
                t.push((i, i - 1, -1.5));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b = random_rhs(n, 11);
        let out = gmres_solve(&a, &b, 1e-9, 20, 100, 1);
        assert!(out.converged, "relres={}", out.relative_residual);
    }

    #[test]
    fn small_restart_needs_more_cycles() {
        let a = laplacian_2d(12, 12);
        let b = random_rhs(a.rows(), 2);
        let big = gmres_solve(&a, &b, 1e-8, 60, 100, 1);
        let small = gmres_solve(&a, &b, 1e-8, 5, 400, 1);
        assert!(big.converged && small.converged);
        assert!(small.restarts > big.restarts);
    }

    #[test]
    fn threaded_matches_serial() {
        let a = laplacian_2d(9, 13);
        let b = random_rhs(a.rows(), 4);
        let s1 = gmres_solve(&a, &b, 1e-10, 25, 50, 1);
        let s4 = gmres_solve(&a, &b, 1e-10, 25, 50, 4);
        for (x1, x4) in s1.x.iter().zip(&s4.x) {
            assert!((x1 - x4).abs() < 1e-8);
        }
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let n = 8;
        let t: Vec<_> = (0..n).map(|i| (i, i, 1.0)).collect();
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b = ones(n);
        let out = gmres_solve(&a, &b, 1e-12, 10, 10, 1);
        assert!(out.converged);
        assert!(out.iterations <= 2);
    }
}

//! # ah-sparse — sparse linear-algebra substrate
//!
//! The PETSc case study of the HPDC'06 Active Harmony paper tunes the *row
//! decomposition* of distributed sparse linear solves. To reproduce the
//! experiments without PETSc/MPI, this crate provides real sparse matrices
//! and solvers:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row storage with (optionally
//!   threaded) sparse matrix–vector products;
//! * [`gen`] — matrix generators: the 2-D five-point Laplacian used for the
//!   paper's 21,025² and 90,601² problems, and clustered block matrices in
//!   the shape of Figure 2(a);
//! * [`cg`] / [`gmres`] — conjugate-gradient and restarted-GMRES solvers;
//! * [`partition`] — row partitions defined by boundary lists, with the two
//!   quantities decomposition tuning trades off: per-partition work (load
//!   balance) and off-partition nonzeros (communication volume).

#![warn(missing_docs)]

pub mod cg;
pub mod csr;
pub mod gen;
pub mod gmres;
pub mod partition;
pub mod pcg;
pub mod vec_ops;

pub use cg::{cg_solve, CgOutcome};
pub use csr::CsrMatrix;
pub use gmres::{gmres_solve, GmresOutcome};
pub use partition::RowPartition;
pub use pcg::{pcg_solve, PcgOutcome};

//! Compressed sparse row matrices.

use crossbeam::thread;

/// A square or rectangular sparse matrix in CSR format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers: `indices[row_ptr[r]..row_ptr[r+1]]` are row `r`'s
    /// column indices.
    row_ptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from coordinate triplets. Duplicate entries are summed;
    /// out-of-range indices panic.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &sorted {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        // Sort with the value as a total-order tiebreaker so duplicate
        // entries are summed in a canonical order — without it, transposing
        // a matrix with 3+ duplicates of one entry could change the
        // floating-point summation order and break exact symmetry.
        sorted.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in sorted {
            if last == Some((r, c)) {
                *values.last_mut().expect("entry exists for duplicate") += v;
            } else {
                indices.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of one row.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Number of nonzeros in one row.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// `y = A·x` (serial).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            *yr = acc;
        }
    }

    /// `y = A·x` computed with `threads` worker threads over disjoint row
    /// blocks (crossbeam scoped threads; falls back to serial for 1 thread).
    pub fn par_spmv(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        let threads = threads.clamp(1, self.rows.max(1));
        if threads == 1 || self.rows < 2 * threads {
            self.spmv(x, y);
            return;
        }
        let chunk = self.rows.div_ceil(threads);
        thread::scope(|s| {
            for (block, y_block) in y.chunks_mut(chunk).enumerate() {
                let start = block * chunk;
                s.spawn(move |_| {
                    for (i, yv) in y_block.iter_mut().enumerate() {
                        let r = start + i;
                        let (cols, vals) = self.row(r);
                        let mut acc = 0.0;
                        for (&c, &v) in cols.iter().zip(vals) {
                            acc += v * x[c];
                        }
                        *yv = acc;
                    }
                });
            }
        })
        .expect("spmv worker panicked");
    }

    /// Iterate all `(row, col, value)` triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Transpose (used to symmetry-check generators in tests).
    pub fn transpose(&self) -> CsrMatrix {
        let t: Vec<(usize, usize, f64)> = self.triplets().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let a = small();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.row_nnz(1), 3);
        let (cols, vals) = a.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[2.0, -1.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.row(0).1, &[3.5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_triplet_panics() {
        CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 4.0]);
    }

    #[test]
    fn par_spmv_matches_serial() {
        let n = 500;
        let a = crate::gen::laplacian_2d(20, 25);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y4 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        a.par_spmv(&x, &mut y4, 4);
        for (a, b) in y1.iter().zip(&y4) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_of_symmetric_matrix_is_identical() {
        let a = small();
        assert_eq!(a.transpose(), a);
    }

    #[test]
    fn triplets_roundtrip() {
        let a = small();
        let t: Vec<_> = a.triplets().collect();
        let b = CsrMatrix::from_triplets(3, 3, &t);
        assert_eq!(a, b);
    }
}

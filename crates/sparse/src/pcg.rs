//! Jacobi (diagonal) preconditioned conjugate gradients.
//!
//! POP's barotropic solver is a preconditioned CG (its namelist exposes
//! `solver_choice = pcg` and a `preconditioner_choice`); this is the real
//! numerical kernel behind that choice.

use crate::csr::CsrMatrix;
use crate::vec_ops::{axpy, dot, norm2};

/// Result of a PCG solve.
#[derive(Debug, Clone)]
pub struct PcgOutcome {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
}

/// Solve `A x = b` with Jacobi-preconditioned CG from a zero guess.
///
/// Rows with a zero (or negative) diagonal fall back to an identity
/// preconditioner entry, so the solver degrades gracefully to plain CG
/// rather than dividing by zero.
pub fn pcg_solve(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
    threads: usize,
) -> PcgOutcome {
    assert_eq!(a.rows(), a.cols(), "PCG needs a square matrix");
    assert_eq!(b.len(), a.rows());
    let n = b.len();
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);

    // Inverse diagonal.
    let mut inv_diag = vec![1.0f64; n];
    for (r, d) in inv_diag.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        if let Some(pos) = cols.iter().position(|&c| c == r) {
            let v = vals[pos];
            if v > 0.0 {
                *d = 1.0 / v;
            }
        }
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz = dot(&r, &z);
    let mut iterations = 0;
    let mut converged = norm2(&r) / bnorm <= tol;

    while !converged && iterations < max_iters {
        a.par_spmv(&p, &mut ap, threads);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        iterations += 1;
        if norm2(&r) / bnorm <= tol {
            converged = true;
            break;
        }
        for ((zi, ri), di) in z.iter_mut().zip(&r).zip(&inv_diag) {
            *zi = ri * di;
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        rz = rz_new;
    }

    let mut ax = vec![0.0; n];
    a.par_spmv(&x, &mut ax, threads);
    let res: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    PcgOutcome {
        x,
        iterations,
        relative_residual: norm2(&res) / bnorm,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg_solve;
    use crate::csr::CsrMatrix;
    use crate::gen::{laplacian_2d, ones, random_rhs};

    #[test]
    fn pcg_solves_the_laplacian() {
        let a = laplacian_2d(15, 15);
        let b = ones(a.rows());
        let out = pcg_solve(&a, &b, 1e-9, 2000, 1);
        assert!(out.converged, "relres={}", out.relative_residual);
        let mut ax = vec![0.0; a.rows()];
        a.spmv(&out.x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn jacobi_preconditioning_helps_on_badly_scaled_systems() {
        // Scale rows/columns of a Laplacian by wildly different factors:
        // plain CG struggles, Jacobi-PCG equilibrates.
        let base = laplacian_2d(12, 12);
        let n = base.rows();
        let scale: Vec<f64> = (0..n).map(|i| 10f64.powi((i % 5) as i32 - 2)).collect();
        let t: Vec<(usize, usize, f64)> = base
            .triplets()
            .map(|(r, c, v)| (r, c, v * scale[r] * scale[c]))
            .collect();
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b = random_rhs(n, 3);
        let plain = cg_solve(&a, &b, 1e-8, 5000, 1);
        let pcg = pcg_solve(&a, &b, 1e-8, 5000, 1);
        assert!(pcg.converged);
        assert!(
            pcg.iterations < plain.iterations,
            "pcg {} !< cg {}",
            pcg.iterations,
            plain.iterations
        );
    }

    #[test]
    fn matches_cg_on_well_conditioned_systems() {
        let a = laplacian_2d(10, 10);
        let b = random_rhs(a.rows(), 7);
        let cg = cg_solve(&a, &b, 1e-10, 2000, 1);
        let pcg = pcg_solve(&a, &b, 1e-10, 2000, 1);
        for (x1, x2) in cg.x.iter().zip(&pcg.x) {
            assert!((x1 - x2).abs() < 1e-7);
        }
    }

    #[test]
    fn threaded_matches_serial() {
        let a = laplacian_2d(20, 11);
        let b = random_rhs(a.rows(), 9);
        let s1 = pcg_solve(&a, &b, 1e-10, 2000, 1);
        let s4 = pcg_solve(&a, &b, 1e-10, 2000, 4);
        assert_eq!(s1.iterations, s4.iterations);
        for (x1, x4) in s1.x.iter().zip(&s4.x) {
            assert!((x1 - x4).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let a = laplacian_2d(5, 5);
        let out = pcg_solve(&a, &[0.0; 25], 1e-10, 100, 1);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
    }
}

//! Conjugate-gradient solver for symmetric positive-definite systems.

use crate::csr::CsrMatrix;
use crate::vec_ops::{axpy, dot, norm2, xpby};

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Solve `A x = b` by conjugate gradients from a zero initial guess.
///
/// `threads` selects the SpMV parallelism (1 = serial).
pub fn cg_solve(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize, threads: usize) -> CgOutcome {
    assert_eq!(a.rows(), a.cols(), "CG needs a square matrix");
    assert_eq!(b.len(), a.rows());
    let n = b.len();
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rsold = dot(&r, &r);
    let mut iterations = 0;
    let mut converged = rsold.sqrt() / bnorm <= tol;
    while !converged && iterations < max_iters {
        a.par_spmv(&p, &mut ap, threads);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            break; // not SPD (or breakdown); bail out with current iterate
        }
        let alpha = rsold / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rsnew = dot(&r, &r);
        iterations += 1;
        if rsnew.sqrt() / bnorm <= tol {
            converged = true;
            break;
        }
        xpby(&r, rsnew / rsold, &mut p);
        rsold = rsnew;
    }
    // True residual for reporting.
    let mut ax = vec![0.0; n];
    a.par_spmv(&x, &mut ax, threads);
    let res: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    CgOutcome {
        x,
        iterations,
        relative_residual: norm2(&res) / bnorm,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{laplacian_2d, ones, random_rhs};

    #[test]
    fn solves_laplacian_to_tolerance() {
        let a = laplacian_2d(12, 12);
        let b = ones(a.rows());
        let out = cg_solve(&a, &b, 1e-8, 1000, 1);
        assert!(out.converged, "iters={}", out.iterations);
        assert!(out.relative_residual < 1e-7);
        // Verify the solution: A x ≈ b.
        let mut ax = vec![0.0; a.rows()];
        a.spmv(&out.x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn threaded_solve_matches_serial() {
        let a = laplacian_2d(15, 10);
        let b = random_rhs(a.rows(), 3);
        let s1 = cg_solve(&a, &b, 1e-10, 1000, 1);
        let s4 = cg_solve(&a, &b, 1e-10, 1000, 4);
        assert_eq!(s1.iterations, s4.iterations);
        for (x1, x4) in s1.x.iter().zip(&s4.x) {
            assert!((x1 - x4).abs() < 1e-9);
        }
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = laplacian_2d(30, 30);
        let b = ones(a.rows());
        let out = cg_solve(&a, &b, 1e-14, 5, 1);
        assert!(!out.converged);
        assert_eq!(out.iterations, 5);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_2d(4, 4);
        let out = cg_solve(&a, &[0.0; 16], 1e-10, 100, 1);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clustered_matrix_is_solvable() {
        let a = crate::gen::clustered_blocks(&[20, 60, 20], 0.6, 5);
        let b = ones(a.rows());
        let out = cg_solve(&a, &b, 1e-8, 2000, 2);
        assert!(out.converged, "residual={}", out.relative_residual);
    }
}

//! # ah-bench — Criterion benchmark harness
//!
//! Bench targets:
//!
//! * `paper_experiments` — one benchmark per paper table/figure, timing the
//!   full regeneration pipeline (quick workloads);
//! * `search_kernels` — the tuning kernels: simplex stepping, projection,
//!   GS2 locality scans, POP decomposition;
//! * `spmv` — serial vs. threaded sparse matrix–vector products and CG;
//! * `ablations` — design-choice ablations called out in DESIGN.md
//!   (search strategy, restart-cost accounting, prior-run seeding).

#![warn(missing_docs)]

use ah_core::prelude::*;
use ah_core::session::SessionOptions;

/// A standard 2-D integer bowl used by several benches.
pub fn bowl_space() -> SearchSpace {
    SearchSpace::builder()
        .int("x", -100, 100, 1)
        .int("y", -100, 100, 1)
        .build()
        .expect("valid bench space")
}

/// The bowl objective.
pub fn bowl(cfg: &Configuration) -> f64 {
    let x = cfg.int("x").expect("x") as f64;
    let y = cfg.int("y").expect("y") as f64;
    (x - 37.0).powi(2) + 1.7 * (y + 21.0).powi(2)
}

/// Run one tuning session of `evals` evaluations and return the best cost.
pub fn run_session(strategy: Box<dyn SearchStrategy>, evals: usize, seed: u64) -> f64 {
    let mut session = TuningSession::new(
        bowl_space(),
        strategy,
        SessionOptions {
            max_evaluations: evals,
            seed,
            ..Default::default()
        },
    );
    session.run(bowl).best_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_work() {
        let best = run_session(Box::new(NelderMead::default()), 120, 1);
        assert!(best <= 10.0, "best={best}");
    }
}

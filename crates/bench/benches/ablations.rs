//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **search strategy** — the simplex vs. random vs. systematic sampling,
//!   measured as time to reach within 5% of the known optimum (the paper's
//!   motivation for an "intelligent" search);
//! * **restart-cost accounting** — off-line tuning with and without
//!   charging warm-up/restart overheads (§III: "our experiments take all
//!   costs of parameter changes into consideration");
//! * **prior-run seeding** — cold-started simplex vs. a simplex seeded from
//!   a related problem's history (the SC'04 technique used for the
//!   O(10^100) PETSc space).

use ah_bench::{bowl, bowl_space};
use ah_core::offline::{OfflineTuner, RunMeasurement, ShortRunApp};
use ah_core::prelude::*;
use ah_core::session::SessionOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Evaluations a strategy needs to get within 5% of the bowl optimum
/// (capped at `cap`).
fn evals_to_within(strategy: Box<dyn SearchStrategy>, cap: usize, seed: u64) -> usize {
    let mut session = TuningSession::new(
        bowl_space(),
        strategy,
        SessionOptions {
            max_evaluations: cap,
            seed,
            ..Default::default()
        },
    );
    let result = session.run(bowl);
    result.history.iterations_to_within(1.05).unwrap_or(cap)
}

fn ablate_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_search_to_5pct");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("nelder_mead", |b| {
        b.iter(|| black_box(evals_to_within(Box::new(NelderMead::default()), 2000, 3)))
    });
    group.bench_function("random", |b| {
        b.iter(|| black_box(evals_to_within(Box::new(RandomSearch::new()), 2000, 3)))
    });
    group.bench_function("grid_2000", |b| {
        b.iter(|| black_box(evals_to_within(Box::new(GridSearch::new(2000)), 2000, 3)))
    });
    group.finish();
    // Print the ablation facts once so bench logs carry the comparison.
    let nm = evals_to_within(Box::new(NelderMead::default()), 2000, 3);
    let rs = evals_to_within(Box::new(RandomSearch::new()), 2000, 3);
    let gs = evals_to_within(Box::new(GridSearch::new(2000)), 2000, 3);
    println!("[ablation] evals to within 5%: nelder-mead={nm} random={rs} grid={gs}");
}

/// A toy short-run app with configurable restart overheads.
struct OverheadApp {
    overhead: f64,
}

impl ShortRunApp for OverheadApp {
    fn space(&self) -> SearchSpace {
        bowl_space()
    }
    fn default_config(&self) -> Configuration {
        self.space().center()
    }
    fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
        RunMeasurement {
            exec_time: bowl(config) * 1e-3 + 0.5,
            warmup_time: self.overhead,
            restart_cost: self.overhead,
        }
    }
}

fn ablate_restart_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_restart_accounting");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (label, charge) in [("charged", true), ("ignored", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut app = OverheadApp { overhead: 2.0 };
                let mut tuner = OfflineTuner::new(SessionOptions {
                    max_evaluations: 60,
                    seed: 4,
                    ..Default::default()
                });
                tuner.charge_overheads = charge;
                let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
                black_box(out.tuning_time)
            })
        });
    }
    group.finish();
    // Report the accounting difference once.
    let run = |charge| {
        let mut app = OverheadApp { overhead: 2.0 };
        let mut tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 60,
            seed: 4,
            ..Default::default()
        });
        tuner.charge_overheads = charge;
        tuner
            .tune(&mut app, Box::new(NelderMead::default()))
            .tuning_time
    };
    println!(
        "[ablation] tuning time with restart costs charged: {:.1}s vs ignored: {:.1}s",
        run(true),
        run(false)
    );
}

fn ablate_prior_seeding(c: &mut Criterion) {
    // Bank a prior history once.
    let mut first = TuningSession::new(
        bowl_space(),
        Box::new(NelderMead::default()),
        SessionOptions {
            max_evaluations: 150,
            seed: 5,
            ..Default::default()
        },
    );
    let r1 = first.run(bowl);
    let mut db = PriorRunDb::new();
    db.record_history("bowl", &r1.history);

    let mut group = c.benchmark_group("ablate_prior_seeding_25_evals");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("cold_start", |b| {
        b.iter(|| {
            black_box(ah_bench::run_session(
                Box::new(NelderMead::default()),
                25,
                6,
            ))
        })
    });
    group.bench_function("prior_seeded", |b| {
        b.iter(|| {
            let nm = NelderMead::new(NelderMeadOptions {
                start: db.seed_for("bowl", &bowl_space()),
                ..Default::default()
            });
            black_box(ah_bench::run_session(Box::new(nm), 25, 6))
        })
    });
    group.finish();
    let cold = ah_bench::run_session(Box::new(NelderMead::default()), 25, 6);
    let seeded = {
        let nm = NelderMead::new(NelderMeadOptions {
            start: db.seed_for("bowl", &bowl_space()),
            ..Default::default()
        });
        ah_bench::run_session(Box::new(nm), 25, 6)
    };
    println!("[ablation] best after 25 evals: cold={cold:.1} prior-seeded={seeded:.1}");
}

fn ablate_parallel_rounds(c: &mut Criterion) {
    // PRO spends more total evaluations but groups them into independent
    // rounds; on a P-processor deployment its wall-clock per round is one
    // evaluation. Compare simulated wall-clock: serial NM pays every
    // evaluation, PRO pays rounds.
    use ah_core::strategy::pro::{tune_parallel, ProOptions};
    let mut group = c.benchmark_group("ablate_parallel_rounds");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("pro_parallel_driver", |b| {
        b.iter(|| {
            let r = tune_parallel(&bowl_space(), bowl, ProOptions::default(), 40, 8);
            black_box(r.best_cost)
        })
    });
    group.bench_function("nelder_mead_serial", |b| {
        b.iter(|| {
            black_box(ah_bench::run_session(
                Box::new(NelderMead::default()),
                160,
                8,
            ))
        })
    });
    group.finish();
    let r = tune_parallel(&bowl_space(), bowl, ProOptions::default(), 40, 8);
    let rounds = 40.0;
    println!(
        "[ablation] PRO: best {:.1} in {} evaluations but only {rounds} parallel rounds          (wall-clock on a wide machine ~= rounds, not evaluations)",
        r.best_cost,
        r.history.runs(),
    );
}

criterion_group!(
    benches,
    ablate_search,
    ablate_restart_cost,
    ablate_prior_seeding,
    ablate_parallel_rounds
);
criterion_main!(benches);

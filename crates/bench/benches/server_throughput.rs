//! Tuning-server round-trip throughput: serial fetch/report vs batched
//! `FetchBatch`/`ReportBatch`, over the in-process bus and over TCP.
//!
//! Each measured iteration completes one whole evaluation (or a batch of
//! them), so the `Throughput::Elements` rate is evaluations per second as
//! seen by a tuning client. The `repro bench-server` subcommand runs the
//! multi-client version of the same matrix and writes `BENCH_server.json`.

use ah_core::param::Param;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::{HarmonyClient, HarmonyServer, TcpHarmonyClient, TcpHarmonyServer};
use ah_core::session::SessionOptions;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

const BATCH: usize = 16;

fn options(seed: u64) -> SessionOptions {
    SessionOptions {
        max_evaluations: usize::MAX / 4,
        max_cached_replays: usize::MAX / 4,
        seed,
        ..Default::default()
    }
}

fn inproc_client(server: &HarmonyServer, seed: u64) -> HarmonyClient {
    let client = server.connect("bench").expect("connect");
    client
        .add_param(Param::int("x", 0, 1_000_000, 1))
        .expect("param");
    client
        .seal(options(seed), StrategyKind::Random)
        .expect("seal");
    client
}

fn inproc(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_inproc");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    let server = HarmonyServer::start();
    let serial = inproc_client(&server, 1);
    group.throughput(Throughput::Elements(1));
    group.bench_function("serial_fetch_report", |b| {
        b.iter(|| {
            let fetched = serial.fetch().expect("fetch");
            serial
                .report_timed(fetched.config.int("x").expect("x") as f64, 0.0)
                .expect("report");
        })
    });

    let batched = inproc_client(&server, 2);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("batched_fetch_report_16", |b| {
        b.iter(|| {
            let (trials, _) = batched.fetch_batch(BATCH).expect("fetch_batch");
            let reports: Vec<TrialReport> = trials
                .iter()
                .map(|t| TrialReport {
                    iteration: t.iteration,
                    cost: t.config.int("x").expect("x") as f64,
                    wall_time: 0.0,
                })
                .collect();
            batched.report_batch(reports).expect("report_batch");
        })
    });
    group.finish();
    server.shutdown();
}

fn tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_tcp");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mk = |seed: u64| {
        let mut client = TcpHarmonyClient::connect(addr, "bench").expect("connect");
        client
            .add_param(Param::int("x", 0, 1_000_000, 1))
            .expect("param");
        client
            .seal(options(seed), StrategyKind::Random)
            .expect("seal");
        client
    };

    let mut serial = mk(1);
    group.throughput(Throughput::Elements(1));
    group.bench_function("serial_fetch_report", |b| {
        b.iter(|| {
            let (config, _) = serial.fetch().expect("fetch");
            serial
                .report(config.int("x").expect("x") as f64)
                .expect("report");
        })
    });

    let mut batched = mk(2);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("batched_fetch_report_16", |b| {
        b.iter(|| {
            let (trials, _) = batched.fetch_batch(BATCH).expect("fetch_batch");
            let reports: Vec<TrialReport> = trials
                .iter()
                .map(|t| TrialReport {
                    iteration: t.iteration,
                    cost: t.config.int("x").expect("x") as f64,
                    wall_time: 0.0,
                })
                .collect();
            batched.report_batch(reports).expect("report_batch");
        })
    });
    group.finish();
    serial.close();
    batched.close();
    server.shutdown();
}

criterion_group!(benches, inproc, tcp);
criterion_main!(benches);

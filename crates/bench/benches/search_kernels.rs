//! Kernels of the tuning system: strategy throughput, space projection,
//! GS2 locality scans, and POP decomposition.

use ah_bench::{bowl_space, run_session};
use ah_core::prelude::*;
use ah_gs2::decomp::{locality, Decomposition, DimSizes};
use ah_gs2::layout::{Dim, Layout};
use ah_pop::{BlockDecomposition, OceanGrid};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_120_evals");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("nelder_mead", |b| {
        b.iter(|| run_session(Box::new(NelderMead::default()), 120, 1))
    });
    group.bench_function("random", |b| {
        b.iter(|| run_session(Box::new(RandomSearch::new()), 120, 1))
    });
    group.bench_function("grid", |b| {
        b.iter(|| run_session(Box::new(GridSearch::new(120)), 120, 1))
    });
    group.finish();
}

fn projection(c: &mut Criterion) {
    let space = bowl_space();
    c.bench_function("space_project", |b| {
        let coords = [12.7, -45.1];
        b.iter(|| black_box(space.project(black_box(&coords))))
    });
    // Constraint-repaired projection (monotone chain of 8 boundaries).
    let mut builder = SearchSpace::builder();
    for i in 0..8 {
        builder = builder.int(format!("b{i}"), 0, 10_000, 1);
    }
    let chained = builder
        .constraint(ah_core::constraint::MonotoneChain::new(
            (0..8).map(|i| format!("b{i}")).collect::<Vec<_>>(),
        ))
        .build()
        .expect("valid space");
    c.bench_function("space_project_chain8", |b| {
        let coords = [900.0, 100.0, 5000.0, 4.0, 9999.0, 42.0, 7.0, 2500.0];
        b.iter(|| black_box(chained.project(black_box(&coords))))
    });
}

fn gs2_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("gs2_locality");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (label, sizes) in [
        (
            "small",
            DimSizes {
                x: 16,
                y: 8,
                l: 16,
                e: 8,
                s: 2,
            },
        ),
        (
            "paper",
            DimSizes {
                x: 32,
                y: 16,
                l: 32,
                e: 16,
                s: 2,
            },
        ),
    ] {
        let layout: Layout = "lxyes".parse().expect("layout");
        let d = Decomposition::new(layout, sizes, 128);
        group.bench_with_input(BenchmarkId::from_parameter(label), &d, |b, d| {
            b.iter(|| black_box(locality(d, &[Dim::X, Dim::Y])))
        });
    }
    group.finish();
}

fn pop_decomposition(c: &mut Criterion) {
    let grid = OceanGrid::synthetic(720, 480);
    let mut group = c.benchmark_group("pop_decomposition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (bx, by) in [(36, 30), (180, 100)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{bx}x{by}")),
            &(bx, by),
            |b, &(bx, by)| b.iter(|| black_box(BlockDecomposition::new(&grid, bx, by, 480))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    strategies,
    projection,
    gs2_locality,
    pop_decomposition
);
criterion_main!(benches);

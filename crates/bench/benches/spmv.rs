//! Sparse kernels: serial vs. threaded SpMV and full CG solves.
//!
//! Honest reading of the numbers: `par_spmv` spawns scoped threads per
//! call, and on a single-core machine (CI boxes often are — check `nproc`)
//! every thread count > 1 is pure overhead, so serial wins at every size
//! there. On multi-core hardware the spawn cost still dominates at 90k
//! unknowns (~0.5 ms serial); the 1M case is where parallel SpMV pays off.
//! The threaded kernels are verified bit-identical to serial in the unit
//! tests either way.

use ah_sparse::gen::{laplacian_2d, random_rhs};
use ah_sparse::{cg_solve, CsrMatrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn spmv(c: &mut Criterion) {
    for (label, nx, ny) in [("spmv_90k", 300usize, 300usize), ("spmv_1m", 1000, 1000)] {
        let a: CsrMatrix = laplacian_2d(nx, ny);
        let x = random_rhs(a.rows(), 1);
        let mut y = vec![0.0; a.rows()];
        let mut group = c.benchmark_group(label);
        group
            .throughput(Throughput::Elements(a.nnz() as u64))
            .sample_size(30)
            .measurement_time(Duration::from_secs(5));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
                b.iter(|| {
                    a.par_spmv(black_box(&x), &mut y, t);
                    black_box(y[0])
                })
            });
        }
        group.finish();
    }
}

fn cg(c: &mut Criterion) {
    let a = laplacian_2d(64, 64);
    let rhs = random_rhs(a.rows(), 2);
    let mut group = c.benchmark_group("cg_4k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let out = cg_solve(&a, &rhs, 1e-8, 2000, t);
                assert!(out.converged);
                black_box(out.iterations)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, spmv, cg);
criterion_main!(benches);

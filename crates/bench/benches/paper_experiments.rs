//! One Criterion benchmark per paper table/figure: times the full
//! regeneration pipeline (application model + machine simulation + Harmony
//! search + report rendering) on the quick workload.
//!
//! The *shape* validation lives in the repro binary and the integration
//! tests; these benches track the cost of regenerating each artefact.

use ah_repro::{all_experiments, RunCtx};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn paper_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    let ctx = RunCtx::quick(true);
    for e in all_experiments() {
        group.bench_function(e.id(), |b| {
            b.iter(|| {
                let report = e.run(&ctx);
                assert!(!report.narrative.is_empty());
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, paper_experiments);
criterion_main!(benches);

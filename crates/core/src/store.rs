//! Persistent cross-session performance database (the paper's §II
//! "database of past performance results").
//!
//! The Harmony server in the paper never re-measures a configuration it has
//! already seen: measured costs go into a performance database that outlives
//! any single tuning session, and new sessions are seeded from it (the SC'04
//! prior-run technique). [`PerfStore`] is that database. It is keyed by
//! `(application label, search-space fingerprint, configuration)` and
//! records every measured cost together with its provenance — which session
//! measured it, at which iteration, and whether the trial had been requeued
//! by fault handling on the way.
//!
//! # On-disk format
//!
//! JSON lines, like the [WAL](crate::wal). Line 1 is a [`StoreHeader`]
//! (`kind` + format version); each following line is one [`StoreRecord`].
//! Costs are stored as `u64` bit patterns (`f64::to_bits`), so a cost served
//! from the store is *exactly* the one measured — bit-identical memoization,
//! no decimal round-trip.
//!
//! # Crash safety and fsync policy
//!
//! Open-time recovery is the WAL's: a single scan tracks the byte offset
//! just past the last parseable record; a torn final line (crash mid-append)
//! is truncated off disk ([`Counter::StoreTornTails`]), while an unreadable
//! record *followed by* readable ones is real corruption and surfaces as
//! [`HarmonyError::StoreCorrupt`].
//!
//! The append path deliberately diverges from the WAL: the WAL is a
//! correctness log (losing a record means losing search state), so it pays
//! one fsync per record. The store is a cache — losing the unsynced tail
//! merely means a few configurations get re-measured next run — so appends
//! go to the file immediately (they reach the OS page cache, surviving
//! `abort()`/SIGKILL) but `sync_data` is deferred. A bare [`PerfStore`]
//! syncs inline every [`PerfStore::sync_every`] records; under the server,
//! [`SharedStore`] disables the inline sync entirely and a background
//! flusher group-commits whenever the append path goes quiet, so no report
//! ever waits on an fsync. Both paths sync on [`PerfStore::flush`] / drop.
//! That keeps store-enabled serving inside the bench regression tolerance.
//!
//! # Compaction
//!
//! The log is append-only; re-measurements of a known configuration under a
//! noisy objective append rather than rewrite. [`PerfStore::compact`]
//! snapshots the live (first-recorded) records to a temp file and atomically
//! renames it over the log, so the file cannot grow without bound;
//! [`PerfStore::gc`] is compaction filtered to one application's records.
//!
//! # Cache semantics
//!
//! Lookup is *first write wins*: the first recorded cost for a key is the
//! one served forever after, which is what makes a warm run against the
//! store replay the cold run's trajectory bit-identically (see
//! [`TuningSession::report_stored`](crate::session::TuningSession::report_stored)).

use crate::error::{HarmonyError, Result};
use crate::priors::PriorRunDb;
use crate::space::{Configuration, SearchSpace};
use crate::telemetry::{Counter, Latency, SpanKind, Telemetry};
use crate::value::ParamValue;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Current store format version (line 1 of every store file).
pub const STORE_VERSION: u32 = 1;

/// File-type marker in the header, so a store file can never be confused
/// with a WAL (both are JSON lines).
pub const STORE_KIND: &str = "ah-store";

/// Default number of appends between `sync_data` calls.
///
/// Sized for the hot path, not for durability: a `sync_data` costs
/// hundreds of microseconds while an appended line costs well under one,
/// so at 32 the fsync cadence would dominate every store-backed report.
/// The window only matters for power loss — records reach the OS page
/// cache on append, surviving `abort()`/SIGKILL — and losing a window of
/// cache entries merely means re-measuring them, so the cadence errs
/// toward throughput. [`PerfStore::flush`] (called on drop and on server
/// shutdown) always syncs the tail.
pub const DEFAULT_SYNC_EVERY: usize = 512;

/// First line of every store file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreHeader {
    /// Always [`STORE_KIND`]; refuses WAL or foreign JSON-lines files.
    pub kind: String,
    /// Format version ([`STORE_VERSION`]).
    pub version: u32,
}

/// One measured cost with its provenance. Serialized as one JSON line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreRecord {
    /// Application label the measurement belongs to.
    pub app: String,
    /// Fingerprint of the search space it was measured in
    /// ([`space_fingerprint`]); disambiguates identical cache keys from
    /// different spaces under one label.
    pub fingerprint: u64,
    /// The measured configuration.
    pub config: Configuration,
    /// `f64::to_bits` of the measured cost.
    pub cost_bits: u64,
    /// `f64::to_bits` of the measurement's wall-clock time.
    pub wall_bits: u64,
    /// Session that measured it (0 = off-line / standalone tuner).
    pub session: u64,
    /// Iteration token within that session (0 = preload/baseline).
    pub iteration: usize,
    /// The trial had been requeued by fault handling before its report.
    pub requeued: bool,
    /// The cost came from a replay (WAL resume), not a live measurement.
    pub replayed: bool,
}

impl StoreRecord {
    /// A record with zeroed provenance; chain [`with_provenance`]
    /// (Self::with_provenance) and [`with_flags`](Self::with_flags) to fill
    /// it in.
    pub fn new(
        app: impl Into<String>,
        fingerprint: u64,
        config: Configuration,
        cost: f64,
        wall_time: f64,
    ) -> Self {
        StoreRecord {
            app: app.into(),
            fingerprint,
            config,
            cost_bits: cost.to_bits(),
            wall_bits: wall_time.to_bits(),
            session: 0,
            iteration: 0,
            requeued: false,
            replayed: false,
        }
    }

    /// Stamp the measuring session and iteration.
    pub fn with_provenance(mut self, session: u64, iteration: usize) -> Self {
        self.session = session;
        self.iteration = iteration;
        self
    }

    /// Stamp the fault/replay flags.
    pub fn with_flags(mut self, requeued: bool, replayed: bool) -> Self {
        self.requeued = requeued;
        self.replayed = replayed;
        self
    }

    /// The measured cost.
    pub fn cost(&self) -> f64 {
        f64::from_bits(self.cost_bits)
    }

    /// The measurement's wall-clock time.
    pub fn wall_time(&self) -> f64 {
        f64::from_bits(self.wall_bits)
    }
}

/// A cost served from the store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredCost {
    /// The first-recorded cost for the key.
    pub cost: f64,
    /// The wall-clock time of the original measurement.
    pub wall_time: f64,
}

/// Per-application summary inside [`StoreStats`].
#[derive(Debug, Clone, Serialize)]
pub struct AppStats {
    /// Application label.
    pub app: String,
    /// Unique live configurations recorded for it.
    pub configs: usize,
}

/// Snapshot of a store's size and composition.
#[derive(Debug, Clone, Serialize)]
pub struct StoreStats {
    /// Backing file path.
    pub path: String,
    /// Backing file size in bytes.
    pub file_bytes: u64,
    /// Total log records, superseded duplicates included.
    pub records: usize,
    /// Unique live `(app, fingerprint, configuration)` keys.
    pub live_configs: usize,
    /// Per-application live config counts, sorted by label.
    pub apps: Vec<AppStats>,
    /// A torn trailing record was truncated when this store was opened.
    pub torn_tail_truncated: bool,
}

/// Outcome of a federation merge ([`PerfStore::merge_records`] /
/// [`PerfStore::merge_from`]).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MergeStats {
    /// Peer records examined.
    pub scanned: usize,
    /// Novel records appended into the local log.
    pub merged: usize,
    /// Records skipped because the local store already serves their
    /// `(app, fingerprint, key)`.
    pub skipped: usize,
    /// Skipped records whose cost differed from the locally served cost —
    /// both sides measured the key independently and the local first
    /// write won ([`Counter::StoreMergeConflicts`]).
    pub conflicts: usize,
}

impl MergeStats {
    /// Accumulate another merge outcome (chunked merges sum their stats).
    pub fn absorb(&mut self, other: MergeStats) {
        self.scanned += other.scanned;
        self.merged += other.merged;
        self.skipped += other.skipped;
        self.conflicts += other.conflicts;
    }
}

/// Outcome of a [`PerfStore::compact`] or [`PerfStore::gc`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CompactionStats {
    /// Log records before.
    pub records_before: usize,
    /// Log records after (= live records kept).
    pub records_after: usize,
    /// File bytes before.
    pub bytes_before: u64,
    /// File bytes after.
    pub bytes_after: u64,
}

/// Stable 64-bit fingerprint of a search space's parameter declarations
/// and (describable) constraints.
///
/// FNV-1a over the serde_json encoding of the parameter list — hand-rolled
/// and version-stable, unlike `DefaultHasher`. Constraints that expose a
/// canonical [`fingerprint_token`](crate::constraint::ConstraintSpec::fingerprint_token)
/// are folded in *order-insensitively* (each token hashed independently,
/// combined with a commutative wrapping sum), so two spaces that differ
/// only in constraint ordering fingerprint identically. Spaces with no
/// describable constraints — including every unconstrained space — hash
/// exactly as before this scheme existed, so records written by older
/// stores still hit.
pub fn space_fingerprint(space: &SearchSpace) -> u64 {
    let blob = serde_json::to_string(&space.params()).expect("params serialize");
    let mut h = fnv1a(blob.as_bytes());
    let mut acc: u64 = 0;
    let mut count: u64 = 0;
    for c in space.constraints() {
        if let Some(token) = c.spec(space).fingerprint_token() {
            acc = acc.wrapping_add(fnv1a(token.as_bytes()));
            count += 1;
        }
    }
    if count > 0 {
        h ^= fnv1a(&acc.to_le_bytes()) ^ fnv1a(&count.to_le_bytes());
    }
    h
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> HarmonyError {
    HarmonyError::Io(format!("{what} {}: {e}", path.display()))
}

fn encode_line<T: Serialize>(value: &T) -> Result<String> {
    let mut line = serde_json::to_string(value).map_err(|e| HarmonyError::Io(e.to_string()))?;
    line.push('\n');
    Ok(line)
}

fn push_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let before = out.len();
        let _ = write!(out, "{f}");
        if !out[before..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Encode one [`StoreRecord`] straight into `out`, byte-identical to
/// `encode_line(&record)`. The generic path builds a full `Value` tree
/// (one boxed node and one key `String` per field) before writing; at one
/// insert per report this was the single largest term of the store's
/// per-evaluation cost, so the hot path formats directly instead.
/// `encode_matches_the_generic_serializer` pins the two encodings to each
/// other.
fn push_record_line(rec: &StoreRecord, out: &mut String) {
    out.push_str("{\"app\":");
    push_json_str(&rec.app, out);
    let _ = write!(out, ",\"fingerprint\":{}", rec.fingerprint);
    out.push_str(",\"config\":{\"names\":[");
    for (i, name) in rec.config.names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(name, out);
    }
    out.push_str("],\"values\":[");
    for (i, value) in rec.config.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match value {
            ParamValue::Int(x) => {
                let _ = write!(out, "{{\"Int\":{x}}}");
            }
            ParamValue::Real(x) => {
                out.push_str("{\"Real\":");
                push_json_f64(*x, out);
                out.push('}');
            }
            ParamValue::Enum { index, label } => {
                let _ = write!(out, "{{\"Enum\":{{\"index\":{index},\"label\":");
                push_json_str(label, out);
                out.push_str("}}");
            }
        }
    }
    let _ = write!(
        out,
        "]}},\"cost_bits\":{},\"wall_bits\":{},\"session\":{},\"iteration\":{},\"requeued\":{},\"replayed\":{}}}",
        rec.cost_bits, rec.wall_bits, rec.session, rec.iteration, rec.requeued, rec.replayed
    );
    out.push('\n');
}

/// The durable performance database: an append-only JSON-lines log plus an
/// in-memory first-write-wins index. See the [module docs](self) for format,
/// fsync policy, and cache semantics.
pub struct PerfStore {
    path: PathBuf,
    file: File,
    telemetry: Telemetry,
    /// Every log record in file order (compaction rewrites this).
    records: Vec<StoreRecord>,
    /// `app → fingerprint → cache_key → position in `records`` of the
    /// first (live) record for that key. Nested (rather than keyed by an
    /// `(app, fingerprint)` tuple) so the per-proposal hot path can probe
    /// with a borrowed `&str` instead of allocating a composite key.
    index: HashMap<String, HashMap<u64, HashMap<Vec<i64>, usize>>>,
    /// Appends since the last `sync_data`; see [`Self::sync_every`].
    unsynced: usize,
    /// When the last append hit the file. [`SharedStore`]'s flusher only
    /// syncs a store that has gone quiet: an fsync on the inode being
    /// appended to serializes with the appender at the filesystem level,
    /// so syncing mid-burst would stall the serving path (lock held)
    /// for the full fsync.
    last_append: Instant,
    /// `sync_data` cadence in appends (≥1). The store is a cache, not a
    /// correctness log: an unsynced tail lost to a crash just gets
    /// re-measured.
    pub sync_every: usize,
    torn_tail_truncated: bool,
}

impl std::fmt::Debug for PerfStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfStore")
            .field("path", &self.path)
            .field("records", &self.records.len())
            .field("live_configs", &self.live_configs())
            .finish_non_exhaustive()
    }
}

impl PerfStore {
    /// Open the store at `path`, creating it (with a header line) if absent
    /// or empty. An existing file is scanned WAL-style: a torn trailing
    /// record is truncated away, anything else unreadable is
    /// [`HarmonyError::StoreCorrupt`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, Telemetry::disabled())
    }

    /// [`open`](Self::open) recording hits/misses/inserts/compactions and
    /// lookup / append+fsync latencies on `telemetry`.
    pub fn open_with(path: impl AsRef<Path>, telemetry: Telemetry) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let exists = std::fs::metadata(&path)
            .map(|m| m.len() > 0)
            .unwrap_or(false);
        if !exists {
            let mut file = File::create(&path).map_err(|e| io_err("create", &path, e))?;
            let line = encode_line(&StoreHeader {
                kind: STORE_KIND.into(),
                version: STORE_VERSION,
            })?;
            file.write_all(line.as_bytes())
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err("write header to", &path, e))?;
            return Ok(PerfStore {
                path,
                file,
                telemetry,
                records: Vec::new(),
                index: HashMap::new(),
                unsynced: 0,
                last_append: Instant::now(),
                sync_every: DEFAULT_SYNC_EVERY,
                torn_tail_truncated: false,
            });
        }

        let blob = std::fs::read_to_string(&path).map_err(|e| io_err("read", &path, e))?;
        // Same single-pass recovery scan as the WAL: `good_end` is the byte
        // offset just past the last parseable record; a bad record is held
        // until we know whether readable lines follow it (torn tail vs.
        // mid-file corruption).
        let mut records: Vec<StoreRecord> = Vec::new();
        let mut pending_bad: Option<(usize, String)> = None;
        let mut good_end = 0usize;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        for chunk in blob.split_inclusive('\n') {
            line_no += 1;
            offset += chunk.len();
            let line = chunk.trim_end();
            if line_no == 1 {
                let h: StoreHeader = serde_json::from_str(line).map_err(|e| {
                    HarmonyError::StoreCorrupt(format!("{}: bad header: {e}", path.display()))
                })?;
                if h.kind != STORE_KIND {
                    return Err(HarmonyError::StoreCorrupt(format!(
                        "{}: not a performance store (kind {:?})",
                        path.display(),
                        h.kind
                    )));
                }
                if h.version != STORE_VERSION {
                    return Err(HarmonyError::StoreCorrupt(format!(
                        "{}: store version {} (this build reads {STORE_VERSION})",
                        path.display(),
                        h.version
                    )));
                }
                good_end = offset;
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if let Some((bad_line, e)) = pending_bad.take() {
                return Err(HarmonyError::StoreCorrupt(format!(
                    "{}: unreadable record at line {bad_line}: {e}",
                    path.display()
                )));
            }
            match serde_json::from_str::<StoreRecord>(line) {
                Ok(r) => {
                    records.push(r);
                    good_end = offset;
                }
                Err(e) => pending_bad = Some((line_no, e.to_string())),
            }
        }
        if line_no == 0 {
            return Err(HarmonyError::StoreCorrupt(format!(
                "{}: empty store has no header",
                path.display()
            )));
        }
        let torn = pending_bad.is_some();

        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("reopen", &path, e))?;
        if good_end < blob.len() {
            file.set_len(good_end as u64)
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err("truncate torn tail of", &path, e))?;
            if torn {
                telemetry.inc(Counter::StoreTornTails);
            }
        }

        let index = Self::build_index(&records);
        Ok(PerfStore {
            path,
            file,
            telemetry,
            records,
            index,
            unsynced: 0,
            last_append: Instant::now(),
            sync_every: DEFAULT_SYNC_EVERY,
            torn_tail_truncated: torn,
        })
    }

    fn build_index(
        records: &[StoreRecord],
    ) -> HashMap<String, HashMap<u64, HashMap<Vec<i64>, usize>>> {
        let mut index: HashMap<String, HashMap<u64, HashMap<Vec<i64>, usize>>> = HashMap::new();
        for (pos, rec) in records.iter().enumerate() {
            index
                .entry(rec.app.clone())
                .or_default()
                .entry(rec.fingerprint)
                .or_default()
                .entry(rec.config.cache_key())
                .or_insert(pos);
        }
        index
    }

    /// Backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total log records, superseded duplicates included.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Unique live `(app, fingerprint, configuration)` keys.
    pub fn live_configs(&self) -> usize {
        self.index
            .values()
            .flat_map(|by_fp| by_fp.values())
            .map(|m| m.len())
            .sum()
    }

    /// Look up the first-recorded cost for a configuration. Counts a
    /// [`Counter::StoreHits`] or [`Counter::StoreMisses`] and observes
    /// [`Latency::StoreLookup`].
    pub fn lookup(&self, app: &str, fingerprint: u64, key: &[i64]) -> Option<StoredCost> {
        let started = Instant::now();
        let span = self
            .telemetry
            .span_begin(SpanKind::StoreLookup, 0, "store", 0);
        let hit = self.live_pos(app, fingerprint, key).map(|pos| {
            let rec = &self.records[pos];
            StoredCost {
                cost: rec.cost(),
                wall_time: rec.wall_time(),
            }
        });
        self.telemetry.span_end(span);
        self.telemetry
            .observe(Latency::StoreLookup, started.elapsed());
        self.telemetry.inc(if hit.is_some() {
            Counter::StoreHits
        } else {
            Counter::StoreMisses
        });
        hit
    }

    /// Position of the live (first-recorded) record for a key, if any.
    /// Alloc-free: every level of the index probes with a borrow.
    fn live_pos(&self, app: &str, fingerprint: u64, key: &[i64]) -> Option<usize> {
        self.index
            .get(app)
            .and_then(|by_fp| by_fp.get(&fingerprint))
            .and_then(|m| m.get(key))
            .copied()
    }

    /// Append one measured record. Returns `Ok(true)` when the record was
    /// written, `Ok(false)` when it duplicated the live entry bit-for-bit
    /// and was skipped (two deterministic runs produce identical costs — the
    /// dedup is what keeps a warm re-run from growing the log at all).
    /// A re-measurement with a *different* cost is appended for provenance,
    /// but the index still serves the first-recorded cost.
    pub fn insert(&mut self, record: StoreRecord) -> Result<bool> {
        self.insert_batch(vec![record]).map(|written| written > 0)
    }

    /// Batched [`insert`](Self::insert): every novel record of the batch is
    /// encoded into one buffer and appended with a single write, so a whole
    /// `ReportBatch` costs one store lock and one syscall instead of one
    /// per trial. Dedup semantics are identical to serial inserts — a
    /// bit-for-bit duplicate of the live entry (including one earlier in
    /// this same batch) is skipped. Returns how many records were written.
    pub fn insert_batch(&mut self, records: Vec<StoreRecord>) -> Result<usize> {
        use std::collections::hash_map::Entry;
        let mut blob = String::with_capacity(records.len() * 192);
        let before = self.records.len();
        for record in records {
            let key = record.config.cache_key();
            // One `entry` probe decides dedup *and* performs the index
            // insert — the key (a `Vec<i64>`) is hashed exactly once per
            // record, and a duplicate earlier in this same batch is
            // caught by the same probe because the index is updated as
            // we go. (`HashMap::entry` on the outer map would demand an
            // owned `String` even in the steady state where the app is
            // already indexed; probe borrowed first and clone only for
            // a genuinely new label.)
            if !self.index.contains_key(record.app.as_str()) {
                self.index.insert(record.app.clone(), HashMap::new());
            }
            let by_key = self
                .index
                .get_mut(record.app.as_str())
                .expect("app entry ensured above")
                .entry(record.fingerprint)
                .or_default();
            match by_key.entry(key) {
                Entry::Occupied(live) => {
                    // Same key, same cost: a true duplicate, skipped.
                    // Same key, new cost (noisy objective): appended to
                    // the log for provenance, but the index keeps
                    // serving the first-recorded cost.
                    if self.records[*live.get()].cost_bits == record.cost_bits {
                        continue;
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert(self.records.len());
                }
            }
            push_record_line(&record, &mut blob);
            self.telemetry.inc(Counter::StoreInserts);
            self.records.push(record);
        }
        let written = self.records.len() - before;
        if written == 0 {
            return Ok(0);
        }
        // Memory is updated before the append hits disk: if the write
        // errors, this process still serves the records (consistent with
        // what it measured) and only the next open loses them — cache
        // semantics, they would simply be re-measured.
        let started = Instant::now();
        self.file
            .write_all(blob.as_bytes())
            .map_err(|e| io_err("append to", &self.path, e))?;
        self.last_append = started;
        self.unsynced += written;
        if self.unsynced >= self.sync_every.max(1) {
            self.file
                .sync_data()
                .map_err(|e| io_err("sync", &self.path, e))?;
            self.unsynced = 0;
            self.telemetry
                .observe(Latency::StoreAppendFsync, started.elapsed());
        }
        Ok(written)
    }

    /// Merge peer records into this store (anti-entropy replication).
    ///
    /// Unlike [`insert_batch`](Self::insert_batch) — which appends a
    /// re-measurement with a different cost for provenance — a merge is a
    /// pure set union under first-write-wins: a record whose
    /// `(app, fingerprint, key)` the local store already serves is
    /// *skipped entirely*, whatever its cost. That makes the operation
    /// idempotent (re-merging the same peer is a no-op), commutative, and
    /// order-insensitive: every merge order converges on the same live
    /// set, with each key served by whichever record reached this store
    /// first. A skipped record whose cost differs from the local one is
    /// counted as a conflict ([`Counter::StoreMergeConflicts`]).
    pub fn merge_records(&mut self, records: Vec<StoreRecord>) -> Result<MergeStats> {
        let mut stats = MergeStats::default();
        let mut blob = String::with_capacity(records.len().min(4096) * 192);
        for record in records {
            stats.scanned += 1;
            let key = record.config.cache_key();
            if let Some(pos) = self.live_pos(&record.app, record.fingerprint, &key) {
                stats.skipped += 1;
                if self.records[pos].cost_bits != record.cost_bits {
                    stats.conflicts += 1;
                    self.telemetry.inc(Counter::StoreMergeConflicts);
                }
                continue;
            }
            // Same borrowed-probe discipline as `insert_batch`; the index
            // is updated as we go, so a duplicate key later in this same
            // batch resolves first-write-wins within the batch too.
            if !self.index.contains_key(record.app.as_str()) {
                self.index.insert(record.app.clone(), HashMap::new());
            }
            self.index
                .get_mut(record.app.as_str())
                .expect("app entry ensured above")
                .entry(record.fingerprint)
                .or_default()
                .insert(key, self.records.len());
            push_record_line(&record, &mut blob);
            self.telemetry.inc(Counter::StoreMergedRecords);
            stats.merged += 1;
            self.records.push(record);
        }
        if stats.merged == 0 {
            return Ok(stats);
        }
        let started = Instant::now();
        self.file
            .write_all(blob.as_bytes())
            .map_err(|e| io_err("append to", &self.path, e))?;
        self.last_append = started;
        self.unsynced += stats.merged;
        if self.unsynced >= self.sync_every.max(1) {
            self.file
                .sync_data()
                .map_err(|e| io_err("sync", &self.path, e))?;
            self.unsynced = 0;
            self.telemetry
                .observe(Latency::StoreAppendFsync, started.elapsed());
        }
        Ok(stats)
    }

    /// What [`merge_records`](Self::merge_records) *would* do, without
    /// writing anything (`repro store merge --dry-run`).
    pub fn merge_preview(&self, records: &[StoreRecord]) -> MergeStats {
        let mut stats = MergeStats::default();
        let mut fresh: std::collections::HashSet<(&str, u64, Vec<i64>)> =
            std::collections::HashSet::new();
        for record in records {
            stats.scanned += 1;
            let key = record.config.cache_key();
            if let Some(pos) = self.live_pos(&record.app, record.fingerprint, &key) {
                stats.skipped += 1;
                if self.records[pos].cost_bits != record.cost_bits {
                    stats.conflicts += 1;
                }
            } else if fresh.insert((record.app.as_str(), record.fingerprint, key)) {
                stats.merged += 1;
            } else {
                stats.skipped += 1;
            }
        }
        stats
    }

    /// Merge every live record of `peer` into this store; see
    /// [`merge_records`](Self::merge_records) for the algebra.
    pub fn merge_from(&mut self, peer: &PerfStore) -> Result<MergeStats> {
        let records: Vec<StoreRecord> = peer.live_records().into_iter().cloned().collect();
        self.merge_records(records)
    }

    /// Serialize the replication log from record position `from` onward,
    /// in the byte-identical on-disk record encoding, for the
    /// `/store/log` anti-entropy endpoint. Returns `(start, blob)`: when
    /// `from` points past the end of the log (the peer compacted since
    /// the puller's last pull), the whole log is re-served from 0 —
    /// merges are idempotent, so over-serving is harmless and it
    /// resynchronizes the puller's high-water mark.
    pub fn encode_log_from(&self, from: usize) -> (usize, String) {
        let start = if from <= self.records.len() { from } else { 0 };
        let mut blob = String::with_capacity((self.records.len() - start) * 192);
        for rec in &self.records[start..] {
            push_record_line(rec, &mut blob);
        }
        (start, blob)
    }

    /// Force `sync_data` on any unsynced appends.
    pub fn flush(&mut self) -> Result<()> {
        if self.unsynced > 0 {
            self.file
                .sync_data()
                .map_err(|e| io_err("sync", &self.path, e))?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Appends not yet covered by a `sync_data` — group-commit
    /// bookkeeping for [`SharedStore`]'s background flusher.
    pub fn unsynced(&self) -> usize {
        self.unsynced
    }

    /// How long since the last append hit the file — the flusher's
    /// quiescence probe.
    pub fn idle_for(&self) -> std::time::Duration {
        self.last_append.elapsed()
    }

    /// Duplicate the log's file descriptor so a flusher can `sync_data`
    /// *without holding the store lock*. A descriptor cloned just before
    /// a compaction points at the replaced file; syncing it is harmless
    /// (the compaction path fsyncs its own snapshot).
    pub fn sync_fd(&self) -> std::io::Result<File> {
        self.file.try_clone()
    }

    /// Credit `n` appends as synced. Saturating, because a compaction
    /// (which resets the counter) may have run while the flusher was
    /// syncing on its cloned descriptor.
    pub fn mark_synced(&mut self, n: usize) {
        self.unsynced = self.unsynced.saturating_sub(n);
    }

    /// The telemetry handle measurements are recorded on.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Positions of the live records, in first-occurrence (file) order.
    fn live_positions(&self) -> Vec<usize> {
        let mut live: Vec<usize> = self
            .index
            .values()
            .flat_map(|by_fp| by_fp.values())
            .flat_map(|m| m.values().copied())
            .collect();
        live.sort_unstable();
        live
    }

    /// Rewrite the log keeping only records for which `keep` returns true
    /// among the live set, via temp file + fsync + atomic rename.
    fn rewrite(&mut self, keep: impl Fn(&StoreRecord) -> bool) -> Result<CompactionStats> {
        let bytes_before = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        let records_before = self.records.len();
        let kept: Vec<StoreRecord> = self
            .live_positions()
            .into_iter()
            .map(|pos| self.records[pos].clone())
            .filter(|r| keep(r))
            .collect();
        let tmp = self.path.with_extension("compact");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            let mut blob = encode_line(&StoreHeader {
                kind: STORE_KIND.into(),
                version: STORE_VERSION,
            })?;
            for rec in &kept {
                blob.push_str(&encode_line(rec)?);
            }
            f.write_all(blob.as_bytes())
                .and_then(|()| f.sync_data())
                .map_err(|e| io_err("write", &tmp, e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("rename over", &self.path, e))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err("reopen", &self.path, e))?;
        self.unsynced = 0;
        self.index = Self::build_index(&kept);
        self.records = kept;
        self.telemetry.inc(Counter::StoreCompactions);
        let bytes_after = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        Ok(CompactionStats {
            records_before,
            records_after: self.records.len(),
            bytes_before,
            bytes_after,
        })
    }

    /// Snapshot the live records to a fresh log (temp file + atomic
    /// rename), dropping superseded duplicates. Lookups are unchanged.
    pub fn compact(&mut self) -> Result<CompactionStats> {
        self.rewrite(|_| true)
    }

    /// Compaction that additionally drops every record not belonging to
    /// `keep_app` (`None` keeps all applications — plain compaction).
    pub fn gc(&mut self, keep_app: Option<&str>) -> Result<CompactionStats> {
        match keep_app {
            None => self.compact(),
            Some(app) => {
                let app = app.to_string();
                self.rewrite(move |r| r.app == app)
            }
        }
    }

    /// Size and composition snapshot (serializable for `repro store stats`).
    pub fn stats(&self) -> StoreStats {
        let mut per_app: HashMap<&str, usize> = HashMap::new();
        for (app, by_fp) in self.index.iter() {
            *per_app.entry(app.as_str()).or_default() +=
                by_fp.values().map(|m| m.len()).sum::<usize>();
        }
        let mut apps: Vec<AppStats> = per_app
            .into_iter()
            .map(|(app, configs)| AppStats {
                app: app.to_string(),
                configs,
            })
            .collect();
        apps.sort_by(|a, b| a.app.cmp(&b.app));
        StoreStats {
            path: self.path.display().to_string(),
            file_bytes: std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0),
            records: self.records.len(),
            live_configs: self.live_configs(),
            apps,
            torn_tail_truncated: self.torn_tail_truncated,
        }
    }

    /// The live records, in file order (inspection / `repro store inspect`).
    pub fn live_records(&self) -> Vec<&StoreRecord> {
        self.live_positions()
            .into_iter()
            .map(|pos| &self.records[pos])
            .collect()
    }

    /// Materialize the in-memory prior-run view over every live record
    /// (see [`PriorRunDb`] — since the store subsumed it, that type is the
    /// query layer and this is its constructor).
    pub fn priors(&self) -> PriorRunDb {
        let mut db = PriorRunDb::new();
        for rec in self.live_records() {
            db.record(rec.app.clone(), rec.config.clone(), rec.cost());
        }
        db
    }

    /// [`priors`](Self::priors) filtered to one application label.
    pub fn priors_for(&self, app: &str) -> PriorRunDb {
        let mut db = PriorRunDb::new();
        for rec in self.live_records() {
            if rec.app == app {
                db.record(rec.app.clone(), rec.config.clone(), rec.cost());
            }
        }
        db
    }

    /// Warm-start simplex seed for `app` in `space`, from stored best
    /// points (`StartPoint::Center` when the store knows nothing).
    pub fn seed_for(&self, app: &str, space: &SearchSpace) -> crate::strategy::StartPoint {
        self.priors_for(app).seed_for(app, space)
    }

    /// Warm-start narrowed space for `app` around the stored best point.
    pub fn narrowed_space(
        &self,
        app: &str,
        space: &SearchSpace,
        margin: f64,
    ) -> Result<SearchSpace> {
        self.priors_for(app).narrowed_space(app, space, margin)
    }
}

impl Drop for PerfStore {
    fn drop(&mut self) {
        // Best-effort: push any unsynced tail to disk. Failure is fine —
        // the records are a cache and get re-measured if lost.
        let _ = self.flush();
    }
}

/// How often [`SharedStore`]'s background flusher polls for unsynced
/// appends.
const FLUSH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(20);

/// How long the append path must have been quiet before the flusher
/// syncs. An `fsync` serializes with concurrent appends to the same
/// inode, so a sync issued mid-burst stalls the serving path (which
/// holds the store lock across its `write`) for the full fsync — on slow
/// filesystems that is longer than an entire quick bench scenario.
/// Waiting for a gap makes the group commit free: it runs between
/// measurement bursts, and process exit still syncs the tail via
/// `PerfStore`'s `Drop`.
const FLUSH_QUIESCENCE: std::time::Duration = std::time::Duration::from_millis(50);

/// State behind a [`SharedStore`] handle: the store itself, which is
/// also the liveness anchor for the background flusher (the flusher
/// holds a `Weak` to this and exits once every handle is gone).
struct StoreInner {
    store: Mutex<PerfStore>,
}

/// Cheap cloneable handle sharing one [`PerfStore`] across server shards
/// and driver threads.
///
/// Unlike a bare `PerfStore`, a `SharedStore` never runs `sync_data`
/// inline on the append path: `sync_data` can cost a millisecond or
/// more, and paying it while holding the store lock stalls every
/// shard's report path (visible as p99 spikes and throughput collapse
/// in the bench regression gate). Instead a background flusher thread
/// polls every [`FLUSH_INTERVAL`] and group-commits once the append
/// path has been quiet for [`FLUSH_QUIESCENCE`], syncing on a cloned
/// file descriptor *outside* the lock. When the last handle drops,
/// [`PerfStore`]'s `Drop` still flushes the tail synchronously.
#[derive(Clone)]
pub struct SharedStore(Arc<StoreInner>);

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.store.lock().fmt(f)
    }
}

impl SharedStore {
    /// Wrap an opened store and start its background flusher.
    pub fn new(mut store: PerfStore) -> Self {
        // The inline count-based fsync must never fire under the
        // server; the flusher owns sync cadence from here on.
        store.sync_every = usize::MAX;
        let inner = Arc::new(StoreInner {
            store: Mutex::new(store),
        });
        Self::spawn_flusher(Arc::downgrade(&inner));
        SharedStore(inner)
    }

    /// Periodic group-commit loop. Holds only a `Weak`, so the store's
    /// lifetime is governed by the handles: once they are gone the
    /// upgrade fails and the thread exits (and `PerfStore::drop` has
    /// already flushed the tail). Spawn failure is tolerated — the
    /// store then just syncs on drop, never mid-run.
    fn spawn_flusher(weak: std::sync::Weak<StoreInner>) {
        let _ = std::thread::Builder::new()
            .name("ah-store-flusher".into())
            .spawn(move || loop {
                std::thread::sleep(FLUSH_INTERVAL);
                let Some(inner) = weak.upgrade() else { break };
                // Briefly lock to snapshot the unsynced count and clone
                // the fd, then sync with the lock *released* so reports
                // and lookups keep flowing during the fsync.
                let pending = {
                    let store = inner.store.lock();
                    match store.unsynced() {
                        0 => None,
                        _ if store.idle_for() < FLUSH_QUIESCENCE => None,
                        n => store
                            .sync_fd()
                            .ok()
                            .map(|fd| (n, fd, store.telemetry().clone())),
                    }
                };
                if let Some((n, fd, telemetry)) = pending {
                    let started = Instant::now();
                    if fd.sync_data().is_ok() {
                        telemetry.observe(Latency::StoreAppendFsync, started.elapsed());
                        inner.store.lock().mark_synced(n);
                    }
                }
            });
    }

    /// Open (or create) the store at `path`; see [`PerfStore::open`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(PerfStore::open(path)?))
    }

    /// Open with a telemetry handle; see [`PerfStore::open_with`].
    pub fn open_with(path: impl AsRef<Path>, telemetry: Telemetry) -> Result<Self> {
        Ok(Self::new(PerfStore::open_with(path, telemetry)?))
    }

    /// Locked [`PerfStore::lookup`].
    pub fn lookup(&self, app: &str, fingerprint: u64, key: &[i64]) -> Option<StoredCost> {
        self.0.store.lock().lookup(app, fingerprint, key)
    }

    /// Locked [`PerfStore::insert`].
    pub fn insert(&self, record: StoreRecord) -> Result<bool> {
        self.0.store.lock().insert(record)
    }

    /// Locked [`PerfStore::insert_batch`].
    pub fn insert_batch(&self, records: Vec<StoreRecord>) -> Result<usize> {
        self.0.store.lock().insert_batch(records)
    }

    /// Locked [`PerfStore::merge_records`].
    pub fn merge_records(&self, records: Vec<StoreRecord>) -> Result<MergeStats> {
        self.0.store.lock().merge_records(records)
    }

    /// Locked [`PerfStore::encode_log_from`].
    pub fn encode_log_from(&self, from: usize) -> (usize, String) {
        self.0.store.lock().encode_log_from(from)
    }

    /// Locked [`PerfStore::len`] — total log records, for replication
    /// high-water marks and `/status`.
    pub fn record_count(&self) -> usize {
        self.0.store.lock().len()
    }

    /// Locked [`PerfStore::flush`].
    pub fn flush(&self) -> Result<()> {
        self.0.store.lock().flush()
    }

    /// Locked [`PerfStore::unsynced`]: appended records not yet fsynced —
    /// the flush-lag gauge the SLO engine watches.
    pub fn unsynced(&self) -> usize {
        self.0.store.lock().unsynced()
    }

    /// Locked [`PerfStore::stats`].
    pub fn stats(&self) -> StoreStats {
        self.0.store.lock().stats()
    }

    /// Run `f` under the store lock (compaction, priors queries, …).
    pub fn with<R>(&self, f: impl FnOnce(&mut PerfStore) -> R) -> R {
        f(&mut self.0.store.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StartPoint;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ah-store-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.store"))
    }

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 100, 1)
            .int("y", 0, 100, 1)
            .build()
            .unwrap()
    }

    fn rec(app: &str, fp: u64, x: f64, y: f64, cost: f64) -> StoreRecord {
        StoreRecord::new(app, fp, space().project(&[x, y]), cost, cost)
    }

    #[test]
    fn encode_matches_the_generic_serializer() {
        // The hot-path encoder must stay byte-identical to the derive-based
        // one: recovery, compaction, and old store files all go through the
        // generic path. Exercise every `ParamValue` shape, float formatting
        // corner cases (integral, negative zero, exponent, non-finite), and
        // string escaping.
        let sp = SearchSpace::builder()
            .int("tile", 1, 128, 1)
            .real("tol", 1e-12, 1.0)
            .enumeration("layout", ["row \"major\"", "col\nmajor", "z\u{1}order"])
            .build()
            .unwrap();
        let fp = space_fingerprint(&sp);
        let configs = [
            sp.project(&[1.0, 0.5, 0.0]),
            sp.project(&[128.0, 1e-12, 2.0]),
            sp.project(&[64.0, 2.0, 1.0]),
            // Non-finite and negative-zero reals can't come out of a
            // projection; build them by hand to pin the `null`/`-0.0` rules.
            Configuration::new(
                vec!["a".into(), "b".into(), "c".into()],
                vec![
                    ParamValue::Real(f64::NAN),
                    ParamValue::Real(-0.0),
                    ParamValue::Real(f64::NEG_INFINITY),
                ],
            ),
        ];
        let costs = [0.25, -0.0, 1e300, 2.0, f64::NAN, f64::INFINITY];
        for (i, config) in configs.iter().enumerate() {
            for (j, &cost) in costs.iter().enumerate() {
                let record = StoreRecord::new("app \"x\"\n\u{7}", fp, config.clone(), cost, -cost)
                    .with_provenance(u64::MAX, usize::MAX)
                    .with_flags(i % 2 == 0, j % 2 == 1);
                let mut fast = String::new();
                push_record_line(&record, &mut fast);
                assert_eq!(
                    fast,
                    encode_line(&record).unwrap(),
                    "config {i} cost {cost}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_insert_reopen_lookup() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let sp = space();
        let fp = space_fingerprint(&sp);
        {
            let mut store = PerfStore::open(&path).unwrap();
            assert!(store.is_empty());
            assert!(store.insert(rec("app", fp, 3.0, 4.0, 25.0)).unwrap());
            assert!(store.insert(rec("app", fp, 5.0, 6.0, 61.0)).unwrap());
        }
        let store = PerfStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.live_configs(), 2);
        let key = sp.project(&[3.0, 4.0]).cache_key();
        let hit = store.lookup("app", fp, &key).unwrap();
        assert_eq!(hit.cost.to_bits(), 25.0f64.to_bits());
        assert!(store.lookup("other-app", fp, &key).is_none());
        assert!(store.lookup("app", fp ^ 1, &key).is_none());
    }

    #[test]
    fn identical_duplicate_is_skipped_different_cost_appends() {
        let path = temp_path("dedup");
        let _ = std::fs::remove_file(&path);
        let fp = 7;
        let mut store = PerfStore::open(&path).unwrap();
        assert!(store.insert(rec("a", fp, 1.0, 1.0, 9.0)).unwrap());
        // Bit-identical re-measurement: skipped, log does not grow.
        assert!(!store.insert(rec("a", fp, 1.0, 1.0, 9.0)).unwrap());
        assert_eq!(store.len(), 1);
        // Noisy re-measurement: appended for provenance, but the live
        // (served) cost stays the first-recorded one.
        assert!(store.insert(rec("a", fp, 1.0, 1.0, 9.5)).unwrap());
        assert_eq!(store.len(), 2);
        assert_eq!(store.live_configs(), 1);
        let key = space().project(&[1.0, 1.0]).cache_key();
        assert_eq!(store.lookup("a", fp, &key).unwrap().cost, 9.0);
    }

    #[test]
    fn first_write_wins_survives_reopen() {
        let path = temp_path("first-wins");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = PerfStore::open(&path).unwrap();
            store.insert(rec("a", 1, 2.0, 2.0, 5.0)).unwrap();
            store.insert(rec("a", 1, 2.0, 2.0, 7.0)).unwrap();
        }
        let store = PerfStore::open(&path).unwrap();
        let key = space().project(&[2.0, 2.0]).cache_key();
        assert_eq!(store.lookup("a", 1, &key).unwrap().cost, 5.0);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = PerfStore::open(&path).unwrap();
            for i in 0..5 {
                store.insert(rec("a", 1, i as f64, 0.0, i as f64)).unwrap();
            }
        }
        let torn_bytes = b"{\"app\":\"torn-marker\",\"finger";
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(torn_bytes).unwrap();
        }
        let t = Telemetry::enabled();
        let mut store = PerfStore::open_with(&path, t.clone()).unwrap();
        assert_eq!(store.len(), 5);
        assert_eq!(t.counter(Counter::StoreTornTails), 1);
        // The torn bytes are gone from disk: append + second reopen work.
        store.insert(rec("a", 1, 9.0, 9.0, 99.0)).unwrap();
        drop(store);
        let blob = std::fs::read(&path).unwrap();
        assert!(!blob
            .windows(torn_bytes.len())
            .any(|w| w == torn_bytes.as_slice()));
        let store = PerfStore::open(&path).unwrap();
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = PerfStore::open(&path).unwrap();
            for i in 0..4 {
                store.insert(rec("a", 1, i as f64, 0.0, i as f64)).unwrap();
            }
        }
        let blob = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = blob.lines().collect();
        lines[2] = "garbage in the middle";
        std::fs::write(&path, lines.join("\n")).unwrap();
        match PerfStore::open(&path) {
            Err(HarmonyError::StoreCorrupt(msg)) => assert!(msg.contains("line 3"), "{msg}"),
            other => panic!("expected StoreCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_and_version_are_corruption() {
        let path = temp_path("kind");
        std::fs::write(&path, "{\"kind\":\"ah-wal\",\"version\":1}\n").unwrap();
        assert!(matches!(
            PerfStore::open(&path),
            Err(HarmonyError::StoreCorrupt(_))
        ));
        std::fs::write(&path, "{\"kind\":\"ah-store\",\"version\":99}\n").unwrap();
        assert!(matches!(
            PerfStore::open(&path),
            Err(HarmonyError::StoreCorrupt(_))
        ));
    }

    #[test]
    fn compaction_preserves_contents_and_shrinks() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let mut store = PerfStore::open(&path).unwrap();
        store.sync_every = 1;
        for i in 0..10 {
            store.insert(rec("a", 1, i as f64, 0.0, i as f64)).unwrap();
        }
        // Superseded duplicates with different costs bloat the log.
        for i in 0..10 {
            store
                .insert(rec("a", 1, i as f64, 0.0, i as f64 + 0.5))
                .unwrap();
        }
        assert_eq!(store.len(), 20);
        let before: Vec<(Vec<i64>, u64)> = store
            .live_records()
            .iter()
            .map(|r| (r.config.cache_key(), r.cost_bits))
            .collect();
        let stats = store.compact().unwrap();
        assert_eq!(stats.records_before, 20);
        assert_eq!(stats.records_after, 10);
        assert!(stats.bytes_after < stats.bytes_before);
        drop(store);
        // Round-trip: reopen serves the identical live set.
        let store = PerfStore::open(&path).unwrap();
        assert_eq!(store.len(), 10);
        let after: Vec<(Vec<i64>, u64)> = store
            .live_records()
            .iter()
            .map(|r| (r.config.cache_key(), r.cost_bits))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn gc_keeps_only_one_app() {
        let path = temp_path("gc");
        let _ = std::fs::remove_file(&path);
        let mut store = PerfStore::open(&path).unwrap();
        store.insert(rec("keep", 1, 1.0, 0.0, 1.0)).unwrap();
        store.insert(rec("drop", 1, 2.0, 0.0, 2.0)).unwrap();
        store.insert(rec("keep", 1, 3.0, 0.0, 3.0)).unwrap();
        store.gc(Some("keep")).unwrap();
        assert_eq!(store.len(), 2);
        let stats = store.stats();
        assert_eq!(stats.apps.len(), 1);
        assert_eq!(stats.apps[0].app, "keep");
        let key = space().project(&[2.0, 0.0]).cache_key();
        assert!(store.lookup("drop", 1, &key).is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_spaces() {
        let a = space_fingerprint(&space());
        let b = space_fingerprint(&space());
        assert_eq!(a, b, "same declarations must fingerprint identically");
        let other = SearchSpace::builder()
            .int("x", 0, 100, 1)
            .int("y", 0, 101, 1)
            .build()
            .unwrap();
        assert_ne!(a, space_fingerprint(&other));
        let renamed = SearchSpace::builder()
            .int("x", 0, 100, 1)
            .int("z", 0, 100, 1)
            .build()
            .unwrap();
        assert_ne!(a, space_fingerprint(&renamed));
        // Pinned value: the fingerprint is part of the on-disk format, so a
        // refactor that silently changes it would orphan every existing
        // store. Update this constant only with a version bump.
        let one = SearchSpace::builder().int("x", 0, 1, 1).build().unwrap();
        assert_eq!(
            space_fingerprint(&one),
            fnv1a(serde_json::to_string(&one.params()).unwrap().as_bytes())
        );
    }

    #[test]
    fn fingerprint_folds_constraints_order_insensitively() {
        use crate::constraint::{MonotoneChain, SumBound};
        let base = || {
            SearchSpace::builder()
                .int("a", 0, 9, 1)
                .int("b", 0, 9, 1)
                .int("c", 0, 9, 1)
        };
        let plain = base().build().unwrap();
        // Unconstrained spaces hash exactly as the params-only scheme did:
        // existing store records must still hit.
        assert_eq!(
            space_fingerprint(&plain),
            fnv1a(serde_json::to_string(&plain.params()).unwrap().as_bytes())
        );
        let chain_then_sum = base()
            .constraint(MonotoneChain::new(["a", "b"]))
            .constraint(SumBound::new(["b", "c"], 2.0, 12.0))
            .build()
            .unwrap();
        let sum_then_chain = base()
            .constraint(SumBound::new(["b", "c"], 2.0, 12.0))
            .constraint(MonotoneChain::new(["a", "b"]))
            .build()
            .unwrap();
        assert_eq!(
            space_fingerprint(&chain_then_sum),
            space_fingerprint(&sum_then_chain),
            "equivalent constraint orderings must fingerprint identically"
        );
        assert_ne!(
            space_fingerprint(&plain),
            space_fingerprint(&chain_then_sum),
            "constraints must distinguish otherwise-identical spaces"
        );
        let different_bounds = base()
            .constraint(MonotoneChain::new(["a", "b"]))
            .constraint(SumBound::new(["b", "c"], 2.0, 13.0))
            .build()
            .unwrap();
        assert_ne!(
            space_fingerprint(&chain_then_sum),
            space_fingerprint(&different_bounds)
        );
    }

    #[test]
    fn priors_view_matches_a_hand_built_db() {
        let path = temp_path("priors");
        let _ = std::fs::remove_file(&path);
        let sp = space();
        let fp = space_fingerprint(&sp);
        let mut store = PerfStore::open(&path).unwrap();
        let mut by_hand = PriorRunDb::new();
        for (x, y, cost) in [(10.0, 20.0, 1.0), (12.0, 22.0, 2.0), (50.0, 50.0, 9.0)] {
            let cfg = sp.project(&[x, y]);
            store
                .insert(StoreRecord::new("gs2", fp, cfg.clone(), cost, cost))
                .unwrap();
            by_hand.record("gs2", cfg, cost);
        }
        let view = store.priors_for("gs2");
        assert_eq!(view.len(), by_hand.len());
        assert_eq!(
            view.best_for("gs2", 3)
                .iter()
                .map(|r| r.cost.to_bits())
                .collect::<Vec<_>>(),
            by_hand
                .best_for("gs2", 3)
                .iter()
                .map(|r| r.cost.to_bits())
                .collect::<Vec<_>>()
        );
        // The warm-start surfaces delegate through the same view.
        match store.seed_for("gs2", &sp) {
            StartPoint::Simplex(points) => assert_eq!(points[0], vec![10.0, 20.0]),
            other => panic!("expected simplex seed, got {other:?}"),
        }
        let narrowed = store.narrowed_space("gs2", &sp, 0.1).unwrap();
        assert!(narrowed.cardinality().unwrap() < sp.cardinality().unwrap());
        assert!(matches!(store.seed_for("unknown", &sp), StartPoint::Center));
    }

    #[test]
    fn shared_store_is_usable_across_clones() {
        let path = temp_path("shared");
        let _ = std::fs::remove_file(&path);
        let shared = SharedStore::open(&path).unwrap();
        let clone = shared.clone();
        clone.insert(rec("a", 1, 4.0, 4.0, 32.0)).unwrap();
        let key = space().project(&[4.0, 4.0]).cache_key();
        assert_eq!(shared.lookup("a", 1, &key).unwrap().cost, 32.0);
        assert_eq!(shared.stats().live_configs, 1);
        shared.with(|s| s.compact()).unwrap();
    }

    #[test]
    fn merge_is_idempotent_and_first_write_wins() {
        let path_a = temp_path("merge-a");
        let path_b = temp_path("merge-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let t = Telemetry::enabled();
        let mut a = PerfStore::open_with(&path_a, t.clone()).unwrap();
        let mut b = PerfStore::open(&path_b).unwrap();
        a.insert(rec("app", 1, 1.0, 1.0, 10.0)).unwrap();
        a.insert(rec("app", 1, 2.0, 2.0, 20.0)).unwrap();
        b.insert(rec("app", 1, 2.0, 2.0, 99.0)).unwrap(); // conflicting cost
        b.insert(rec("app", 1, 3.0, 3.0, 30.0)).unwrap();
        // Dry run predicts exactly what the real merge does.
        let peer: Vec<StoreRecord> = b.live_records().into_iter().cloned().collect();
        let preview = a.merge_preview(&peer);
        let stats = a.merge_from(&b).unwrap();
        assert_eq!(stats.scanned, 2);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.conflicts, 1);
        assert_eq!(
            (preview.merged, preview.skipped, preview.conflicts),
            (stats.merged, stats.skipped, stats.conflicts)
        );
        assert_eq!(t.counter(Counter::StoreMergedRecords), 1);
        assert_eq!(t.counter(Counter::StoreMergeConflicts), 1);
        // First write wins: the conflicting key still serves a's cost.
        let key = space().project(&[2.0, 2.0]).cache_key();
        assert_eq!(a.lookup("app", 1, &key).unwrap().cost, 20.0);
        // Idempotent: merging the same peer again changes nothing.
        let len = a.len();
        let again = a.merge_from(&b).unwrap();
        assert_eq!(again.merged, 0);
        assert_eq!(a.len(), len);
        // And the merged store survives reopen with the same live set.
        drop(a);
        let a = PerfStore::open(&path_a).unwrap();
        assert_eq!(a.live_configs(), 3);
        assert_eq!(a.lookup("app", 1, &key).unwrap().cost, 20.0);
    }

    #[test]
    fn replication_log_roundtrips_into_an_equal_store() {
        let src_path = temp_path("log-src");
        let dst_path = temp_path("log-dst");
        let _ = std::fs::remove_file(&src_path);
        let _ = std::fs::remove_file(&dst_path);
        let mut src = PerfStore::open(&src_path).unwrap();
        for i in 0..6 {
            src.insert(rec("app", 1, i as f64, 0.0, i as f64 + 0.5))
                .unwrap();
        }
        // Pull in two increments, like the SyncPeers task does.
        let mut dst = PerfStore::open(&dst_path).unwrap();
        let mut from = 0;
        for _ in 0..2 {
            let (start, blob) = src.encode_log_from(from);
            assert_eq!(start, from);
            let records: Vec<StoreRecord> = blob
                .lines()
                .map(|l| serde_json::from_str(l).unwrap())
                .collect();
            from = start + records.len();
            dst.merge_records(records).unwrap();
        }
        assert_eq!(from, src.len());
        let live_src: Vec<(Vec<i64>, u64)> = src
            .live_records()
            .iter()
            .map(|r| (r.config.cache_key(), r.cost_bits))
            .collect();
        let live_dst: Vec<(Vec<i64>, u64)> = dst
            .live_records()
            .iter()
            .map(|r| (r.config.cache_key(), r.cost_bits))
            .collect();
        assert_eq!(live_src, live_dst);
        // A high-water mark past the end (peer compacted) re-serves from 0.
        let (start, blob) = src.encode_log_from(from + 10);
        assert_eq!(start, 0);
        assert_eq!(blob.lines().count(), src.len());
    }

    #[test]
    fn telemetry_counts_hits_misses_inserts() {
        let path = temp_path("telemetry");
        let _ = std::fs::remove_file(&path);
        let t = Telemetry::enabled();
        let mut store = PerfStore::open_with(&path, t.clone()).unwrap();
        store.insert(rec("a", 1, 1.0, 1.0, 2.0)).unwrap();
        let key = space().project(&[1.0, 1.0]).cache_key();
        assert!(store.lookup("a", 1, &key).is_some());
        assert!(store.lookup("a", 1, &[999, 999]).is_none());
        store.compact().unwrap();
        assert_eq!(t.counter(Counter::StoreInserts), 1);
        assert_eq!(t.counter(Counter::StoreHits), 1);
        assert_eq!(t.counter(Counter::StoreMisses), 1);
        assert_eq!(t.counter(Counter::StoreCompactions), 1);
    }
}

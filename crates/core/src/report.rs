//! Result summarisation helpers used by the experiment harness.

use serde::{Deserialize, Serialize};

/// Summary of one tuning run in the shape the paper's tables use:
/// default vs. tuned cost, improvement percentage, iterations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningReport {
    /// Human-readable label (e.g. `"lxyes layout, benchmarking run"`).
    pub label: String,
    /// Cost of the untuned default configuration.
    pub default_cost: f64,
    /// Cost of the best configuration found.
    pub tuned_cost: f64,
    /// Fresh evaluations (application runs) consumed by tuning.
    pub iterations: usize,
    /// Total tuning wall time (runs + restart + warm-up overheads).
    pub tuning_time: f64,
}

impl TuningReport {
    /// Improvement as a percentage (the paper's `57.9%` style numbers).
    pub fn improvement_pct(&self) -> f64 {
        if self.default_cost <= 0.0 {
            return 0.0;
        }
        100.0 * (self.default_cost - self.tuned_cost) / self.default_cost
    }

    /// Speedup factor (the paper's `3.4×` style numbers).
    pub fn speedup(&self) -> f64 {
        if self.tuned_cost <= 0.0 {
            return f64::INFINITY;
        }
        self.default_cost / self.tuned_cost
    }
}

/// Where a value falls within a sampled cost distribution.
///
/// §VI compares Harmony's result against systematic sampling of the whole
/// space: "the configuration found by Active Harmony is within the top 5% of
/// the configurations".
pub fn percentile_rank(samples: &[f64], value: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let below = samples.iter().filter(|&&s| s < value).count();
    100.0 * below as f64 / samples.len() as f64
}

/// Fraction (0–100) of samples strictly below a threshold — the paper's
/// "less than 2% of configurations run under 200 seconds" observation.
pub fn fraction_below_pct(samples: &[f64], threshold: f64) -> f64 {
    percentile_rank(samples, threshold)
}

/// Histogram of a cost distribution with `bins` equal-width buckets, for
/// regenerating Figure 6. Returns `(bucket_upper_bounds, counts)`.
pub fn histogram(samples: &[f64], bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(bins > 0, "histogram needs at least one bin");
    if samples.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let mut b = ((s - lo) / width) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    let bounds = (1..=bins).map(|i| lo + width * i as f64).collect();
    (bounds, counts)
}

/// Basic descriptive statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of middle two for even counts).
    pub median: f64,
}

/// Compute [`SampleStats`]; returns `None` for an empty slice.
pub fn sample_stats(samples: &[f64]) -> Option<SampleStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    Some(SampleStats {
        min: sorted[0],
        max: sorted[n - 1],
        mean: sorted.iter().sum::<f64>() / n as f64,
        median,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_and_speedup() {
        let r = TuningReport {
            label: "t".into(),
            default_cost: 43.7,
            tuned_cost: 18.4,
            iterations: 8,
            tuning_time: 300.0,
        };
        assert!((r.improvement_pct() - 57.9).abs() < 0.1);
        assert!((r.speedup() - 2.375).abs() < 0.01);
    }

    #[test]
    fn percentile_rank_counts_strictly_below() {
        let samples = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_rank(&samples, 2.5), 50.0);
        assert_eq!(percentile_rank(&samples, 0.5), 0.0);
        assert_eq!(percentile_rank(&samples, 10.0), 100.0);
        assert_eq!(percentile_rank(&[], 1.0), 0.0);
    }

    #[test]
    fn histogram_covers_all_samples() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (bounds, counts) = histogram(&samples, 10);
        assert_eq!(bounds.len(), 10);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn histogram_handles_constant_samples() {
        let samples = vec![5.0; 7];
        let (_, counts) = histogram(&samples, 4);
        assert_eq!(counts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn stats_are_correct() {
        let s = sample_stats(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert!(sample_stats(&[]).is_none());
    }
}

//! Declarations of tunable parameters.
//!
//! Each parameter becomes one dimension of the search space (paper §II: "we
//! treat each tunable parameter as a variable in an independent dimension").

use crate::error::{HarmonyError, Result};
use crate::value::ParamValue;
use serde::{Deserialize, Serialize};

/// A tunable parameter declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Param {
    /// Integer parameter taking values `min, min+step, …, ≤ max`.
    Int {
        /// Parameter name (unique within a space).
        name: String,
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
        /// Lattice stride (≥ 1).
        step: i64,
    },
    /// Continuous real parameter in `[min, max]`.
    Real {
        /// Parameter name (unique within a space).
        name: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// Categorical parameter: one of a fixed list of labels.
    Enum {
        /// Parameter name (unique within a space).
        name: String,
        /// The admissible labels, in declaration order.
        choices: Vec<String>,
    },
}

impl Param {
    /// Create an integer parameter.
    pub fn int(name: impl Into<String>, min: i64, max: i64, step: i64) -> Self {
        Param::Int {
            name: name.into(),
            min,
            max,
            step,
        }
    }

    /// Create a real parameter.
    pub fn real(name: impl Into<String>, min: f64, max: f64) -> Self {
        Param::Real {
            name: name.into(),
            min,
            max,
        }
    }

    /// Create a categorical parameter from anything yielding label strings.
    pub fn enumeration<I, S>(name: impl Into<String>, choices: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Param::Enum {
            name: name.into(),
            choices: choices.into_iter().map(Into::into).collect(),
        }
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        match self {
            Param::Int { name, .. } | Param::Real { name, .. } | Param::Enum { name, .. } => name,
        }
    }

    /// Validate the declaration (non-empty domain, positive step, …).
    pub fn validate(&self) -> Result<()> {
        let invalid = |reason: &str| {
            Err(HarmonyError::InvalidParam {
                name: self.name().to_string(),
                reason: reason.to_string(),
            })
        };
        match self {
            Param::Int { min, max, step, .. } => {
                if min > max {
                    return invalid("min > max");
                }
                if *step < 1 {
                    return invalid("step must be >= 1");
                }
                Ok(())
            }
            Param::Real { min, max, .. } => {
                if !(min.is_finite() && max.is_finite()) {
                    return invalid("bounds must be finite");
                }
                if min > max {
                    return invalid("min > max");
                }
                Ok(())
            }
            Param::Enum { choices, .. } => {
                if choices.is_empty() {
                    return invalid("enum needs at least one choice");
                }
                Ok(())
            }
        }
    }

    /// Number of lattice points along this dimension (`None` for continuous
    /// real parameters).
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            Param::Int { min, max, step, .. } => Some(((max - min) / step + 1) as u64),
            Param::Real { .. } => None,
            Param::Enum { choices, .. } => Some(choices.len() as u64),
        }
    }

    /// Lower bound of the continuous embedding of this dimension.
    pub fn embed_min(&self) -> f64 {
        match self {
            Param::Int { min, .. } => *min as f64,
            Param::Real { min, .. } => *min,
            Param::Enum { .. } => 0.0,
        }
    }

    /// Upper bound of the continuous embedding of this dimension.
    pub fn embed_max(&self) -> f64 {
        match self {
            Param::Int { max, .. } => *max as f64,
            Param::Real { max, .. } => *max,
            Param::Enum { choices, .. } => (choices.len() - 1) as f64,
        }
    }

    /// Project an arbitrary real coordinate to the nearest valid value on
    /// this dimension (paper §II: the simplex evaluates "the nearest integer
    /// point in the space").
    pub fn project(&self, coord: f64) -> ParamValue {
        match self {
            Param::Int { min, max, step, .. } => {
                let clamped = coord.clamp(*min as f64, *max as f64);
                let k = ((clamped - *min as f64) / *step as f64).round() as i64;
                let v = (min + k * step).clamp(*min, *max);
                // Snap down onto the lattice if max is not itself on it.
                let v = if (v - min) % step == 0 {
                    v
                } else {
                    min + ((v - min) / step) * step
                };
                ParamValue::Int(v)
            }
            Param::Real { min, max, .. } => ParamValue::Real(coord.clamp(*min, *max)),
            Param::Enum { choices, .. } => {
                let idx = coord.round().clamp(0.0, (choices.len() - 1) as f64) as usize;
                ParamValue::Enum {
                    index: idx,
                    label: choices[idx].clone(),
                }
            }
        }
    }

    /// Embed a valid value back into its real coordinate.
    ///
    /// Returns an error if the value's type does not match the parameter.
    pub fn embed(&self, value: &ParamValue) -> Result<f64> {
        let mismatch = |expected: String| HarmonyError::TypeMismatch {
            name: self.name().to_string(),
            expected,
        };
        match (self, value) {
            (Param::Int { min, max, .. }, ParamValue::Int(v)) => {
                if v < min || v > max {
                    Err(mismatch(format!("int in [{min}, {max}]")))
                } else {
                    Ok(*v as f64)
                }
            }
            (Param::Real { min, max, .. }, ParamValue::Real(v)) => {
                if v < min || v > max {
                    Err(mismatch(format!("real in [{min}, {max}]")))
                } else {
                    Ok(*v)
                }
            }
            (Param::Enum { choices, .. }, ParamValue::Enum { index, .. }) => {
                if *index >= choices.len() {
                    Err(mismatch(format!("enum index < {}", choices.len())))
                } else {
                    Ok(*index as f64)
                }
            }
            _ => Err(mismatch("matching value variant".to_string())),
        }
    }

    /// A value by label (enums) or parse (ints/reals); convenience for tests
    /// and configuration files.
    pub fn value_from_str(&self, s: &str) -> Result<ParamValue> {
        let mismatch = |expected: String| HarmonyError::TypeMismatch {
            name: self.name().to_string(),
            expected,
        };
        match self {
            Param::Int { .. } => s
                .parse::<i64>()
                .map(ParamValue::Int)
                .map_err(|_| mismatch("integer literal".into())),
            Param::Real { .. } => s
                .parse::<f64>()
                .map(ParamValue::Real)
                .map_err(|_| mismatch("real literal".into())),
            Param::Enum { choices, .. } => choices
                .iter()
                .position(|c| c == s)
                .map(|index| ParamValue::Enum {
                    index,
                    label: s.to_string(),
                })
                .ok_or_else(|| mismatch(format!("one of {choices:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_projection_snaps_to_lattice() {
        let p = Param::int("b", 10, 50, 10);
        assert_eq!(p.project(26.0), ParamValue::Int(30));
        assert_eq!(p.project(24.9), ParamValue::Int(20));
        assert_eq!(p.project(-5.0), ParamValue::Int(10));
        assert_eq!(p.project(99.0), ParamValue::Int(50));
    }

    #[test]
    fn int_projection_with_non_dividing_max() {
        // max=47 is not on the lattice {10,20,30,40}; never exceed it.
        let p = Param::int("b", 10, 47, 10);
        assert_eq!(p.project(47.0), ParamValue::Int(40));
        assert_eq!(p.project(1000.0), ParamValue::Int(40));
    }

    #[test]
    fn enum_projection_rounds_to_choice() {
        let p = Param::enumeration("c", ["anis", "del2"]);
        assert_eq!(p.project(0.4).as_enum(), Some("anis"));
        assert_eq!(p.project(0.6).as_enum(), Some("del2"));
        assert_eq!(p.project(9.0).as_enum(), Some("del2"));
        assert_eq!(p.project(-9.0).as_enum(), Some("anis"));
    }

    #[test]
    fn real_projection_clamps() {
        let p = Param::real("tol", 0.0, 1.0);
        assert_eq!(p.project(0.5), ParamValue::Real(0.5));
        assert_eq!(p.project(2.0), ParamValue::Real(1.0));
    }

    #[test]
    fn cardinality_counts_lattice_points() {
        assert_eq!(Param::int("b", 0, 9, 1).cardinality(), Some(10));
        assert_eq!(Param::int("b", 0, 9, 3).cardinality(), Some(4));
        assert_eq!(
            Param::enumeration("c", ["a", "b", "c"]).cardinality(),
            Some(3)
        );
        assert_eq!(Param::real("r", 0.0, 1.0).cardinality(), None);
    }

    #[test]
    fn validation_rejects_bad_domains() {
        assert!(Param::int("b", 5, 1, 1).validate().is_err());
        assert!(Param::int("b", 1, 5, 0).validate().is_err());
        assert!(Param::real("r", 1.0, 0.0).validate().is_err());
        assert!(Param::real("r", f64::NAN, 1.0).validate().is_err());
        assert!(Param::enumeration("c", Vec::<String>::new())
            .validate()
            .is_err());
        assert!(Param::int("b", 1, 5, 2).validate().is_ok());
    }

    #[test]
    fn embed_rejects_out_of_domain_values() {
        let p = Param::int("b", 0, 10, 1);
        assert!(p.embed(&ParamValue::Int(11)).is_err());
        assert!(p.embed(&ParamValue::Real(1.0)).is_err());
        assert_eq!(p.embed(&ParamValue::Int(7)).unwrap(), 7.0);
    }

    #[test]
    fn value_from_str_parses_by_type() {
        let e = Param::enumeration("c", ["nearest", "4point"]);
        assert_eq!(e.value_from_str("4point").unwrap().as_enum_index(), Some(1));
        assert!(e.value_from_str("linear").is_err());
        let i = Param::int("n", 0, 100, 1);
        assert_eq!(i.value_from_str("42").unwrap(), ParamValue::Int(42));
    }

    #[test]
    fn embed_project_roundtrip_on_lattice() {
        let p = Param::int("b", -4, 20, 3);
        for k in 0..p.cardinality().unwrap() {
            let v = ParamValue::Int(-4 + 3 * k as i64);
            let coord = p.embed(&v).unwrap();
            assert_eq!(p.project(coord), v);
        }
    }
}

//! Runtime values for tunable parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The value of one tunable parameter inside a
/// [`Configuration`](crate::space::Configuration).
///
/// The Harmony search algorithm treats every parameter as one dimension of a
/// continuous space; `ParamValue` is the *projected*, valid lattice value the
/// application actually receives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// An integer-valued parameter (e.g. a block size or node count).
    Int(i64),
    /// A real-valued parameter (e.g. a tolerance).
    Real(f64),
    /// A categorical parameter, stored as the index into the declared choice
    /// list together with the choice label for readability.
    Enum {
        /// Index into the parameter's choice list.
        index: usize,
        /// The label of the selected choice.
        label: String,
    },
}

impl ParamValue {
    /// The integer payload, if this is an [`ParamValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The real payload, if this is a [`ParamValue::Real`].
    pub fn as_real(&self) -> Option<f64> {
        match self {
            ParamValue::Real(v) => Some(*v),
            _ => None,
        }
    }

    /// The selected categorical label, if this is an [`ParamValue::Enum`].
    pub fn as_enum(&self) -> Option<&str> {
        match self {
            ParamValue::Enum { label, .. } => Some(label),
            _ => None,
        }
    }

    /// The selected categorical index, if this is an [`ParamValue::Enum`].
    pub fn as_enum_index(&self) -> Option<usize> {
        match self {
            ParamValue::Enum { index, .. } => Some(*index),
            _ => None,
        }
    }

    /// A canonical integer key for caching: the value itself for ints, the
    /// index for enums, and the IEEE-754 bit pattern for reals.
    pub fn cache_key(&self) -> i64 {
        match self {
            ParamValue::Int(v) => *v,
            ParamValue::Enum { index, .. } => *index as i64,
            ParamValue::Real(v) => v.to_bits() as i64,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Real(v) => write!(f, "{v:.6}"),
            ParamValue::Enum { label, .. } => write!(f, "{label}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variant() {
        assert_eq!(ParamValue::Int(5).as_int(), Some(5));
        assert_eq!(ParamValue::Int(5).as_real(), None);
        assert_eq!(ParamValue::Real(1.5).as_real(), Some(1.5));
        let e = ParamValue::Enum {
            index: 2,
            label: "del2".into(),
        };
        assert_eq!(e.as_enum(), Some("del2"));
        assert_eq!(e.as_enum_index(), Some(2));
        assert_eq!(e.as_int(), None);
    }

    #[test]
    fn cache_keys_distinguish_values() {
        assert_ne!(
            ParamValue::Int(3).cache_key(),
            ParamValue::Int(4).cache_key()
        );
        assert_ne!(
            ParamValue::Real(0.1).cache_key(),
            ParamValue::Real(0.2).cache_key()
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ParamValue::Int(42).to_string(), "42");
        assert_eq!(
            ParamValue::Enum {
                index: 0,
                label: "anis".into()
            }
            .to_string(),
            "anis"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let v = ParamValue::Enum {
            index: 1,
            label: "grid".into(),
        };
        let s = serde_json::to_string(&v).unwrap();
        let back: ParamValue = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}

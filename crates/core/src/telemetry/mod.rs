//! Trial-lifecycle observability: counters, latency histograms, and a
//! bounded event ring.
//!
//! The paper's authors debug their tuning runs by reading per-iteration
//! traces; after the sharded server, fault injection, retry and WAL layers,
//! this codebase needed the same visibility — when a trial is requeued,
//! evicted, retried or replayed, *something* must record why. A
//! [`Telemetry`] handle is that something. It threads through the server
//! ([`ServerConfig`](crate::server::ServerConfig)), the TCP client
//! ([`TcpClientOptions`](crate::server::tcp::TcpClientOptions)), the session,
//! the retry policy and the write-ahead log, and records three kinds of
//! signal:
//!
//! * **Events** — one [`TrialEvent`] per lifecycle transition
//!   (proposed → fetched → measured → reported, plus requeued / evicted /
//!   replayed / faulted with a cause), kept in a bounded ring so a runaway
//!   session cannot exhaust memory.
//! * **Counters** — monotonic totals ([`Counter`]) for the same
//!   transitions plus sanitized costs, stale duplicate reports, retry
//!   backoffs, WAL appends and torn tails.
//! * **Latency histograms** — log2-bucketed microsecond histograms
//!   ([`Latency`]) for shard-queue wait, batch round-trips, backoff sleeps
//!   and WAL append+fsync.
//! * **Spans** — paired begin/end intervals ([`SpanEvent`]) around the
//!   phases of a trial (fetch round-trip, measurement, report round-trip)
//!   and the durable-state operations (WAL append, store lookup), each on
//!   a named track (`client`, `worker`, `shard`, `wal`, `store`).
//!   [`Telemetry::chrome_trace`] exports them as Chrome trace-event JSON
//!   loadable in Perfetto, reconstructing the distributed timeline the
//!   paper's per-iteration cost breakdown implies.
//!
//! # Overhead
//!
//! The handle is an `Option<Arc<Inner>>`. [`Telemetry::disabled`] (the
//! `Default`) is `None`: every record call is one branch on a niche-encoded
//! option and returns — no allocation, no atomics, no locking. Enabled
//! recording is a relaxed atomic add for counters/histograms and a short
//! mutex-protected ring push for events. The `bench-server --check` CI gate
//! runs with telemetry enabled to keep the overhead inside the regression
//! tolerance.
//!
//! # Determinism
//!
//! Everything except timestamps is a pure function of the message sequence:
//! two runs with the same seed and fault plan produce the identical
//! [`Telemetry::lifecycle`] sequence and counter totals (property-tested in
//! `tests/telemetry_determinism.rs`). Timestamps exist for humans reading a
//! trace, and are excluded from `lifecycle()`.

pub mod slo;
pub mod timeseries;

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default capacity of the bounded event ring (events beyond it evict the
/// oldest and bump [`Telemetry::dropped_events`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Most distinct tenant labels the per-tenant counter table will hold.
/// Labels past the cap are folded into [`TENANT_OVERFLOW_LABEL`], so a
/// tenant-id flood (a client minting a fresh label per request) cannot
/// grow the exposition or the sampler's memory without bound.
pub const MAX_TENANT_LABELS: usize = 64;

/// The aggregate label tenants are folded into once [`MAX_TENANT_LABELS`]
/// distinct labels exist.
pub const TENANT_OVERFLOW_LABEL: &str = "__overflow__";

/// Lifecycle stage of a trial (or member) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TrialStage {
    /// The session emitted a fresh trial to be measured.
    Proposed,
    /// The server handed the trial to a client (fresh, re-fetch, or a
    /// requeued trial claimed by a new owner — the cause tells which).
    Fetched,
    /// A measured cost arrived for the trial.
    Measured,
    /// The trial's cost was flushed into the history (in proposal order).
    Reported,
    /// The trial lost its owner and became claimable again (cause:
    /// `owner_left`, `owner_evicted`, or `trial_deadline`).
    Requeued,
    /// A session member was evicted for missing its liveness TTL.
    Evicted,
    /// The trial's cost was replayed rather than measured (cause:
    /// `cache_hit` for an in-session duplicate, `wal` for log replay).
    Replayed,
    /// A fault-injection plan decided this trial's fate (cause: `crash`,
    /// `lost_report`, or `straggler`).
    Faulted,
}

impl TrialStage {
    /// Stable lowercase name (used in JSON dumps and metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            TrialStage::Proposed => "proposed",
            TrialStage::Fetched => "fetched",
            TrialStage::Measured => "measured",
            TrialStage::Reported => "reported",
            TrialStage::Requeued => "requeued",
            TrialStage::Evicted => "evicted",
            TrialStage::Replayed => "replayed",
            TrialStage::Faulted => "faulted",
        }
    }
}

/// Monotonic counters. Each renders as one Prometheus counter
/// `ah_<name>_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Fresh trials proposed by sessions.
    TrialsProposed,
    /// Trials handed to clients by the server (re-fetches included).
    TrialsFetched,
    /// Measured costs that reached a session.
    TrialsMeasured,
    /// Trials flushed into a history (fresh rows only).
    TrialsReported,
    /// Trials whose owner departed/expired, made claimable again.
    TrialsRequeued,
    /// Session members evicted for missing their liveness TTL.
    MembersEvicted,
    /// Reports for already-applied trials, dropped by the issued-high
    /// watermark.
    StaleReportsDropped,
    /// Duplicate proposals resolved from the in-session cache.
    CacheReplays,
    /// Non-finite costs coerced to `+inf` at the protocol boundary or in
    /// the session flush.
    NonFiniteCostsSanitized,
    /// Backoff sleeps taken by retry loops.
    RetryBackoffs,
    /// Injected worker crashes.
    FaultsCrash,
    /// Injected lost reports.
    FaultsLostReport,
    /// Injected stragglers.
    FaultsStraggler,
    /// Records appended (and fsynced) to a write-ahead log.
    WalAppends,
    /// Evaluations replayed from a write-ahead log on resume.
    WalReplayed,
    /// Torn trailing records truncated away on WAL resume.
    WalTornTails,
    /// Performance-store lookups that found a stored cost.
    StoreHits,
    /// Performance-store lookups that found nothing.
    StoreMisses,
    /// Records appended to a performance store.
    StoreInserts,
    /// Performance-store compactions (gc included).
    StoreCompactions,
    /// Torn trailing records truncated away on store open.
    StoreTornTails,
    /// TCP connections admitted by the front-end (both transports).
    ConnectionsAccepted,
    /// TCP connections refused at the connection ceiling.
    ConnectionsRefused,
    /// Connections reaped by the event loop's idle timeout.
    ConnectionsEvictedIdle,
    /// Connections the peer closed (EOF or I/O error), goodbyes included.
    ConnectionsClosedByPeer,
    /// Requests refused because a tenant hit its session or in-flight
    /// trial quota.
    QuotaRefusals,
    /// Peer records appended into the local store by a federation merge.
    StoreMergedRecords,
    /// Merge collisions on `(app, fingerprint, key)` where the peer's cost
    /// differed; the local first write won.
    StoreMergeConflicts,
    /// Lattice points excluded by space compilation: constraint
    /// propagation plus enumeration-time subtree pruning.
    SpacePointsPruned,
    /// Chunks served by compiled-space enumeration
    /// ([`CompiledSpace::next_chunk`](crate::space_compile::CompiledSpace::next_chunk)).
    SpaceChunksEnumerated,
    /// Inner tuning campaigns launched by the meta-tuning harness (fresh
    /// runs only — store-memoized campaigns don't count).
    MetaInnerCampaigns,
    /// Surrogate-strategy proposals that fell back to the inner strategy
    /// (model unfit or its argmin already evaluated).
    SurrogateFallbacks,
}

/// Number of [`Counter`] variants (size of the per-handle counter array).
const COUNTER_COUNT: usize = 32;

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::TrialsProposed,
        Counter::TrialsFetched,
        Counter::TrialsMeasured,
        Counter::TrialsReported,
        Counter::TrialsRequeued,
        Counter::MembersEvicted,
        Counter::StaleReportsDropped,
        Counter::CacheReplays,
        Counter::NonFiniteCostsSanitized,
        Counter::RetryBackoffs,
        Counter::FaultsCrash,
        Counter::FaultsLostReport,
        Counter::FaultsStraggler,
        Counter::WalAppends,
        Counter::WalReplayed,
        Counter::WalTornTails,
        Counter::StoreHits,
        Counter::StoreMisses,
        Counter::StoreInserts,
        Counter::StoreCompactions,
        Counter::StoreTornTails,
        Counter::ConnectionsAccepted,
        Counter::ConnectionsRefused,
        Counter::ConnectionsEvictedIdle,
        Counter::ConnectionsClosedByPeer,
        Counter::QuotaRefusals,
        Counter::StoreMergedRecords,
        Counter::StoreMergeConflicts,
        Counter::SpacePointsPruned,
        Counter::SpaceChunksEnumerated,
        Counter::MetaInnerCampaigns,
        Counter::SurrogateFallbacks,
    ];

    /// Stable snake_case name (the Prometheus metric is
    /// `ah_<name>_total`).
    pub fn name(&self) -> &'static str {
        match self {
            Counter::TrialsProposed => "trials_proposed",
            Counter::TrialsFetched => "trials_fetched",
            Counter::TrialsMeasured => "trials_measured",
            Counter::TrialsReported => "trials_reported",
            Counter::TrialsRequeued => "trials_requeued",
            Counter::MembersEvicted => "members_evicted",
            Counter::StaleReportsDropped => "stale_reports_dropped",
            Counter::CacheReplays => "cache_replays",
            Counter::NonFiniteCostsSanitized => "non_finite_costs_sanitized",
            Counter::RetryBackoffs => "retry_backoffs",
            Counter::FaultsCrash => "faults_crash",
            Counter::FaultsLostReport => "faults_lost_report",
            Counter::FaultsStraggler => "faults_straggler",
            Counter::WalAppends => "wal_appends",
            Counter::WalReplayed => "wal_replayed",
            Counter::WalTornTails => "wal_torn_tails",
            Counter::StoreHits => "store_hits",
            Counter::StoreMisses => "store_misses",
            Counter::StoreInserts => "store_inserts",
            Counter::StoreCompactions => "store_compactions",
            Counter::StoreTornTails => "store_torn_tails",
            Counter::ConnectionsAccepted => "connections_accepted",
            Counter::ConnectionsRefused => "connections_refused",
            Counter::ConnectionsEvictedIdle => "connections_evicted_idle",
            Counter::ConnectionsClosedByPeer => "connections_closed_by_peer",
            Counter::QuotaRefusals => "quota_refusals",
            Counter::StoreMergedRecords => "store_merged_records",
            Counter::StoreMergeConflicts => "store_merge_conflicts",
            Counter::SpacePointsPruned => "space_points_pruned",
            Counter::SpaceChunksEnumerated => "space_chunks_enumerated",
            Counter::MetaInnerCampaigns => "meta_inner_campaigns",
            Counter::SurrogateFallbacks => "surrogate_fallbacks",
        }
    }

    fn idx(&self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| c == self)
            .expect("every counter is in ALL")
    }
}

/// Latency histograms. Each renders as one Prometheus histogram
/// `ah_<name>_seconds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Latency {
    /// Time an envelope spent queued before its shard worker picked it up.
    ShardQueueWait,
    /// TCP client `FetchBatch` round-trip.
    FetchBatchRtt,
    /// TCP client `ReportBatch` round-trip.
    ReportBatchRtt,
    /// Sleep taken before a retry attempt.
    RetryBackoffSleep,
    /// WAL record append + flush + fsync.
    WalAppendFsync,
    /// Performance-store index lookup.
    StoreLookup,
    /// Performance-store record append + fsync (observed on syncing
    /// appends only — the store batches its fsyncs).
    StoreAppendFsync,
    /// One readiness-loop iteration's work: everything between a `poll`
    /// return and the next `poll` entry (I/O, framing, dispatch — the wait
    /// itself is excluded). The tail of this histogram is the latency every
    /// multiplexed connection shares.
    EventLoopIteration,
    /// Search-space compilation (constraint propagation + stats).
    SpaceCompile,
    /// Surrogate model fit (normal-equation solve over the sample set).
    SurrogateFit,
    /// Surrogate model argmin scan over compiled-space candidates.
    SurrogatePredict,
}

/// Number of [`Latency`] variants (size of the per-handle histogram array).
const LATENCY_COUNT: usize = 11;

/// Log2 bucket count per histogram: upper bounds 1µs, 2µs, … 2^24µs
/// (~16.8s), plus a +Inf overflow bucket.
pub const HISTO_BUCKETS: usize = 26;

/// The hot counters that are additionally sliced per tenant. Each renders
/// as one labeled Prometheus family `ah_<name>_total{tenant="..."}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantMetric {
    /// Trials evaluated (reports applied to a session history) on behalf
    /// of the tenant.
    Evaluations,
    /// Report messages (single or batch elements) received from the
    /// tenant's clients, stale duplicates included.
    Reports,
    /// Microseconds the tenant's envelopes spent queued before a shard
    /// worker picked them up (a sum — divide by `reports` for a mean).
    QueueWaitUs,
    /// Requests refused because the tenant hit its session or in-flight
    /// quota.
    QuotaRefusals,
}

/// Number of [`TenantMetric`] variants (columns of the per-tenant table).
pub const TENANT_METRIC_COUNT: usize = 4;

impl TenantMetric {
    /// Every per-tenant metric, in rendering order.
    pub const ALL: [TenantMetric; TENANT_METRIC_COUNT] = [
        TenantMetric::Evaluations,
        TenantMetric::Reports,
        TenantMetric::QueueWaitUs,
        TenantMetric::QuotaRefusals,
    ];

    /// Stable snake_case name (the Prometheus family is
    /// `ah_tenant_<name>_total`).
    pub fn name(&self) -> &'static str {
        match self {
            TenantMetric::Evaluations => "evaluations",
            TenantMetric::Reports => "reports",
            TenantMetric::QueueWaitUs => "queue_wait_us",
            TenantMetric::QuotaRefusals => "quota_refusals",
        }
    }

    fn idx(&self) -> usize {
        TenantMetric::ALL
            .iter()
            .position(|m| m == self)
            .expect("every tenant metric is in ALL")
    }
}

impl Latency {
    /// Every histogram, in rendering order.
    pub const ALL: [Latency; LATENCY_COUNT] = [
        Latency::ShardQueueWait,
        Latency::FetchBatchRtt,
        Latency::ReportBatchRtt,
        Latency::RetryBackoffSleep,
        Latency::WalAppendFsync,
        Latency::StoreLookup,
        Latency::StoreAppendFsync,
        Latency::EventLoopIteration,
        Latency::SpaceCompile,
        Latency::SurrogateFit,
        Latency::SurrogatePredict,
    ];

    /// Stable snake_case name (the Prometheus metric is
    /// `ah_<name>_seconds`).
    pub fn name(&self) -> &'static str {
        match self {
            Latency::ShardQueueWait => "shard_queue_wait",
            Latency::FetchBatchRtt => "fetch_batch_rtt",
            Latency::ReportBatchRtt => "report_batch_rtt",
            Latency::RetryBackoffSleep => "retry_backoff_sleep",
            Latency::WalAppendFsync => "wal_append_fsync",
            Latency::StoreLookup => "store_lookup",
            Latency::StoreAppendFsync => "store_append_fsync",
            Latency::EventLoopIteration => "event_loop_iteration",
            Latency::SpaceCompile => "space_compile",
            Latency::SurrogateFit => "surrogate_fit",
            Latency::SurrogatePredict => "surrogate_predict",
        }
    }

    fn idx(&self) -> usize {
        Latency::ALL
            .iter()
            .position(|l| l == self)
            .expect("every latency is in ALL")
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Serialize)]
pub struct TrialEvent {
    /// Monotonic sequence number (gaps mean ring evictions elsewhere, not
    /// lost ordering).
    pub seq: u64,
    /// Microseconds since the handle was created. Wall-clock flavoured;
    /// excluded from determinism comparisons.
    pub at_us: u64,
    /// The lifecycle transition.
    pub stage: TrialStage,
    /// Iteration token of the trial (0 for member-level events such as
    /// eviction).
    pub iteration: usize,
    /// Client id involved, when known (0 otherwise).
    pub client: u64,
    /// Why the transition happened, for stages with multiple causes.
    pub cause: Option<&'static str>,
}

impl TrialEvent {
    /// The deterministic projection of the event: everything except the
    /// timestamp and client id (which depend on wall clock and allocation
    /// order). Two runs with the same seed and fault plan produce identical
    /// lifecycle sequences.
    pub fn lifecycle(&self) -> (TrialStage, usize, Option<&'static str>) {
        (self.stage, self.iteration, self.cause)
    }
}

/// What a span measures. Each renders as one named slice on its track in
/// the Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SpanKind {
    /// Client-side fetch/`FetchBatch` round-trip.
    Fetch,
    /// One trial's measurement (objective run) on a worker.
    Measure,
    /// Client-side report/`ReportBatch` round-trip.
    Report,
    /// A shard worker handling one envelope.
    ShardHandle,
    /// WAL record append + flush + fsync.
    WalAppend,
    /// Performance-store index lookup.
    StoreLookup,
}

impl SpanKind {
    /// Stable lowercase name (used as the event name in trace exports).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Fetch => "fetch",
            SpanKind::Measure => "measure",
            SpanKind::Report => "report",
            SpanKind::ShardHandle => "shard_handle",
            SpanKind::WalAppend => "wal_append",
            SpanKind::StoreLookup => "store_lookup",
        }
    }
}

/// One completed (or fault-terminated) span. Begin/end pairing is enforced
/// by construction: a [`SpanEvent`] only exists once its
/// [`SpanToken`] was closed by [`Telemetry::span_end`] or
/// [`Telemetry::span_fault`]; unclosed spans stay in the open table and are
/// countable via [`Telemetry::open_spans`].
#[derive(Debug, Clone, Serialize)]
pub struct SpanEvent {
    /// Unique span id (monotonic, 1-based; 0 is the disabled token).
    pub id: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Iteration token of the trial involved (0 for batch- or
    /// member-level spans).
    pub iteration: usize,
    /// Track family the span belongs to (`client`, `worker`, `shard`,
    /// `wal`, `store`). One Chrome-trace thread per `(track, track_id)`.
    pub track: &'static str,
    /// Which member of the track family (client id, worker index, shard
    /// index; 0 for singleton tracks).
    pub track_id: u64,
    /// Microseconds since the handle was created.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Set when the span was terminated by [`Telemetry::span_fault`]
    /// (cause: `crash`, `lost_report`, `straggler`, ...) instead of a
    /// normal end.
    pub cause: Option<&'static str>,
}

/// Handle returned by [`Telemetry::span_begin`], closed by
/// [`Telemetry::span_end`] or [`Telemetry::span_fault`]. The zero token is
/// the disabled no-op (returned by a disabled handle); closing it does
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a span token should be closed with span_end or span_fault"]
pub struct SpanToken(u64);

impl SpanToken {
    /// The no-op token of a disabled handle.
    pub fn disabled() -> Self {
        SpanToken(0)
    }
}

/// A begun-but-not-ended span, keyed by its token id.
struct OpenSpan {
    kind: SpanKind,
    iteration: usize,
    track: &'static str,
    track_id: u64,
    start_us: u64,
}

/// One log2-bucketed latency histogram (microsecond resolution).
struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histo {
    fn new() -> Self {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = if us <= 1 {
            0
        } else {
            ((64 - (us - 1).leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistoSnapshot {
        HistoSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one latency histogram's raw state. Retaining
/// the raw buckets (rather than precomputed quantiles) is what lets the
/// time-series ring answer *windowed* percentiles: subtract two snapshots
/// and take the percentile of the difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Observation count per log2 bucket (upper bound `2^i` µs; the last
    /// bucket is +Inf overflow).
    pub buckets: [u64; HISTO_BUCKETS],
    /// Sum of all observed durations, in microseconds.
    pub sum_us: u64,
    /// Total observation count.
    pub count: u64,
}

impl HistoSnapshot {
    /// The all-zero snapshot (what a disabled handle reports).
    pub fn zero() -> Self {
        HistoSnapshot {
            buckets: [0; HISTO_BUCKETS],
            sum_us: 0,
            count: 0,
        }
    }

    /// The observations recorded between `earlier` and `self` (saturating,
    /// so a restarted handle degrades to `self` rather than panicking).
    pub fn delta(&self, earlier: &HistoSnapshot) -> HistoSnapshot {
        HistoSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            count: self.count.saturating_sub(earlier.count),
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds, read as the upper
    /// bound of the bucket holding the target rank. Returns `None` when the
    /// snapshot is empty and `+Inf` when the rank falls in the overflow
    /// bucket — both make SLO comparisons behave sensibly (no data is not
    /// a breach; an overflow tail always is).
    pub fn percentile_us(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Some(if i == HISTO_BUCKETS - 1 {
                    f64::INFINITY
                } else {
                    (1u64 << i) as f64
                });
            }
        }
        Some(f64::INFINITY)
    }

    /// Mean observation, in microseconds (`None` when empty).
    pub fn mean_us(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_us as f64 / self.count as f64)
    }

    /// Compact JSON summary (`p50`/`p99`/`mean` in microseconds + `count`)
    /// for history endpoints — raw buckets stay internal to the ring.
    pub fn summary_json(&self) -> serde_json::Value {
        serde_json::json!({
            "count": self.count,
            "p50_us": self.percentile_us(0.50),
            "p99_us": self.percentile_us(0.99),
            "mean_us": self.mean_us(),
        })
    }
}

struct Inner {
    start: Instant,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    counters: [AtomicU64; COUNTER_COUNT],
    latencies: [Histo; LATENCY_COUNT],
    ring: Mutex<VecDeque<TrialEvent>>,
    // Span ids start at 1 so token 0 can stay the disabled no-op.
    span_seq: AtomicU64,
    span_dropped: AtomicU64,
    open_spans: Mutex<HashMap<u64, OpenSpan>>,
    spans: Mutex<VecDeque<SpanEvent>>,
    // Per-tenant hot-counter table, insertion-ordered so expositions and
    // snapshots are stable. Bounded at MAX_TENANT_LABELS distinct labels;
    // later tenants fold into the TENANT_OVERFLOW_LABEL row.
    tenants: Mutex<Vec<(String, [u64; TENANT_METRIC_COUNT])>>,
}

/// A cheap, cloneable recording handle. See the [module docs](self) for
/// what it records and what it costs.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("events", &inner.ring.lock().len())
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish_non_exhaustive(),
        }
    }
}

impl Telemetry {
    /// The no-op handle: every record call is a single branch. This is the
    /// `Default`, so telemetry is pay-for-what-you-enable.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// An enabled handle with the [`DEFAULT_EVENT_CAPACITY`] event ring.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle whose event ring holds at most `capacity` events
    /// (older events are evicted, counted by
    /// [`dropped_events`](Self::dropped_events)).
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry(Some(Arc::new(Inner {
            start: Instant::now(),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            latencies: std::array::from_fn(|_| Histo::new()),
            ring: Mutex::new(VecDeque::new()),
            span_seq: AtomicU64::new(1),
            span_dropped: AtomicU64::new(0),
            open_spans: Mutex::new(HashMap::new()),
            spans: Mutex::new(VecDeque::new()),
            tenants: Mutex::new(Vec::new()),
        })))
    }

    /// True when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record a lifecycle event (no-op when disabled).
    pub fn event(
        &self,
        stage: TrialStage,
        iteration: usize,
        client: u64,
        cause: Option<&'static str>,
    ) {
        let Some(inner) = &self.0 else { return };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ev = TrialEvent {
            seq,
            at_us,
            stage,
            iteration,
            client,
            cause,
        };
        let mut ring = inner.ring.lock();
        if ring.len() >= inner.capacity {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Increment a counter by one (no-op when disabled).
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increment a counter by `n` (no-op when disabled).
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.0 {
            inner.counters[counter.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one latency observation (no-op when disabled).
    pub fn observe(&self, latency: Latency, d: Duration) {
        if let Some(inner) = &self.0 {
            inner.latencies[latency.idx()].observe(d);
        }
    }

    /// Add `n` to one tenant-sliced counter (no-op when disabled). Distinct
    /// labels are bounded by [`MAX_TENANT_LABELS`]; once the table is full,
    /// new labels aggregate into [`TENANT_OVERFLOW_LABEL`] so unbounded
    /// tenant-id churn cannot grow the exposition.
    pub fn tenant_add(&self, tenant: &str, metric: TenantMetric, n: u64) {
        let Some(inner) = &self.0 else { return };
        let mut table = inner.tenants.lock();
        let label = if table.iter().any(|(t, _)| t == tenant) || table.len() < MAX_TENANT_LABELS {
            tenant
        } else {
            TENANT_OVERFLOW_LABEL
        };
        match table.iter_mut().find(|(t, _)| t == label) {
            Some((_, row)) => row[metric.idx()] += n,
            None => {
                let mut row = [0u64; TENANT_METRIC_COUNT];
                row[metric.idx()] = n;
                table.push((label.to_string(), row));
            }
        }
    }

    /// Current value of one tenant-sliced counter (0 when disabled or the
    /// tenant was never recorded).
    pub fn tenant_counter(&self, tenant: &str, metric: TenantMetric) -> u64 {
        match &self.0 {
            Some(inner) => inner
                .tenants
                .lock()
                .iter()
                .find(|(t, _)| t == tenant)
                .map(|(_, row)| row[metric.idx()])
                .unwrap_or(0),
            None => 0,
        }
    }

    /// Snapshot of the per-tenant table, in first-seen order: one
    /// `(tenant, [value per TenantMetric::ALL])` row per label.
    pub fn tenant_counters(&self) -> Vec<(String, [u64; TENANT_METRIC_COUNT])> {
        match &self.0 {
            Some(inner) => inner.tenants.lock().clone(),
            None => Vec::new(),
        }
    }

    /// The per-tenant table as JSON: `{tenant: {metric: value, ...}, ...}`
    /// in first-seen order (shared by `/status` and `repro fleet`).
    pub fn tenant_counters_json(&self) -> serde_json::Value {
        serde_json::Value::Object(
            self.tenant_counters()
                .into_iter()
                .map(|(tenant, row)| {
                    let fields = TenantMetric::ALL
                        .iter()
                        .map(|m| (m.name().to_string(), serde_json::Value::UInt(row[m.idx()])))
                        .collect();
                    (tenant, serde_json::Value::Object(fields))
                })
                .collect(),
        )
    }

    /// Point-in-time copy of one latency histogram's raw buckets (the
    /// all-zero snapshot when disabled). The time-series sampler diffs
    /// successive snapshots to answer windowed percentiles.
    pub fn histogram(&self, latency: Latency) -> HistoSnapshot {
        match &self.0 {
            Some(inner) => inner.latencies[latency.idx()].snapshot(),
            None => HistoSnapshot::zero(),
        }
    }

    /// Current value of one counter (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.0 {
            Some(inner) => inner.counters[counter.idx()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Snapshot of every counter as `(name, value)` pairs, in stable order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|c| (c.name(), self.counter(*c)))
            .collect()
    }

    /// Snapshot of the event ring, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<TrialEvent> {
        match &self.0 {
            Some(inner) => inner.ring.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Deterministic projection of the event ring: the
    /// [`TrialEvent::lifecycle`] of every event, in order.
    pub fn lifecycle(&self) -> Vec<(TrialStage, usize, Option<&'static str>)> {
        self.events().iter().map(TrialEvent::lifecycle).collect()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped_events(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Begin a span (no-op token when disabled). Close the returned token
    /// with [`span_end`](Self::span_end) or
    /// [`span_fault`](Self::span_fault) on any clone of this handle.
    pub fn span_begin(
        &self,
        kind: SpanKind,
        iteration: usize,
        track: &'static str,
        track_id: u64,
    ) -> SpanToken {
        let Some(inner) = &self.0 else {
            return SpanToken(0);
        };
        let id = inner.span_seq.fetch_add(1, Ordering::Relaxed);
        let start_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        inner.open_spans.lock().insert(
            id,
            OpenSpan {
                kind,
                iteration,
                track,
                track_id,
                start_us,
            },
        );
        SpanToken(id)
    }

    /// End a span normally (no-op for the disabled/unknown token).
    pub fn span_end(&self, token: SpanToken) {
        self.close_span(token, None);
    }

    /// End a span because a fault decided its fate; `cause` lands in the
    /// span record and the trace export.
    pub fn span_fault(&self, token: SpanToken, cause: &'static str) {
        self.close_span(token, Some(cause));
    }

    fn close_span(&self, token: SpanToken, cause: Option<&'static str>) {
        let Some(inner) = &self.0 else { return };
        if token.0 == 0 {
            return;
        }
        let Some(open) = inner.open_spans.lock().remove(&token.0) else {
            return;
        };
        let now_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ev = SpanEvent {
            id: token.0,
            kind: open.kind,
            iteration: open.iteration,
            track: open.track,
            track_id: open.track_id,
            start_us: open.start_us,
            dur_us: now_us.saturating_sub(open.start_us),
            cause,
        };
        let mut spans = inner.spans.lock();
        if spans.len() >= inner.capacity {
            spans.pop_front();
            inner.span_dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(ev);
    }

    /// Snapshot of the completed-span ring, in completion order (empty when
    /// disabled).
    pub fn spans(&self) -> Vec<SpanEvent> {
        match &self.0 {
            Some(inner) => inner.spans.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Number of begun-but-not-closed spans. Zero after a well-paired run:
    /// every begin had an end or a fault cause.
    pub fn open_spans(&self) -> usize {
        match &self.0 {
            Some(inner) => inner.open_spans.lock().len(),
            None => 0,
        }
    }

    /// Completed spans evicted from the bounded ring.
    pub fn dropped_spans(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.span_dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Every counter as one JSON object `{name: value, ...}` in stable
    /// order — the single serialization all CLI surfaces (`metrics`,
    /// `trace`, `/status`, the fault experiment) share. Built by hand
    /// because the vendored serde has no map `Serialize` impl for
    /// `&'static str` keys.
    pub fn counters_json(&self) -> serde_json::Value {
        serde_json::Value::Object(
            self.counters()
                .into_iter()
                .map(|(name, value)| (name.to_string(), serde_json::Value::UInt(value)))
                .collect(),
        )
    }

    /// Export the completed spans as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form, loadable in Perfetto or
    /// `chrome://tracing`). See [`chrome_trace`] for the format.
    pub fn chrome_trace(&self) -> serde_json::Value {
        chrome_trace(&self.spans())
    }

    /// Render every counter and histogram in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP`/`# TYPE` comments, counters as
    /// `ah_<name>_total`, histograms as `ah_<name>_seconds` with cumulative
    /// `_bucket{le=...}` lines plus `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL.iter() {
            let name = c.name();
            out.push_str(&format!(
                "# HELP ah_{name}_total Total {} events.\n# TYPE ah_{name}_total counter\n\
                 ah_{name}_total {}\n",
                name.replace('_', " "),
                self.counter(*c)
            ));
        }
        // Labeled per-tenant families. Emitted only when at least one
        // tenant was recorded: a `# TYPE` with zero samples is an orphan
        // header, which the conformance validator rejects.
        let tenants = self.tenant_counters();
        if !tenants.is_empty() {
            for m in TenantMetric::ALL.iter() {
                let name = m.name();
                out.push_str(&format!(
                    "# HELP ah_tenant_{name}_total Per-tenant {} (label cardinality \
                     bounded at {MAX_TENANT_LABELS}).\n\
                     # TYPE ah_tenant_{name}_total counter\n",
                    name.replace('_', " ")
                ));
                for (tenant, row) in &tenants {
                    out.push_str(&format!(
                        "ah_tenant_{name}_total{{tenant=\"{}\"}} {}\n",
                        tenant.replace('\\', "\\\\").replace('"', "\\\""),
                        row[m.idx()]
                    ));
                }
            }
        }
        out.push_str(&format!(
            "# HELP ah_events_dropped_total Events evicted from the bounded ring.\n\
             # TYPE ah_events_dropped_total counter\n\
             ah_events_dropped_total {}\n",
            self.dropped_events()
        ));
        out.push_str(&format!(
            "# HELP ah_spans_dropped_total Completed spans evicted from the bounded ring.\n\
             # TYPE ah_spans_dropped_total counter\n\
             ah_spans_dropped_total {}\n",
            self.dropped_spans()
        ));
        out.push_str(&format!(
            "# HELP ah_spans_open Spans begun but not yet ended.\n\
             # TYPE ah_spans_open gauge\n\
             ah_spans_open {}\n",
            self.open_spans()
        ));
        for l in Latency::ALL.iter() {
            let name = l.name();
            out.push_str(&format!(
                "# HELP ah_{name}_seconds Latency of {}.\n# TYPE ah_{name}_seconds histogram\n",
                name.replace('_', " ")
            ));
            let (buckets, sum_us, count) = match &self.0 {
                Some(inner) => {
                    let h = &inner.latencies[l.idx()];
                    (
                        h.buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect::<Vec<u64>>(),
                        h.sum_us.load(Ordering::Relaxed),
                        h.count.load(Ordering::Relaxed),
                    )
                }
                None => (vec![0; HISTO_BUCKETS], 0, 0),
            };
            let mut cumulative = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                cumulative += n;
                let le = if i == HISTO_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    // Upper bound 2^i µs, rendered in seconds.
                    format!("{}", (1u64 << i) as f64 / 1e6)
                };
                out.push_str(&format!(
                    "ah_{name}_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "ah_{name}_seconds_sum {}\nah_{name}_seconds_count {count}\n",
                sum_us as f64 / 1e6
            ));
        }
        out
    }
}

/// Build a Chrome trace-event JSON document from a set of spans.
///
/// Output is the object form `{"traceEvents": [...], "displayTimeUnit":
/// "ms"}` accepted by Perfetto and `chrome://tracing`. Every span becomes a
/// complete event (`"ph": "X"`, `ts`/`dur` in microseconds) on a thread
/// derived from its `(track, track_id)` pair; thread-name metadata events
/// (`"ph": "M"`) label each track. Events are sorted by start time, so
/// timestamps are monotone globally and therefore per track. Fault-closed
/// spans carry their cause in `args`.
pub fn chrome_trace(spans: &[SpanEvent]) -> serde_json::Value {
    use serde_json::Value;
    let mut sorted: Vec<&SpanEvent> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_us, s.id));
    // Stable small thread ids per (track, track_id), in order of first
    // appearance on the sorted timeline.
    let mut tids: Vec<(&'static str, u64)> = Vec::new();
    for s in &sorted {
        if !tids.contains(&(s.track, s.track_id)) {
            tids.push((s.track, s.track_id));
        }
    }
    let tid_of = |s: &SpanEvent| -> u64 {
        tids.iter()
            .position(|t| *t == (s.track, s.track_id))
            .expect("every span's track is registered") as u64
            + 1
    };
    let mut events = Vec::with_capacity(sorted.len() + tids.len() + 1);
    events.push(serde_json::json!({
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "active-harmony"},
    }));
    for (i, (track, track_id)) in tids.iter().enumerate() {
        events.push(serde_json::json!({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": i as u64 + 1,
            "args": {"name": format!("{track}/{track_id}")},
        }));
    }
    for s in sorted {
        let mut args = vec![
            ("iteration".to_string(), Value::UInt(s.iteration as u64)),
            ("span_id".to_string(), Value::UInt(s.id)),
        ];
        if let Some(cause) = s.cause {
            args.push(("cause".to_string(), Value::String(cause.to_string())));
        }
        events.push(serde_json::json!({
            "name": s.kind.name(),
            "cat": s.track,
            "ph": "X",
            "ts": s.start_us,
            "dur": s.dur_us,
            "pid": 0,
            "tid": tid_of(s),
            "args": Value::Object(args),
        }));
    }
    serde_json::json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms",
    })
}

/// Structurally validate a Prometheus text exposition (version 0.0.4).
///
/// Enforced invariants — the conformance contract every scrape surface in
/// this codebase (and the tests) share:
///
/// * every `# HELP` and `# TYPE` names each family **exactly once**, and
///   every family has both;
/// * every declared family emits at least one sample (no orphan headers);
/// * every sample belongs to a declared family (no orphan samples) —
///   histogram `_bucket`/`_sum`/`_count` suffixes resolve to their family;
/// * every sample value parses as `f64`.
///
/// Returns the declared `(family, kind)` list in declaration order.
pub fn validate_exposition(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut helped: Vec<String> = Vec::new();
    let mut declared: Vec<(String, String)> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default().to_string();
            if helped.contains(&name) {
                return Err(format!("duplicate HELP for {name}"));
            }
            helped.push(name);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("TYPE line lacks a kind: {line}"))?;
            if declared.iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate TYPE for {name}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown kind {kind} for {name}"));
            }
            declared.push((name.to_string(), kind.to_string()));
        } else if let Some(comment) = line.strip_prefix('#') {
            return Err(format!("comment is neither HELP nor TYPE: #{comment}"));
        } else {
            let (key, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("sample line lacks a value: {line}"))?;
            value
                .parse::<f64>()
                .map_err(|_| format!("unparseable value in: {line}"))?;
            let base = key.split('{').next().unwrap_or_default();
            let family = base
                .strip_suffix("_bucket")
                .or_else(|| base.strip_suffix("_sum"))
                .or_else(|| base.strip_suffix("_count"))
                .filter(|f| declared.iter().any(|(n, k)| n == f && k == "histogram"))
                .unwrap_or(base);
            if !declared.iter().any(|(n, _)| n == family) {
                return Err(format!("orphan sample (no TYPE header): {line}"));
            }
            if !sampled.contains(&family.to_string()) {
                sampled.push(family.to_string());
            }
        }
    }
    for (name, _) in &declared {
        if !helped.contains(name) {
            return Err(format!("TYPE without HELP for {name}"));
        }
        if !sampled.contains(name) {
            return Err(format!("orphan header (TYPE with no samples): {name}"));
        }
    }
    for name in &helped {
        if !declared.iter().any(|(n, _)| n == name) {
            return Err(format!("HELP without TYPE for {name}"));
        }
    }
    Ok(declared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.inc(Counter::TrialsProposed);
        t.event(TrialStage::Proposed, 1, 7, None);
        t.observe(Latency::FetchBatchRtt, Duration::from_millis(3));
        assert_eq!(t.counter(Counter::TrialsProposed), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn counters_and_events_accumulate() {
        let t = Telemetry::enabled();
        t.inc(Counter::TrialsProposed);
        t.add(Counter::TrialsProposed, 2);
        t.event(TrialStage::Proposed, 1, 0, None);
        t.event(TrialStage::Requeued, 1, 9, Some("owner_left"));
        assert_eq!(t.counter(Counter::TrialsProposed), 3);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(
            t.lifecycle(),
            vec![
                (TrialStage::Proposed, 1, None),
                (TrialStage::Requeued, 1, Some("owner_left")),
            ]
        );
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Telemetry::with_capacity(4);
        for i in 0..10 {
            t.event(TrialStage::Measured, i, 0, None);
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(t.dropped_events(), 6);
        // The survivors are the newest four, in order.
        let iters: Vec<usize> = events.iter().map(|e| e.iteration).collect();
        assert_eq!(iters, vec![6, 7, 8, 9]);
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let t = Telemetry::enabled();
        t.observe(Latency::WalAppendFsync, Duration::from_micros(1));
        t.observe(Latency::WalAppendFsync, Duration::from_micros(3));
        t.observe(Latency::WalAppendFsync, Duration::from_secs(100)); // overflow
        let text = t.prometheus();
        // 1µs lands in the first bucket (le=1e-6 seconds = 0.000001).
        assert!(
            text.contains("ah_wal_append_fsync_seconds_bucket{le=\"0.000001\"} 1"),
            "{text}"
        );
        // The +Inf bucket is cumulative: all three observations.
        assert!(
            text.contains("ah_wal_append_fsync_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("ah_wal_append_fsync_seconds_count 3"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_text_is_parseable() {
        let t = Telemetry::enabled();
        t.inc(Counter::TrialsReported);
        t.observe(Latency::ShardQueueWait, Duration::from_micros(50));
        for line in t.prometheus().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            // `name{labels} value` or `name value`; the value parses as f64
            // (+Inf bucket labels live inside the braces, not the value).
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        }
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.inc(Counter::WalAppends);
        assert_eq!(t.counter(Counter::WalAppends), 1);
    }

    #[test]
    fn spans_pair_begin_with_end_or_fault() {
        let t = Telemetry::enabled();
        let a = t.span_begin(SpanKind::Fetch, 3, "client", 7);
        let b = t.span_begin(SpanKind::Measure, 3, "worker", 1);
        assert_eq!(t.open_spans(), 2);
        t.span_end(a);
        t.span_fault(b, "crash");
        assert_eq!(t.open_spans(), 0);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Fetch);
        assert_eq!(spans[0].cause, None);
        assert_eq!(spans[1].kind, SpanKind::Measure);
        assert_eq!(spans[1].cause, Some("crash"));
        assert!(spans.iter().all(|s| s.start_us <= s.start_us + s.dur_us));
        // Closing a token twice (or a bogus one) is a no-op.
        t.span_end(a);
        t.span_end(SpanToken::disabled());
        assert_eq!(t.spans().len(), 2);
    }

    #[test]
    fn disabled_handle_spans_are_noops() {
        let t = Telemetry::disabled();
        let tok = t.span_begin(SpanKind::Report, 1, "client", 1);
        assert_eq!(tok, SpanToken::disabled());
        t.span_end(tok);
        assert_eq!(t.open_spans(), 0);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn span_ring_is_bounded_and_counts_drops() {
        let t = Telemetry::with_capacity(3);
        for i in 0..8 {
            let tok = t.span_begin(SpanKind::Measure, i, "worker", 0);
            t.span_end(tok);
        }
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.dropped_spans(), 5);
        let text = t.prometheus();
        assert!(text.contains("ah_spans_dropped_total 5"), "{text}");
        assert!(text.contains("ah_spans_open 0"), "{text}");
    }

    #[test]
    fn chrome_trace_has_metadata_and_monotone_tracks() {
        let t = Telemetry::enabled();
        for i in 0..4 {
            let tok = t.span_begin(SpanKind::Measure, i, "worker", (i % 2) as u64);
            std::thread::sleep(Duration::from_micros(50));
            if i == 2 {
                t.span_fault(tok, "lost_report");
            } else {
                t.span_end(tok);
            }
        }
        let trace = t.chrome_trace();
        // Valid JSON round-trip.
        let text = serde_json::to_string(&trace).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        // Process + two thread metadata events + four complete events.
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3, "{text}");
        let slices: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(slices.len(), 4);
        // Per-track timestamps are monotone.
        let mut last_ts: HashMap<u64, u64> = HashMap::new();
        for e in &slices {
            let tid = e["tid"].as_u64().unwrap();
            let ts = e["ts"].as_u64().unwrap();
            assert!(*last_ts.get(&tid).unwrap_or(&0) <= ts, "{text}");
            last_ts.insert(tid, ts);
            assert!(e["dur"].as_u64().is_some());
        }
        // The faulted span carries its cause.
        assert!(
            slices
                .iter()
                .any(|e| e["args"]["cause"].as_str() == Some("lost_report")),
            "{text}"
        );
    }

    #[test]
    fn counters_json_matches_counter_order() {
        let t = Telemetry::enabled();
        t.add(Counter::TrialsProposed, 5);
        t.inc(Counter::StoreHits);
        let v = t.counters_json();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), Counter::ALL.len());
        for ((key, val), c) in obj.iter().zip(Counter::ALL.iter()) {
            assert_eq!(key, c.name());
            assert_eq!(val.as_u64(), Some(t.counter(*c)));
        }
        assert_eq!(v["trials_proposed"].as_u64(), Some(5));
        assert_eq!(v["store_hits"].as_u64(), Some(1));
    }

    /// Exposition conformance: every `# TYPE` line is matched by samples of
    /// the declared kind, histogram `+Inf` buckets equal `_count`, no
    /// metric is declared twice, and the labeled per-tenant families carry
    /// their headers exactly once.
    #[test]
    fn prometheus_exposition_is_conformant() {
        let t = Telemetry::enabled();
        t.inc(Counter::StoreHits);
        t.inc(Counter::StoreMisses);
        t.inc(Counter::StoreTornTails);
        t.inc(Counter::ConnectionsAccepted);
        t.inc(Counter::ConnectionsRefused);
        t.inc(Counter::ConnectionsEvictedIdle);
        t.inc(Counter::ConnectionsClosedByPeer);
        t.observe(Latency::StoreLookup, Duration::from_micros(12));
        t.observe(Latency::WalAppendFsync, Duration::from_secs(120));
        t.observe(Latency::EventLoopIteration, Duration::from_micros(180));
        t.tenant_add("acme", TenantMetric::Evaluations, 7);
        t.tenant_add("acme", TenantMetric::QueueWaitUs, 1234);
        t.tenant_add("globex", TenantMetric::QuotaRefusals, 2);
        let tok = t.span_begin(SpanKind::Fetch, 1, "client", 1);
        t.span_end(tok);
        let text = t.prometheus();

        let declared = validate_exposition(&text).expect("exposition validates");
        let mut samples: HashMap<String, Vec<(String, f64)>> = HashMap::new();
        for line in text.lines() {
            if !line.starts_with('#') && !line.is_empty() {
                let (key, value) = line.rsplit_once(' ').expect("sample line");
                let value: f64 = value.parse().expect("sample value parses");
                let base = key.split('{').next().unwrap();
                let family = base
                    .strip_suffix("_bucket")
                    .or_else(|| base.strip_suffix("_sum"))
                    .or_else(|| base.strip_suffix("_count"))
                    .filter(|f| declared.iter().any(|(n, k)| n == f && k == "histogram"))
                    .unwrap_or(base);
                samples
                    .entry(family.to_string())
                    .or_default()
                    .push((key.to_string(), value));
            }
        }
        // dropped-events/spans/open metrics plus one family per counter,
        // histogram, and (label-carrying) per-tenant metric.
        assert_eq!(
            declared.len(),
            Counter::ALL.len() + Latency::ALL.len() + TenantMetric::ALL.len() + 3,
            "{declared:?}"
        );
        for (name, kind) in &declared {
            let got = samples.get(name).unwrap_or_else(|| {
                panic!("TYPE {name} declared but no samples emitted");
            });
            match kind.as_str() {
                "counter" | "gauge" if name.starts_with("ah_tenant_") => {
                    // Labeled family: one sample per tenant, each labeled.
                    assert_eq!(got.len(), 2, "{name} should have one sample per tenant");
                    assert!(got.iter().all(|(k, _)| k.contains("tenant=\"")), "{got:?}");
                }
                "counter" | "gauge" => {
                    assert_eq!(got.len(), 1, "{name} should have one sample");
                    assert_eq!(&got[0].0, name);
                }
                "histogram" => {
                    let inf = got
                        .iter()
                        .find(|(k, _)| k.contains("le=\"+Inf\""))
                        .unwrap_or_else(|| panic!("{name} lacks a +Inf bucket"));
                    let count = got
                        .iter()
                        .find(|(k, _)| k == &format!("{name}_count"))
                        .unwrap_or_else(|| panic!("{name} lacks _count"));
                    assert_eq!(inf.1, count.1, "{name}: +Inf bucket != _count");
                    assert!(
                        got.iter().any(|(k, _)| k == &format!("{name}_sum")),
                        "{name} lacks _sum"
                    );
                }
                other => panic!("unexpected metric kind {other} for {name}"),
            }
        }
        // Store hit/miss/torn-tail, ring-drop, connection-churn, and
        // per-tenant counters plus the readiness-loop histogram are present.
        for needle in [
            "ah_store_hits_total 1",
            "ah_store_misses_total 1",
            "ah_store_torn_tails_total 1",
            "ah_events_dropped_total 0",
            "ah_connections_accepted_total 1",
            "ah_connections_refused_total 1",
            "ah_connections_evicted_idle_total 1",
            "ah_connections_closed_by_peer_total 1",
            "ah_event_loop_iteration_seconds_count 1",
            "ah_tenant_evaluations_total{tenant=\"acme\"} 7",
            "ah_tenant_evaluations_total{tenant=\"globex\"} 0",
            "ah_tenant_queue_wait_us_total{tenant=\"acme\"} 1234",
            "ah_tenant_quota_refusals_total{tenant=\"globex\"} 2",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn exposition_without_tenants_has_no_orphan_tenant_headers() {
        let t = Telemetry::enabled();
        t.inc(Counter::TrialsReported);
        let text = t.prometheus();
        assert!(!text.contains("ah_tenant_"), "{text}");
        validate_exposition(&text).expect("tenant-free exposition validates");
    }

    #[test]
    fn validator_rejects_orphan_and_duplicated_headers() {
        // Orphan header: TYPE with no samples.
        let orphan = "# HELP ah_x_total x.\n# TYPE ah_x_total counter\n";
        assert!(validate_exposition(orphan)
            .unwrap_err()
            .contains("orphan header"));
        // Orphan sample: no TYPE at all.
        let stray = "ah_y_total 3\n";
        assert!(validate_exposition(stray)
            .unwrap_err()
            .contains("orphan sample"));
        // Duplicated TYPE header.
        let dup = "# HELP ah_x_total x.\n# TYPE ah_x_total counter\nah_x_total 1\n\
                   # TYPE ah_x_total counter\nah_x_total 2\n";
        assert!(validate_exposition(dup).unwrap_err().contains("duplicate"));
        // TYPE without HELP.
        let nohelp = "# TYPE ah_x_total counter\nah_x_total 1\n";
        assert!(validate_exposition(nohelp)
            .unwrap_err()
            .contains("TYPE without HELP"));
    }

    #[test]
    fn tenant_labels_are_bounded_with_overflow_aggregation() {
        let t = Telemetry::enabled();
        for i in 0..(MAX_TENANT_LABELS + 10) {
            t.tenant_add(&format!("tenant-{i}"), TenantMetric::Evaluations, 1);
        }
        // A label seen before the cap keeps counting under its own name.
        t.tenant_add("tenant-0", TenantMetric::Evaluations, 4);
        let table = t.tenant_counters();
        // MAX distinct labels plus the single overflow row.
        assert_eq!(table.len(), MAX_TENANT_LABELS + 1);
        assert_eq!(t.tenant_counter("tenant-0", TenantMetric::Evaluations), 5);
        assert_eq!(
            t.tenant_counter(TENANT_OVERFLOW_LABEL, TenantMetric::Evaluations),
            10
        );
        // The total is conserved across the fold.
        let total: u64 = table
            .iter()
            .map(|(_, row)| row[TenantMetric::Evaluations.idx()])
            .sum();
        assert_eq!(total, (MAX_TENANT_LABELS + 10 + 4) as u64);
    }

    #[test]
    fn histogram_snapshot_percentiles_and_deltas() {
        let t = Telemetry::enabled();
        for _ in 0..99 {
            t.observe(Latency::ReportBatchRtt, Duration::from_micros(10));
        }
        let before = t.histogram(Latency::ReportBatchRtt);
        assert_eq!(before.count, 99);
        // 10µs lands in the 16µs bucket (2^4).
        assert_eq!(before.percentile_us(0.5), Some(16.0));
        t.observe(Latency::ReportBatchRtt, Duration::from_millis(200));
        let after = t.histogram(Latency::ReportBatchRtt);
        // Full-history p99: rank 99 of 100 still in the 16µs bucket.
        assert_eq!(after.percentile_us(0.99), Some(16.0));
        // Windowed delta holds exactly the one slow observation.
        let window = after.delta(&before);
        assert_eq!(window.count, 1);
        let p99 = window.percentile_us(0.99).unwrap();
        assert!(p99 >= 200_000.0, "windowed p99 {p99} should be ~200ms");
        // Empty snapshot has no percentile.
        assert_eq!(HistoSnapshot::zero().percentile_us(0.99), None);
        assert_eq!(HistoSnapshot::zero().mean_us(), None);
    }

    #[test]
    fn disabled_handle_tenant_table_is_empty() {
        let t = Telemetry::disabled();
        t.tenant_add("acme", TenantMetric::Reports, 3);
        assert!(t.tenant_counters().is_empty());
        assert_eq!(t.tenant_counter("acme", TenantMetric::Reports), 0);
        assert_eq!(t.histogram(Latency::FetchBatchRtt), HistoSnapshot::zero());
    }
}

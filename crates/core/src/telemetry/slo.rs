//! In-process SLO engine: parse health rules, evaluate them against the
//! retained time-series, and render the `/healthz` verdict document.
//!
//! # Rule grammar
//!
//! ```text
//! <metric> <op> <threshold> [@<window_s>]
//! ```
//!
//! * `metric` — any name [`TimeSeries::resolve`] understands:
//!   `<counter>_rate` (per-second over the window), a bare counter name
//!   (cumulative), `<latency>_p50|_p90|_p99` (windowed percentile in
//!   seconds), or a registered gauge (`shard_queue_depth`,
//!   `store_unsynced`, `open_spans`, ...).
//! * `op` — `<`, `<=`, `>`, `>=`. The rule *holds* (is healthy) when
//!   `value op threshold` is true.
//! * `window_s` — evaluation window in (possibly fractional) seconds;
//!   defaults to [`DEFAULT_WINDOW`].
//!
//! Examples: `report_batch_rtt_p99<0.5@30`, `shard_queue_depth<10000`,
//! `quota_refusals_rate<100@60`, `open_spans<100000`.
//!
//! # Insufficient data is healthy
//!
//! A rule whose metric resolves to `None` — no samples yet, or a
//! percentile over a window with zero observations — **passes** with
//! reason `insufficient_data`. A freshly booted server must not report 503
//! before its first sampling tick, and a latency rule must recover once
//! the offending observations age out of its window. Breaches therefore
//! only come from observed data.

use super::timeseries::TimeSeries;
use std::time::Duration;

/// Default evaluation window when a rule omits `@window_s`.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(60);

/// Comparison operator of an SLO rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Healthy while `value < threshold`.
    Lt,
    /// Healthy while `value <= threshold`.
    Le,
    /// Healthy while `value > threshold`.
    Gt,
    /// Healthy while `value >= threshold`.
    Ge,
}

impl SloOp {
    /// The operator's source token.
    pub fn symbol(&self) -> &'static str {
        match self {
            SloOp::Lt => "<",
            SloOp::Le => "<=",
            SloOp::Gt => ">",
            SloOp::Ge => ">=",
        }
    }

    /// Whether `value op threshold` holds.
    pub fn holds(&self, value: f64, threshold: f64) -> bool {
        match self {
            SloOp::Lt => value < threshold,
            SloOp::Le => value <= threshold,
            SloOp::Gt => value > threshold,
            SloOp::Ge => value >= threshold,
        }
    }
}

/// One parsed health rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// The metric name, resolved via [`TimeSeries::resolve`].
    pub metric: String,
    /// The comparison that must hold for the rule to be healthy.
    pub op: SloOp,
    /// The threshold compared against.
    pub threshold: f64,
    /// The trailing evaluation window.
    pub window: Duration,
}

impl SloRule {
    /// Render back to the grammar (canonical spacing-free form).
    pub fn spec(&self) -> String {
        format!(
            "{}{}{}@{}",
            self.metric,
            self.op.symbol(),
            self.threshold,
            self.window.as_secs_f64()
        )
    }
}

/// Parse one rule from the grammar in the [module docs](self).
pub fn parse_rule(spec: &str) -> Result<SloRule, String> {
    let spec = spec.trim();
    let (op_at, op, op_len) = ["<=", ">=", "<", ">"]
        .iter()
        .filter_map(|tok| spec.find(tok).map(|i| (i, *tok)))
        .min_by_key(|(i, tok)| (*i, 2 - tok.len()))
        .map(|(i, tok)| {
            let op = match tok {
                "<=" => SloOp::Le,
                ">=" => SloOp::Ge,
                "<" => SloOp::Lt,
                _ => SloOp::Gt,
            };
            (i, op, tok.len())
        })
        .ok_or_else(|| format!("rule `{spec}` lacks an operator (<, <=, >, >=)"))?;
    let metric = spec[..op_at].trim();
    if metric.is_empty() {
        return Err(format!("rule `{spec}` lacks a metric name"));
    }
    let rest = spec[op_at + op_len..].trim();
    let (threshold_text, window) = match rest.split_once('@') {
        Some((t, w)) => {
            let secs: f64 = w
                .trim()
                .parse()
                .map_err(|_| format!("rule `{spec}`: bad window `{w}`"))?;
            if secs.is_nan() || !secs.is_finite() || secs <= 0.0 {
                return Err(format!("rule `{spec}`: window must be positive"));
            }
            (t.trim(), Duration::from_secs_f64(secs))
        }
        None => (rest, DEFAULT_WINDOW),
    };
    let threshold: f64 = threshold_text
        .parse()
        .map_err(|_| format!("rule `{spec}`: bad threshold `{threshold_text}`"))?;
    Ok(SloRule {
        metric: metric.to_string(),
        op,
        threshold,
        window,
    })
}

/// Parse a batch of rule specs, failing on the first bad one.
pub fn parse_rules<S: AsRef<str>>(specs: &[S]) -> Result<Vec<SloRule>, String> {
    specs.iter().map(|s| parse_rule(s.as_ref())).collect()
}

/// The stock rule set `repro serve` applies when no `--slo` flag is given:
/// queue depth, report-RTT tail, quota-refusal rate, span leaks, and
/// store flush lag — the five failure modes the ISSUE calls out.
pub fn default_rules() -> Vec<SloRule> {
    parse_rules(&[
        "shard_queue_depth<10000@10",
        "report_batch_rtt_p99<1.0@60",
        "quota_refusals_rate<100@60",
        "open_spans<100000@10",
        "store_unsynced<100000@10",
    ])
    .expect("stock rules parse")
}

/// One rule's evaluation outcome.
#[derive(Debug, Clone)]
pub struct RuleVerdict {
    /// The rule evaluated.
    pub rule: SloRule,
    /// The resolved metric value (`None` = insufficient data).
    pub value: Option<f64>,
    /// Whether the rule is healthy.
    pub ok: bool,
    /// Why: `ok`, `breach`, or `insufficient_data`.
    pub reason: &'static str,
}

impl RuleVerdict {
    /// The verdict as one JSON object.
    pub fn json(&self) -> serde_json::Value {
        serde_json::json!({
            "rule": self.rule.spec(),
            "metric": self.rule.metric.clone(),
            "op": self.rule.op.symbol(),
            "threshold": self.rule.threshold,
            "window_s": self.rule.window.as_secs_f64(),
            "value": self.value,
            "ok": self.ok,
            "reason": self.reason,
        })
    }
}

/// The `/healthz` document: overall health plus per-rule verdicts.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// True when every rule is healthy (the endpoint returns 200 vs 503).
    pub healthy: bool,
    /// One verdict per configured rule, in rule order.
    pub verdicts: Vec<RuleVerdict>,
}

impl HealthReport {
    /// Render the verdict document served by `GET /healthz`.
    pub fn json(&self) -> serde_json::Value {
        serde_json::json!({
            "healthy": self.healthy,
            "status": if self.healthy { "ok" } else { "breached" },
            "rules": self.verdicts.iter().map(RuleVerdict::json).collect::<Vec<_>>(),
        })
    }
}

/// Evaluate every rule against the series' current state.
pub fn evaluate(rules: &[SloRule], series: &TimeSeries) -> HealthReport {
    let verdicts: Vec<RuleVerdict> = rules
        .iter()
        .map(|rule| match series.resolve(&rule.metric, rule.window) {
            Some(value) => {
                let ok = rule.op.holds(value, rule.threshold);
                RuleVerdict {
                    rule: rule.clone(),
                    value: Some(value),
                    ok,
                    reason: if ok { "ok" } else { "breach" },
                }
            }
            None => RuleVerdict {
                rule: rule.clone(),
                value: None,
                ok: true,
                reason: "insufficient_data",
            },
        })
        .collect();
    HealthReport {
        healthy: verdicts.iter().all(|v| v.ok),
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Counter, Latency, Telemetry};
    use super::*;

    #[test]
    fn rules_parse_the_documented_grammar() {
        let r = parse_rule("report_batch_rtt_p99<0.5@30").unwrap();
        assert_eq!(r.metric, "report_batch_rtt_p99");
        assert_eq!(r.op, SloOp::Lt);
        assert_eq!(r.threshold, 0.5);
        assert_eq!(r.window, Duration::from_secs(30));

        let r = parse_rule(" shard_queue_depth <= 10000 ").unwrap();
        assert_eq!(r.op, SloOp::Le);
        assert_eq!(r.window, DEFAULT_WINDOW);

        let r = parse_rule("trials_reported_rate>=0.1@2.5").unwrap();
        assert_eq!(r.op, SloOp::Ge);
        assert_eq!(r.window, Duration::from_secs_f64(2.5));

        assert!(parse_rule("no_operator_here").is_err());
        assert!(parse_rule("<5").is_err());
        assert!(parse_rule("x<notanumber").is_err());
        assert!(parse_rule("x<5@0").is_err());
        assert!(parse_rule("x<5@-2").is_err());
        assert!(default_rules().len() == 5);
    }

    #[test]
    fn rule_spec_roundtrips() {
        for spec in ["a<1@60", "b>=2.5@0.5", "c>100@10"] {
            let rule = parse_rule(spec).unwrap();
            assert_eq!(parse_rule(&rule.spec()).unwrap(), rule);
        }
    }

    #[test]
    fn empty_series_is_healthy_by_insufficient_data() {
        let series = TimeSeries::new(Telemetry::enabled());
        let report = evaluate(&default_rules(), &series);
        assert!(report.healthy);
        assert!(report
            .verdicts
            .iter()
            .all(|v| v.reason == "insufficient_data"));
    }

    #[test]
    fn breach_flips_unhealthy_and_recovers_when_window_drains() {
        let t = Telemetry::enabled();
        let series = TimeSeries::new(t.clone());
        let rules = parse_rules(&["report_batch_rtt_p99<0.01@3600"]).unwrap();
        series.sample_now();
        assert!(evaluate(&rules, &series).healthy, "no data yet");

        // A 200ms tail breaches the 10ms p99 budget.
        for _ in 0..10 {
            t.observe(Latency::ReportBatchRtt, Duration::from_millis(200));
        }
        series.sample_now();
        let report = evaluate(&rules, &series);
        assert!(!report.healthy);
        assert_eq!(report.verdicts[0].reason, "breach");
        assert!(report.verdicts[0].value.unwrap() > 0.01);

        // Recovery: a narrow window that excludes the burst sees zero
        // observations → insufficient data → healthy again.
        series.sample_now();
        let narrow = parse_rules(&["report_batch_rtt_p99<0.01@0.000001"]).unwrap();
        assert!(evaluate(&narrow, &series).healthy);
    }

    #[test]
    fn gauge_and_rate_rules_evaluate() {
        let t = Telemetry::enabled();
        let series = TimeSeries::new(t.clone());
        series.register_gauge("shard_queue_depth", || 42.0);
        series.sample_now();
        t.add(Counter::QuotaRefusals, 1000);
        std::thread::sleep(Duration::from_millis(5));
        series.sample_now();

        let depth_ok = parse_rules(&["shard_queue_depth<100@60"]).unwrap();
        assert!(evaluate(&depth_ok, &series).healthy);
        let depth_bad = parse_rules(&["shard_queue_depth<10@60"]).unwrap();
        let report = evaluate(&depth_bad, &series);
        assert!(!report.healthy);
        assert_eq!(report.verdicts[0].value, Some(42.0));

        // 1000 refusals in a few ms is an enormous rate.
        let rate_bad = parse_rules(&["quota_refusals_rate<100@60"]).unwrap();
        assert!(!evaluate(&rate_bad, &series).healthy);
    }

    #[test]
    fn report_json_shape() {
        let series = TimeSeries::new(Telemetry::enabled());
        series.sample_now();
        let rules = parse_rules(&["open_spans<10@60"]).unwrap();
        let doc = evaluate(&rules, &series).json();
        assert_eq!(doc["healthy"].as_bool(), Some(true));
        assert_eq!(doc["status"].as_str(), Some("ok"));
        let rules_doc = doc["rules"].as_array().unwrap();
        assert_eq!(rules_doc.len(), 1);
        assert_eq!(rules_doc[0]["metric"].as_str(), Some("open_spans"));
        assert_eq!(rules_doc[0]["reason"].as_str(), Some("ok"));
        assert_eq!(rules_doc[0]["value"].as_f64(), Some(0.0));
        // Serializes cleanly.
        serde_json::parse(&serde_json::to_string(&doc).unwrap()).unwrap();
    }
}

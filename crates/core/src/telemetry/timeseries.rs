//! Retained time-series over a [`Telemetry`] handle.
//!
//! `/metrics` is a point-in-time scrape: it can tell you *how many*
//! evaluations have ever happened, but not whether the server is doing
//! 40k/s right now or has stalled. This module adds the missing axis —
//! time — without any new dependency:
//!
//! * [`TimeSeries`] owns a bounded ring of [`Sample`]s. Each sample is a
//!   full snapshot of every counter, every registered gauge, and the **raw
//!   buckets** of every latency histogram. Retaining raw buckets (not
//!   precomputed quantiles) is the load-bearing choice: the delta of two
//!   cumulative histograms is itself a histogram, so any window's p50/p99
//!   is exact over exactly the observations made inside that window.
//! * [`Sampler`] is a background thread that calls
//!   [`TimeSeries::sample_now`] on a fixed interval. It sleeps in short
//!   slices so shutdown is prompt, and the handle joins the thread on
//!   `stop()`/drop.
//! * [`TimeSeries::window`] answers delta/rate/percentile queries over an
//!   arbitrary trailing window; [`TimeSeries::resolve`] maps a metric name
//!   (`<counter>`, `<counter>_rate`, `<latency>_p50|_p90|_p99`, or a gauge)
//!   to a value — the lookup language the SLO engine ([`super::slo`]) and
//!   the `/metrics/history` endpoint share.
//!
//! Memory is bounded by construction: `capacity` samples × (32 counters +
//! 11×26 histogram buckets + a handful of gauges) ≈ a few hundred KiB at
//! the default 512-sample ring, independent of traffic.

use super::{Counter, HistoSnapshot, Latency, Telemetry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default number of retained samples (at the default 1s interval: ~8.5
/// minutes of history).
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// Default sampling interval for [`TimeSeries::start_sampler`].
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_secs(1);

/// A gauge read on every sampling tick: any `Fn() -> f64` closure (queue
/// depths, unsynced store records, open spans, ...).
pub type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

/// One snapshot of the whole telemetry surface at a point in time.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Microseconds since the series was created.
    pub at_us: u64,
    /// Every counter's cumulative value, in [`Counter::ALL`] order.
    pub counters: Vec<u64>,
    /// Every registered gauge's instantaneous value, `(name, value)`.
    pub gauges: Vec<(String, f64)>,
    /// Every latency histogram's raw cumulative state, in
    /// [`Latency::ALL`] order.
    pub histos: Vec<HistoSnapshot>,
}

impl Sample {
    /// Cumulative value of one counter in this sample.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.idx()]
    }
}

/// Delta/rate/percentile aggregation between the first and last sample of
/// a trailing window. Produced by [`TimeSeries::window`].
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Timestamp of the first sample in the window (µs since series start).
    pub first_at_us: u64,
    /// Timestamp of the last sample in the window.
    pub last_at_us: u64,
    /// Wall-clock span between them, in seconds (0 with one sample).
    pub seconds: f64,
    /// Number of samples inside the window.
    pub samples: usize,
    /// Per-counter increase across the window, in [`Counter::ALL`] order.
    pub counter_deltas: Vec<(&'static str, u64)>,
    /// Per-counter rate (delta / seconds; 0 when the window has no span).
    pub counter_rates: Vec<(&'static str, f64)>,
    /// Per-histogram delta snapshot — the observations made *inside* the
    /// window, in [`Latency::ALL`] order.
    pub histo_deltas: Vec<(&'static str, HistoSnapshot)>,
    /// Last observed value of each gauge, `(name, value)`.
    pub gauge_last: Vec<(String, f64)>,
}

struct SeriesInner {
    telemetry: Telemetry,
    start: Instant,
    capacity: usize,
    gauges: Mutex<Vec<(String, GaugeFn)>>,
    ring: Mutex<VecDeque<Sample>>,
}

/// A cheap, cloneable handle on the retained ring. See the
/// [module docs](self).
#[derive(Clone)]
pub struct TimeSeries {
    inner: Arc<SeriesInner>,
}

impl std::fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeries")
            .field("samples", &self.inner.ring.lock().len())
            .field("capacity", &self.inner.capacity)
            .finish_non_exhaustive()
    }
}

impl TimeSeries {
    /// A series over `telemetry` with the [`DEFAULT_RING_CAPACITY`] ring.
    pub fn new(telemetry: Telemetry) -> Self {
        Self::with_capacity(telemetry, DEFAULT_RING_CAPACITY)
    }

    /// A series retaining at most `capacity` samples (older samples are
    /// evicted). The `open_spans` gauge is pre-registered — span leaks are
    /// one of the SLO engine's stock signals.
    pub fn with_capacity(telemetry: Telemetry, capacity: usize) -> Self {
        let t = telemetry.clone();
        let series = TimeSeries {
            inner: Arc::new(SeriesInner {
                telemetry,
                start: Instant::now(),
                capacity: capacity.max(2),
                gauges: Mutex::new(Vec::new()),
                ring: Mutex::new(VecDeque::new()),
            }),
        };
        series.register_gauge("open_spans", move || t.open_spans() as f64);
        series
    }

    /// Register (or replace) a gauge read on every sampling tick.
    pub fn register_gauge(&self, name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        let mut gauges = self.inner.gauges.lock();
        match gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = Box::new(f),
            None => gauges.push((name.to_string(), Box::new(f))),
        }
    }

    /// Take one snapshot now and append it to the ring. Returns the
    /// sample's timestamp (µs since series creation).
    pub fn sample_now(&self) -> u64 {
        let at_us = u64::try_from(self.inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let counters = Counter::ALL
            .iter()
            .map(|c| self.inner.telemetry.counter(*c))
            .collect();
        let histos = Latency::ALL
            .iter()
            .map(|l| self.inner.telemetry.histogram(*l))
            .collect();
        let gauges = {
            let gauges = self.inner.gauges.lock();
            gauges.iter().map(|(n, f)| (n.clone(), f())).collect()
        };
        let sample = Sample {
            at_us,
            counters,
            gauges,
            histos,
        };
        let mut ring = self.inner.ring.lock();
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
        at_us
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().len()
    }

    /// True when no sample has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.inner.ring.lock().is_empty()
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<Sample> {
        self.inner.ring.lock().back().cloned()
    }

    /// The retained samples whose age (relative to the newest sample) is
    /// within `window`, oldest first.
    pub fn samples_within(&self, window: Duration) -> Vec<Sample> {
        let ring = self.inner.ring.lock();
        let Some(last) = ring.back() else {
            return Vec::new();
        };
        let window_us = u64::try_from(window.as_micros()).unwrap_or(u64::MAX);
        let cutoff = last.at_us.saturating_sub(window_us);
        ring.iter().filter(|s| s.at_us >= cutoff).cloned().collect()
    }

    /// Aggregate the trailing `window` into deltas, rates, and windowed
    /// histogram snapshots. `None` before the first sample; with a single
    /// sample the deltas are zero over a zero-second span.
    pub fn window(&self, window: Duration) -> Option<WindowStats> {
        let samples = self.samples_within(window);
        let (first, last) = (samples.first()?, samples.last()?);
        let seconds = last.at_us.saturating_sub(first.at_us) as f64 / 1e6;
        let counter_deltas: Vec<(&'static str, u64)> = Counter::ALL
            .iter()
            .map(|c| (c.name(), last.counter(*c).saturating_sub(first.counter(*c))))
            .collect();
        let counter_rates = counter_deltas
            .iter()
            .map(|(name, delta)| {
                let rate = if seconds > 0.0 {
                    *delta as f64 / seconds
                } else {
                    0.0
                };
                (*name, rate)
            })
            .collect();
        let histo_deltas = Latency::ALL
            .iter()
            .enumerate()
            .map(|(i, l)| (l.name(), last.histos[i].delta(&first.histos[i])))
            .collect();
        Some(WindowStats {
            first_at_us: first.at_us,
            last_at_us: last.at_us,
            seconds,
            samples: samples.len(),
            counter_deltas,
            counter_rates,
            histo_deltas,
            gauge_last: last.gauges.clone(),
        })
    }

    /// Resolve a metric name to its current value over `window` — the
    /// lookup language shared by SLO rules and dashboards:
    ///
    /// * `<counter>_rate` → that counter's per-second rate over the window;
    /// * `<counter>` → its latest cumulative value;
    /// * `<latency>_p50` / `_p90` / `_p99` → that windowed percentile, in
    ///   **seconds**;
    /// * anything else → the latest value of the gauge of that name.
    ///
    /// `None` means insufficient data: no samples yet, an unknown name, or
    /// a percentile over a window with zero observations.
    pub fn resolve(&self, metric: &str, window: Duration) -> Option<f64> {
        let stats = self.window(window)?;
        if let Some(base) = metric.strip_suffix("_rate") {
            if let Some((_, rate)) = stats.counter_rates.iter().find(|(n, _)| *n == base) {
                return Some(*rate);
            }
        }
        for (suffix, q) in [("_p50", 0.50), ("_p90", 0.90), ("_p99", 0.99)] {
            if let Some(base) = metric.strip_suffix(suffix) {
                if let Some((_, h)) = stats.histo_deltas.iter().find(|(n, _)| *n == base) {
                    return h.percentile_us(q).map(|us| us / 1e6);
                }
            }
        }
        if Counter::ALL.iter().any(|c| c.name() == metric) {
            let last = self.latest()?;
            let c = Counter::ALL.iter().find(|c| c.name() == metric)?;
            return Some(last.counter(*c) as f64);
        }
        stats
            .gauge_last
            .iter()
            .find(|(n, _)| n == metric)
            .map(|(_, v)| *v)
    }

    /// The `/metrics/history` document: windowed rates, deltas, latency
    /// summaries, gauge values, and the raw sample series (counters +
    /// gauges per tick; histogram buckets stay internal).
    pub fn history_json(&self, window: Duration) -> serde_json::Value {
        use serde_json::Value;
        let samples = self.samples_within(window);
        let stats = self.window(window);
        let obj_u64 = |pairs: &[(&'static str, u64)]| {
            Value::Object(
                pairs
                    .iter()
                    .map(|(n, v)| (n.to_string(), Value::UInt(*v)))
                    .collect(),
            )
        };
        let obj_f64 = |pairs: &[(&'static str, f64)]| {
            Value::Object(
                pairs
                    .iter()
                    .map(|(n, v)| (n.to_string(), Value::Float(*v)))
                    .collect(),
            )
        };
        let series: Vec<Value> = samples
            .iter()
            .map(|s| {
                let counters = Value::Object(
                    Counter::ALL
                        .iter()
                        .map(|c| (c.name().to_string(), Value::UInt(s.counter(*c))))
                        .collect(),
                );
                let gauges = Value::Object(
                    s.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Float(*v)))
                        .collect(),
                );
                serde_json::json!({
                    "at_us": s.at_us,
                    "counters": counters,
                    "gauges": gauges,
                })
            })
            .collect();
        let window_doc = match &stats {
            Some(w) => {
                let latency = Value::Object(
                    w.histo_deltas
                        .iter()
                        .map(|(n, h)| (n.to_string(), h.summary_json()))
                        .collect(),
                );
                let gauges = Value::Object(
                    w.gauge_last
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Float(*v)))
                        .collect(),
                );
                serde_json::json!({
                    "seconds": w.seconds,
                    "samples": w.samples,
                    "deltas": obj_u64(&w.counter_deltas),
                    "rates": obj_f64(&w.counter_rates),
                    "latency": latency,
                    "gauges": gauges,
                })
            }
            None => Value::Null,
        };
        serde_json::json!({
            "window_s": window.as_secs_f64(),
            "retained": self.len(),
            "capacity": self.inner.capacity,
            "window": window_doc,
            "series": Value::Array(series),
        })
    }

    /// Spawn the background sampler thread ticking every `interval`.
    pub fn start_sampler(&self, interval: Duration) -> Sampler {
        let series = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("ah-sampler".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    series.sample_now();
                    // Sleep in short slices so stop() returns promptly even
                    // with multi-second intervals.
                    let mut left = interval;
                    while !flag.load(Ordering::Relaxed) && left > Duration::ZERO {
                        let nap = left.min(Duration::from_millis(10));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle on the background sampling thread. Stops (and joins) on
/// [`Sampler::stop`] or drop.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Signal the thread to exit and join it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_deltas_equal_counter_deltas() {
        let t = Telemetry::enabled();
        let series = TimeSeries::new(t.clone());
        t.add(Counter::TrialsReported, 10);
        series.sample_now();
        t.add(Counter::TrialsReported, 32);
        t.inc(Counter::QuotaRefusals);
        series.sample_now();
        let w = series.window(Duration::from_secs(3600)).unwrap();
        assert_eq!(w.samples, 2);
        let delta = |name: &str| {
            w.counter_deltas
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| *d)
                .unwrap()
        };
        assert_eq!(delta("trials_reported"), 32);
        assert_eq!(delta("quota_refusals"), 1);
        assert_eq!(delta("trials_proposed"), 0);
        // Cumulative resolve sees the full total, not the delta.
        assert_eq!(
            series.resolve("trials_reported", Duration::from_secs(3600)),
            Some(42.0)
        );
    }

    #[test]
    fn ring_is_bounded() {
        let series = TimeSeries::with_capacity(Telemetry::enabled(), 4);
        for _ in 0..10 {
            series.sample_now();
        }
        assert_eq!(series.len(), 4);
    }

    #[test]
    fn windowed_percentile_sees_only_window_observations() {
        let t = Telemetry::enabled();
        let series = TimeSeries::new(t.clone());
        series.sample_now();
        for _ in 0..100 {
            t.observe(Latency::ReportBatchRtt, Duration::from_micros(10));
        }
        std::thread::sleep(Duration::from_millis(2));
        series.sample_now();
        // A quiet window after the burst: no new observations.
        std::thread::sleep(Duration::from_millis(2));
        series.sample_now();
        let w = series.window(Duration::from_micros(1)).unwrap();
        let (_, h) = w
            .histo_deltas
            .iter()
            .find(|(n, _)| *n == "report_batch_rtt")
            .unwrap();
        // Only the last sample is inside the 1µs window → zero-delta
        // histogram → no percentile (insufficient data, not a breach).
        assert_eq!(h.count, 0);
        assert_eq!(
            series.resolve("report_batch_rtt_p99", Duration::from_micros(1)),
            None
        );
        // The full window sees the burst.
        let p99 = series
            .resolve("report_batch_rtt_p99", Duration::from_secs(3600))
            .unwrap();
        assert!(p99 > 0.0 && p99 < 0.001, "p99 {p99} should be ~16µs");
    }

    #[test]
    fn gauges_are_sampled_and_resolvable() {
        let series = TimeSeries::new(Telemetry::enabled());
        let depth = Arc::new(AtomicBool::new(false));
        let d = depth.clone();
        series.register_gauge("shard_queue_depth", move || {
            if d.load(Ordering::Relaxed) {
                50.0
            } else {
                3.0
            }
        });
        series.sample_now();
        assert_eq!(
            series.resolve("shard_queue_depth", Duration::from_secs(60)),
            Some(3.0)
        );
        depth.store(true, Ordering::Relaxed);
        series.sample_now();
        assert_eq!(
            series.resolve("shard_queue_depth", Duration::from_secs(60)),
            Some(50.0)
        );
        // The stock open_spans gauge exists from construction.
        assert_eq!(
            series.resolve("open_spans", Duration::from_secs(60)),
            Some(0.0)
        );
        // Unknown names resolve to nothing.
        assert_eq!(
            series.resolve("no_such_metric", Duration::from_secs(60)),
            None
        );
    }

    #[test]
    fn sampler_thread_fills_the_ring_and_stops() {
        let series = TimeSeries::new(Telemetry::enabled());
        let mut sampler = series.start_sampler(Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        while series.len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        let n = series.len();
        assert!(n >= 3, "sampler took {n} samples");
        // No more samples after stop.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(series.len(), n);
    }

    #[test]
    fn history_json_has_rates_and_series() {
        let t = Telemetry::enabled();
        let series = TimeSeries::new(t.clone());
        t.add(Counter::TrialsReported, 5);
        series.sample_now();
        std::thread::sleep(Duration::from_millis(5));
        t.add(Counter::TrialsReported, 5);
        series.sample_now();
        let doc = series.history_json(Duration::from_secs(60));
        assert_eq!(doc["retained"].as_u64(), Some(2));
        assert_eq!(doc["series"].as_array().unwrap().len(), 2);
        assert_eq!(doc["window"]["deltas"]["trials_reported"].as_u64(), Some(5));
        let rate = doc["window"]["rates"]["trials_reported"].as_f64().unwrap();
        assert!(rate > 0.0, "rate {rate}");
        // Round-trips through the serializer.
        let text = serde_json::to_string(&doc).unwrap();
        serde_json::parse(&text).unwrap();
    }

    #[test]
    fn empty_series_resolves_nothing() {
        let series = TimeSeries::new(Telemetry::enabled());
        assert!(series.is_empty());
        assert!(series.window(Duration::from_secs(60)).is_none());
        assert_eq!(
            series.resolve("trials_reported", Duration::from_secs(60)),
            None
        );
        let doc = series.history_json(Duration::from_secs(60));
        assert!(doc["window"].is_null());
    }
}

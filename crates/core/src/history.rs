//! Evaluation history: the per-iteration record a tuning session keeps.
//!
//! Table I of the paper is exactly such a trace (which parameter changed at
//! which iteration); [`History::parameter_change_trace`] regenerates it.

use crate::space::Configuration;
use serde::{Deserialize, Serialize};

/// One measured configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// 1-based tuning iteration (one application run in off-line mode).
    pub iteration: usize,
    /// The configuration that was measured.
    pub config: Configuration,
    /// The measured cost (execution time in seconds for the paper's apps).
    pub cost: f64,
    /// Whether this evaluation was served from the cache (no new run).
    pub cached: bool,
    /// Cumulative tuning time spent up to and including this evaluation
    /// (run time + restart + warm-up overheads in off-line mode).
    pub cumulative_time: f64,
}

/// Chronological record of every evaluation in a session.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    evals: Vec<Evaluation>,
}

impl History {
    /// Create an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an evaluation.
    pub fn push(&mut self, eval: Evaluation) {
        self.evals.push(eval);
    }

    /// All evaluations in order.
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evals
    }

    /// Number of evaluations (including cached replays).
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// True if no evaluations were recorded.
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// Number of *fresh* evaluations — actual application runs.
    pub fn runs(&self) -> usize {
        self.evals.iter().filter(|e| !e.cached).count()
    }

    /// Best evaluation so far (ties go to the earliest). `total_cmp` keeps
    /// the ordering a real total order even if a NaN cost slips in: NaN
    /// sorts above `+inf`, so it can never shadow a genuine best.
    pub fn best(&self) -> Option<&Evaluation> {
        self.evals.iter().min_by(|a, b| a.cost.total_cmp(&b.cost))
    }

    /// The running best cost after each evaluation (a convergence curve).
    pub fn best_curve(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.evals
            .iter()
            .map(|e| {
                best = best.min(e.cost);
                best
            })
            .collect()
    }

    /// First iteration (1-based) whose cost is within `factor` of the final
    /// best (e.g. `1.05` = within 5%).
    pub fn iterations_to_within(&self, factor: f64) -> Option<usize> {
        let best = self.best()?.cost;
        let threshold = best * factor;
        self.evals
            .iter()
            .find(|e| e.cost <= threshold)
            .map(|e| e.iteration)
    }

    /// The sequence of *best-so-far* configurations with, for each
    /// improvement step, the parameters whose values changed relative to the
    /// previous best. Regenerates the shape of the paper's Table I
    /// ("each row shows only the parameter that changes").
    pub fn parameter_change_trace(&self) -> Vec<TraceRow> {
        let mut rows = Vec::new();
        let mut current_best: Option<&Evaluation> = None;
        for e in &self.evals {
            let improved = match current_best {
                None => true,
                Some(b) => e.cost < b.cost,
            };
            if !improved {
                continue;
            }
            let changes = match current_best {
                None => Vec::new(),
                Some(prev) => e
                    .config
                    .iter()
                    .filter_map(|(name, value)| {
                        let old = prev.config.get(name)?;
                        if old != value {
                            Some(ParamChange {
                                name: name.to_string(),
                                from: old.to_string(),
                                to: value.to_string(),
                            })
                        } else {
                            None
                        }
                    })
                    .collect(),
            };
            rows.push(TraceRow {
                iteration: e.iteration,
                cost: e.cost,
                changes,
            });
            current_best = Some(e);
        }
        rows
    }

    /// The per-iteration parameter diffs against the *previous iteration*
    /// (the exact semantics of the paper's Table I footnote: "each row shows
    /// only the parameter that changes; all the rest of parameters remain
    /// the same compared to the previous iteration"). Cached replays are
    /// skipped — they are not application runs.
    pub fn step_change_trace(&self) -> Vec<TraceRow> {
        let mut rows = Vec::new();
        let mut prev: Option<&Evaluation> = None;
        for e in self.evals.iter().filter(|e| !e.cached) {
            let changes = match prev {
                None => Vec::new(),
                Some(p) => e
                    .config
                    .iter()
                    .filter_map(|(name, value)| {
                        let old = p.config.get(name)?;
                        if old != value {
                            Some(ParamChange {
                                name: name.to_string(),
                                from: old.to_string(),
                                to: value.to_string(),
                            })
                        } else {
                            None
                        }
                    })
                    .collect(),
            };
            rows.push(TraceRow {
                iteration: e.iteration,
                cost: e.cost,
                changes,
            });
            prev = Some(e);
        }
        rows
    }

    /// Render the history as CSV (`iteration,cost,cached,cumulative_time,
    /// param1,param2,…`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if let Some(first) = self.evals.first() {
            out.push_str("iteration,cost,cached,cumulative_time");
            for name in first.config.names() {
                out.push(',');
                out.push_str(name);
            }
            out.push('\n');
        }
        for e in &self.evals {
            out.push_str(&format!(
                "{},{},{},{}",
                e.iteration, e.cost, e.cached, e.cumulative_time
            ));
            for v in e.config.values() {
                out.push(',');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }
}

/// One improvement step in a [`History::parameter_change_trace`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRow {
    /// Iteration at which the improvement happened.
    pub iteration: usize,
    /// Cost of the new best configuration.
    pub cost: f64,
    /// Parameters whose values differ from the previous best (empty for the
    /// first row, which is the starting configuration).
    pub changes: Vec<ParamChange>,
}

/// A single parameter's before/after values in a trace row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamChange {
    /// Parameter name.
    pub name: String,
    /// Previous value (rendered).
    pub from: String,
    /// New value (rendered).
    pub to: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 10, 1)
            .enumeration("m", ["a", "b"])
            .build()
            .unwrap()
    }

    fn eval(it: usize, x: i64, m: f64, cost: f64) -> Evaluation {
        let s = space();
        Evaluation {
            iteration: it,
            config: s.project(&[x as f64, m]),
            cost,
            cached: false,
            cumulative_time: it as f64,
        }
    }

    #[test]
    fn best_and_curve() {
        let mut h = History::new();
        h.push(eval(1, 5, 0.0, 10.0));
        h.push(eval(2, 6, 0.0, 12.0));
        h.push(eval(3, 3, 1.0, 7.0));
        assert_eq!(h.best().unwrap().cost, 7.0);
        assert_eq!(h.best_curve(), vec![10.0, 10.0, 7.0]);
        assert_eq!(h.runs(), 3);
    }

    #[test]
    fn trace_reports_only_changes() {
        let mut h = History::new();
        h.push(eval(1, 5, 0.0, 10.0));
        h.push(eval(2, 5, 1.0, 8.0)); // only m changed
        h.push(eval(3, 2, 1.0, 6.0)); // only x changed
        let trace = h.parameter_change_trace();
        assert_eq!(trace.len(), 3);
        assert!(trace[0].changes.is_empty());
        assert_eq!(trace[1].changes.len(), 1);
        assert_eq!(trace[1].changes[0].name, "m");
        assert_eq!(trace[2].changes[0].name, "x");
        assert_eq!(trace[2].changes[0].from, "5");
        assert_eq!(trace[2].changes[0].to, "2");
    }

    #[test]
    fn step_trace_diffs_consecutive_iterations() {
        let mut h = History::new();
        h.push(eval(1, 5, 0.0, 10.0));
        h.push(eval(2, 6, 1.0, 12.0)); // both params changed, cost worse
        let mut cached = eval(3, 6, 1.0, 12.0);
        cached.cached = true;
        h.push(cached); // replay: skipped
        h.push(eval(4, 6, 0.0, 11.0)); // only m changed vs iteration 2
        let trace = h.step_change_trace();
        assert_eq!(trace.len(), 3);
        assert!(trace[0].changes.is_empty());
        assert_eq!(trace[1].changes.len(), 2);
        assert_eq!(trace[2].changes.len(), 1);
        assert_eq!(trace[2].changes[0].name, "m");
    }

    #[test]
    fn iterations_to_within_finds_first_good_iteration() {
        let mut h = History::new();
        h.push(eval(1, 5, 0.0, 100.0));
        h.push(eval(2, 4, 0.0, 52.0));
        h.push(eval(3, 3, 0.0, 50.0));
        assert_eq!(h.iterations_to_within(1.05), Some(2));
        assert_eq!(h.iterations_to_within(1.0), Some(3));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut h = History::new();
        h.push(eval(1, 5, 0.0, 10.0));
        let csv = h.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "iteration,cost,cached,cumulative_time,x,m"
        );
        assert!(lines.next().unwrap().starts_with("1,10,"));
    }

    #[test]
    fn empty_history_is_safe() {
        let h = History::new();
        assert!(h.best().is_none());
        assert!(h.is_empty());
        assert_eq!(h.to_csv(), "");
        assert!(h.parameter_change_trace().is_empty());
        assert_eq!(h.iterations_to_within(1.1), None);
    }
}

//! Search spaces and configurations.
//!
//! A [`SearchSpace`] is an ordered set of [`Param`] declarations plus optional
//! [`Constraint`]s between dependent parameters (paper §II footnote 2, using
//! the dependent-variable techniques of the authors' SC'04 work).
//! A [`Configuration`] is one valid point of the space — the thing handed to
//! the application.

use crate::constraint::Constraint;
use crate::error::{HarmonyError, Result};
use crate::param::Param;
use crate::value::ParamValue;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One valid point of a [`SearchSpace`]: a named, typed value per parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    names: Vec<String>,
    values: Vec<ParamValue>,
}

impl Configuration {
    /// Build a configuration from parallel name/value vectors.
    pub fn new(names: Vec<String>, values: Vec<ParamValue>) -> Self {
        debug_assert_eq!(names.len(), values.len());
        Configuration { names, values }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the configuration has no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of parameter `name`, if present.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.values[i])
    }

    /// Integer value of parameter `name` (None if absent or not an int).
    pub fn int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(ParamValue::as_int)
    }

    /// Real value of parameter `name`.
    pub fn real(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(ParamValue::as_real)
    }

    /// Enum label of parameter `name`.
    pub fn choice(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(ParamValue::as_enum)
    }

    /// Values in declaration order.
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// Names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Iterate `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }

    /// A canonical hashable key identifying this lattice point, used for the
    /// evaluation cache (repeat visits of a projected point are free — no
    /// application re-run is needed).
    pub fn cache_key(&self) -> Vec<i64> {
        self.values.iter().map(ParamValue::cache_key).collect()
    }

    /// Replace the value of `name`. Errors if the parameter is absent.
    pub fn set(&mut self, name: &str, value: ParamValue) -> Result<()> {
        match self.names.iter().position(|n| n == name) {
            Some(i) => {
                self.values[i] = value;
                Ok(())
            }
            None => Err(HarmonyError::UnknownParam(name.to_string())),
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        write!(f, "}}")
    }
}

/// An ordered collection of tunable parameters plus dependent-variable
/// constraints; the domain the tuning algorithms search over.
#[derive(Clone)]
pub struct SearchSpace {
    params: Vec<Param>,
    constraints: Vec<Arc<dyn Constraint>>,
}

impl fmt::Debug for SearchSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SearchSpace")
            .field("params", &self.params)
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

impl SearchSpace {
    /// Start building a space.
    pub fn builder() -> SearchSpaceBuilder {
        SearchSpaceBuilder::default()
    }

    /// Construct a space from pre-built parameters.
    pub fn new(params: Vec<Param>) -> Result<Self> {
        SearchSpaceBuilder {
            params,
            constraints: Vec::new(),
        }
        .build()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// Parameter declarations in order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The attached constraints.
    pub fn constraints(&self) -> &[Arc<dyn Constraint>] {
        &self.constraints
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// Total number of lattice points, or `None` if any dimension is
    /// continuous. Saturates at `u64::MAX`.
    pub fn cardinality(&self) -> Option<u64> {
        let mut total: u64 = 1;
        for p in &self.params {
            total = total.saturating_mul(p.cardinality()?);
        }
        Some(total)
    }

    /// log10 of the cardinality (used to report search-space sizes like the
    /// paper's "O(10^100) points" without overflowing).
    pub fn log10_cardinality(&self) -> Option<f64> {
        let mut total = 0.0;
        for p in &self.params {
            total += (p.cardinality()? as f64).log10();
        }
        Some(total)
    }

    /// Project an arbitrary real point onto the nearest valid configuration:
    /// first repair dependent-variable constraints in the continuous
    /// embedding, then snap every coordinate to its lattice.
    pub fn project(&self, coords: &[f64]) -> Configuration {
        debug_assert_eq!(coords.len(), self.dims());
        let mut repaired = coords.to_vec();
        self.repair(&mut repaired);
        let values = self
            .params
            .iter()
            .zip(repaired.iter())
            .map(|(p, &c)| p.project(c))
            .collect();
        Configuration {
            names: self.params.iter().map(|p| p.name().to_string()).collect(),
            values,
        }
    }

    /// Apply every constraint's repair step to a continuous point, in order.
    pub fn repair(&self, coords: &mut [f64]) {
        for c in &self.constraints {
            c.repair(self, coords);
        }
        // Keep coordinates inside the box after constraint repair.
        for (p, c) in self.params.iter().zip(coords.iter_mut()) {
            *c = c.clamp(p.embed_min(), p.embed_max());
        }
    }

    /// True if a configuration satisfies all constraints (box bounds are
    /// guaranteed by construction).
    pub fn is_valid(&self, cfg: &Configuration) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(self, cfg))
    }

    /// Embed a configuration back into continuous coordinates.
    pub fn embed(&self, cfg: &Configuration) -> Result<Vec<f64>> {
        if cfg.len() != self.dims() {
            return Err(HarmonyError::Protocol(format!(
                "configuration has {} values, space has {} dims",
                cfg.len(),
                self.dims()
            )));
        }
        self.params
            .iter()
            .zip(cfg.values())
            .map(|(p, v)| p.embed(v))
            .collect()
    }

    /// A uniformly random continuous point inside the box (pre-repair).
    pub fn sample_coords<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| {
                let (lo, hi) = (p.embed_min(), p.embed_max());
                if lo == hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            })
            .collect()
    }

    /// A random valid configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        let coords = self.sample_coords(rng);
        self.project(&coords)
    }

    /// The centre of the box, projected (a reasonable default start).
    pub fn center(&self) -> Configuration {
        let coords: Vec<f64> = self
            .params
            .iter()
            .map(|p| 0.5 * (p.embed_min() + p.embed_max()))
            .collect();
        self.project(&coords)
    }

    /// Build the configuration given by explicit values, validating types.
    pub fn configuration(&self, values: Vec<ParamValue>) -> Result<Configuration> {
        if values.len() != self.dims() {
            return Err(HarmonyError::Protocol(format!(
                "expected {} values, got {}",
                self.dims(),
                values.len()
            )));
        }
        for (p, v) in self.params.iter().zip(values.iter()) {
            p.embed(v)?; // type/domain check
        }
        Ok(Configuration {
            names: self.params.iter().map(|p| p.name().to_string()).collect(),
            values,
        })
    }

    /// Build a configuration from `(name, string)` pairs, e.g. parsed from a
    /// namelist-style file; missing parameters default to the space centre.
    ///
    /// The result is checked against the space's constraints: a point that
    /// parses cleanly but lies outside the feasible region is an error, not
    /// a silently-invalid configuration.
    pub fn configuration_from_strs<'a, I>(&self, pairs: I) -> Result<Configuration>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut cfg = self.center();
        for (name, raw) in pairs {
            let idx = self
                .index_of(name)
                .ok_or_else(|| HarmonyError::UnknownParam(name.to_string()))?;
            let value = self.params[idx].value_from_str(raw)?;
            cfg.values[idx] = value;
        }
        if !self.is_valid(&cfg) {
            return Err(HarmonyError::ConstraintViolated(format!(
                "configuration {cfg} fails the space's constraints"
            )));
        }
        Ok(cfg)
    }

    /// Compile this space for large-scale enumeration (constraint
    /// propagation + lazy valid-point iteration). See
    /// [`CompiledSpace`](crate::space_compile::CompiledSpace).
    pub fn compile(&self) -> Result<crate::space_compile::CompiledSpace> {
        crate::space_compile::CompiledSpace::compile(self)
    }
}

/// Incremental builder for [`SearchSpace`].
#[derive(Default)]
pub struct SearchSpaceBuilder {
    params: Vec<Param>,
    constraints: Vec<Arc<dyn Constraint>>,
}

impl SearchSpaceBuilder {
    /// Add an integer parameter.
    pub fn int(mut self, name: impl Into<String>, min: i64, max: i64, step: i64) -> Self {
        self.params.push(Param::int(name, min, max, step));
        self
    }

    /// Add a real parameter.
    pub fn real(mut self, name: impl Into<String>, min: f64, max: f64) -> Self {
        self.params.push(Param::real(name, min, max));
        self
    }

    /// Add a categorical parameter.
    pub fn enumeration<I, S>(mut self, name: impl Into<String>, choices: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.params.push(Param::enumeration(name, choices));
        self
    }

    /// Add a pre-built parameter.
    pub fn param(mut self, p: Param) -> Self {
        self.params.push(p);
        self
    }

    /// Attach a dependent-variable constraint.
    pub fn constraint(mut self, c: impl Constraint + 'static) -> Self {
        self.constraints.push(Arc::new(c));
        self
    }

    /// Finalise, validating every parameter and name uniqueness.
    pub fn build(self) -> Result<SearchSpace> {
        if self.params.is_empty() {
            return Err(HarmonyError::EmptySpace);
        }
        for (i, p) in self.params.iter().enumerate() {
            p.validate()?;
            if self.params[..i].iter().any(|q| q.name() == p.name()) {
                return Err(HarmonyError::DuplicateParam(p.name().to_string()));
            }
        }
        let space = SearchSpace {
            params: self.params,
            constraints: self.constraints,
        };
        for c in &space.constraints {
            c.check_space(&space)?;
        }
        Ok(space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::MonotoneChain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space2d() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 10, 1)
            .enumeration("mode", ["a", "b", "c"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_duplicates_and_empty() {
        assert_eq!(
            SearchSpace::builder().build().unwrap_err(),
            HarmonyError::EmptySpace
        );
        let err = SearchSpace::builder()
            .int("x", 0, 1, 1)
            .int("x", 0, 2, 1)
            .build()
            .unwrap_err();
        assert_eq!(err, HarmonyError::DuplicateParam("x".into()));
    }

    #[test]
    fn projection_produces_valid_configuration() {
        let s = space2d();
        let cfg = s.project(&[3.7, 1.2]);
        assert_eq!(cfg.int("x"), Some(4));
        assert_eq!(cfg.choice("mode"), Some("b"));
    }

    #[test]
    fn cardinality_multiplies_dimensions() {
        assert_eq!(space2d().cardinality(), Some(33));
        let log = space2d().log10_cardinality().unwrap();
        assert!((log - 33f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn sample_stays_in_domain() {
        let s = space2d();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let cfg = s.sample(&mut rng);
            let x = cfg.int("x").unwrap();
            assert!((0..=10).contains(&x));
            assert!(cfg.get("mode").unwrap().as_enum_index().unwrap() < 3);
        }
    }

    #[test]
    fn embed_project_roundtrip() {
        let s = space2d();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let cfg = s.sample(&mut rng);
            let coords = s.embed(&cfg).unwrap();
            assert_eq!(s.project(&coords), cfg);
        }
    }

    #[test]
    fn monotone_chain_constraint_is_repaired() {
        let s = SearchSpace::builder()
            .int("b1", 0, 100, 1)
            .int("b2", 0, 100, 1)
            .int("b3", 0, 100, 1)
            .constraint(MonotoneChain::new(["b1", "b2", "b3"]))
            .build()
            .unwrap();
        let cfg = s.project(&[80.0, 20.0, 50.0]);
        let (b1, b2, b3) = (
            cfg.int("b1").unwrap(),
            cfg.int("b2").unwrap(),
            cfg.int("b3").unwrap(),
        );
        assert!(b1 <= b2 && b2 <= b3, "{b1} {b2} {b3}");
        assert!(s.is_valid(&cfg));
    }

    #[test]
    fn configuration_from_strs_overrides_named() {
        let s = space2d();
        let cfg = s
            .configuration_from_strs([("mode", "c"), ("x", "9")])
            .unwrap();
        assert_eq!(cfg.int("x"), Some(9));
        assert_eq!(cfg.choice("mode"), Some("c"));
        assert!(s.configuration_from_strs([("bogus", "1")]).is_err());
    }

    #[test]
    fn configuration_from_strs_rejects_constraint_violations() {
        let s = SearchSpace::builder()
            .int("b1", 0, 100, 1)
            .int("b2", 0, 100, 1)
            .constraint(MonotoneChain::new(["b1", "b2"]))
            .build()
            .unwrap();
        let ok = s
            .configuration_from_strs([("b1", "10"), ("b2", "20")])
            .unwrap();
        assert!(s.is_valid(&ok));
        let err = s
            .configuration_from_strs([("b1", "90"), ("b2", "20")])
            .unwrap_err();
        assert!(
            matches!(err, HarmonyError::ConstraintViolated(_)),
            "{err:?}"
        );
    }

    #[test]
    fn configuration_set_and_display() {
        let s = space2d();
        let mut cfg = s.center();
        cfg.set("x", ParamValue::Int(2)).unwrap();
        assert!(cfg.set("nope", ParamValue::Int(1)).is_err());
        let shown = cfg.to_string();
        assert!(shown.contains("x=2"));
    }

    #[test]
    fn cache_key_distinguishes_configs() {
        let s = space2d();
        assert_ne!(
            s.project(&[1.0, 0.0]).cache_key(),
            s.project(&[1.0, 1.0]).cache_key()
        );
        assert_eq!(
            s.project(&[1.2, 0.1]).cache_key(),
            s.project(&[0.8, 0.4]).cache_key()
        );
    }
}

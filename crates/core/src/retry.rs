//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! On the machines the paper targets, clients lose connections mid-iteration
//! and servers refuse connects while under load. [`RetryPolicy`] is the one
//! knob set shared by every transport: how many attempts, how the delay
//! grows, and how much seeded jitter decorrelates a fleet of clients that
//! all saw the same failure at the same instant.

use crate::error::{HarmonyError, Result};
use crate::seeded::{splitmix64, unit_f64};
use crate::telemetry::{Counter, Latency, Telemetry};
use std::time::Duration;

/// Backoff schedule for retryable transport errors.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retrying.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Growth factor per retry (2.0 = classic doubling).
    pub multiplier: f64,
    /// Fraction of the delay randomised away, in `[0, 1]`: the actual sleep
    /// is drawn from `[delay * (1 - jitter), delay]`.
    pub jitter: f64,
    /// Seed for the jitter sequence, so two clients with different seeds
    /// never thundering-herd in lockstep while a given client stays
    /// reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// A policy with `max_attempts` tries and its jitter sequence seeded.
    pub fn with_seed(max_attempts: u32, seed: u64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            seed,
            ..Default::default()
        }
    }

    /// The sleep before retry number `retry` (0-based: the delay after the
    /// first failed attempt is `delay(0)`). Exponential growth capped at
    /// `max_delay`, with the jitter fraction carved off deterministically
    /// from `(seed, retry)`.
    pub fn delay(&self, retry: u32) -> Duration {
        let exp = self.multiplier.max(1.0).powi(retry.min(63) as i32);
        let raw = self.base_delay.as_secs_f64() * exp;
        let capped = raw.min(self.max_delay.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        let u = unit_f64(splitmix64(self.seed ^ ((retry as u64) << 32 | 0xA5A5)));
        let scale = 1.0 - jitter * u;
        Duration::from_secs_f64((capped * scale).max(0.0))
    }

    /// Run `op` until it succeeds, exhausts `max_attempts`, or fails with a
    /// fatal error. Sleeps `delay(i)` between attempts. Returns the last
    /// error on exhaustion.
    pub fn run<T, F>(&self, op: F) -> Result<T>
    where
        F: FnMut() -> Result<T>,
    {
        self.run_observed(&Telemetry::disabled(), op)
    }

    /// [`run`](Self::run), with each backoff sleep recorded on `telemetry`
    /// (a [`Counter::RetryBackoffs`] tick and a
    /// [`Latency::RetryBackoffSleep`] observation per sleep).
    pub fn run_observed<T, F>(&self, telemetry: &Telemetry, mut op: F) -> Result<T>
    where
        F: FnMut() -> Result<T>,
    {
        let attempts = self.max_attempts.max(1);
        let mut last = HarmonyError::Disconnected;
        for attempt in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    let sleep = self.delay(attempt);
                    telemetry.inc(Counter::RetryBackoffs);
                    telemetry.observe(Latency::RetryBackoffSleep, sleep);
                    std::thread::sleep(sleep);
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            multiplier: 2.0,
            jitter: 0.0,
            seed: 0,
        };
        assert_eq!(p.delay(0), Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(40));
        assert_eq!(p.delay(5), Duration::from_millis(100)); // capped
        assert_eq!(p.delay(20), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..Default::default()
        };
        let q = p.clone();
        for retry in 0..6 {
            let a = p.delay(retry);
            let b = q.delay(retry);
            assert_eq!(a, b, "same seed must give same jitter");
            let nominal = p.base_delay.as_secs_f64()
                * p.multiplier
                    .powi(retry as i32)
                    .min(p.max_delay.as_secs_f64() / p.base_delay.as_secs_f64());
            assert!(a.as_secs_f64() <= nominal + 1e-12);
            assert!(a.as_secs_f64() >= nominal * 0.5 - 1e-12);
        }
        let other = RetryPolicy {
            seed: 99,
            ..p.clone()
        };
        assert_ne!(other.delay(0), p.delay(0), "different seeds should differ");
    }

    #[test]
    fn run_retries_retryable_then_succeeds() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..Default::default()
        };
        let mut calls = 0;
        let out: Result<u32> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(HarmonyError::Disconnected)
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 3);
    }

    #[test]
    fn quota_exceeded_is_retried_like_server_busy() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            ..Default::default()
        };
        let mut calls = 0;
        let out: Result<u32> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(HarmonyError::QuotaExceeded { tenant: "t".into() })
            } else {
                Ok(1)
            }
        });
        assert_eq!(out.unwrap(), 1);
        assert_eq!(calls, 3, "quota refusals back off and retry");
    }

    #[test]
    fn run_stops_on_fatal_error() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<()> = p.run(|| {
            calls += 1;
            Err(HarmonyError::Protocol("nope".into()))
        });
        assert!(matches!(out, Err(HarmonyError::Protocol(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn run_exhausts_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            ..Default::default()
        };
        let mut calls = 0;
        let out: Result<()> = p.run(|| {
            calls += 1;
            Err(HarmonyError::Timeout("read".into()))
        });
        assert!(matches!(out, Err(HarmonyError::Timeout(_))));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_observed_records_each_backoff() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            ..Default::default()
        };
        let t = Telemetry::enabled();
        let _: Result<()> = p.run_observed(&t, || Err(HarmonyError::Disconnected));
        // Three attempts means two inter-attempt sleeps.
        assert_eq!(t.counter(Counter::RetryBackoffs), 2);
    }

    #[test]
    fn none_never_retries() {
        let p = RetryPolicy::none();
        let mut calls = 0;
        let _: Result<()> = p.run(|| {
            calls += 1;
            Err(HarmonyError::Disconnected)
        });
        assert_eq!(calls, 1);
    }
}

//! In-process on-line tuning.
//!
//! For a long-running application in the same process as the tuner there is
//! no need for the message-passing [server](crate::server); [`OnlineTuner`]
//! wraps a [`TuningSession`] behind the same fetch/report discipline the
//! paper's API exposes: the application calls [`OnlineTuner::fetch`] at the
//! points where a parameter change is safe, runs an interval, and
//! [`OnlineTuner::report`]s the observed performance. Once the session
//! stops, `fetch` keeps returning the best configuration found so the
//! application simply continues running tuned.

use crate::session::{SessionOptions, Trial, TuningSession};
use crate::space::{Configuration, SearchSpace};
use crate::strategy::SearchStrategy;

/// Fetch/report wrapper around a tuning session for on-line use.
pub struct OnlineTuner {
    session: TuningSession,
    outstanding: Option<Trial>,
    settled: Option<Configuration>,
}

impl OnlineTuner {
    /// Create an on-line tuner.
    pub fn new(
        space: SearchSpace,
        strategy: Box<dyn SearchStrategy>,
        opts: SessionOptions,
    ) -> Self {
        OnlineTuner {
            session: TuningSession::new(space, strategy, opts),
            outstanding: None,
            settled: None,
        }
    }

    /// Pre-load a known measurement (typically the default configuration).
    pub fn preload(&mut self, config: &Configuration, cost: f64) {
        self.session.preload(config, cost);
    }

    /// The configuration to use for the next interval. Identical between
    /// reports; after the session stops it is the best found.
    pub fn fetch(&mut self) -> Configuration {
        if let Some(cfg) = &self.settled {
            return cfg.clone();
        }
        if let Some(t) = &self.outstanding {
            return t.config.clone();
        }
        match self.session.suggest() {
            Some(trial) => {
                let cfg = trial.config.clone();
                self.outstanding = Some(trial);
                cfg
            }
            None => {
                let best = self
                    .session
                    .best()
                    .map(|(c, _)| c.clone())
                    .unwrap_or_else(|| self.session.space().center());
                self.settled = Some(best.clone());
                best
            }
        }
    }

    /// Report the performance observed for the last fetched configuration.
    /// Reports arriving after the session settled are ignored (the
    /// application may keep reporting unconditionally).
    pub fn report(&mut self, cost: f64) {
        if let Some(trial) = self.outstanding.take() {
            let _ = self.session.report(trial, cost);
        }
    }

    /// True once tuning has stopped and the configuration is frozen.
    pub fn settled(&self) -> bool {
        self.settled.is_some()
    }

    /// Best `(configuration, cost)` so far.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.session.best()
    }

    /// The underlying session (history, stop reason, …).
    pub fn session(&self) -> &TuningSession {
        &self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::NelderMead;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("readahead", 1, 256, 1)
            .build()
            .unwrap()
    }

    /// Simulated application whose per-interval time depends on a tunable
    /// read-ahead buffer (the paper's §II example of an online tunable).
    fn interval_time(readahead: i64) -> f64 {
        let r = readahead as f64;
        2.0 + (r - 96.0).powi(2) / 512.0
    }

    #[test]
    fn online_loop_converges_then_settles() {
        let mut tuner = OnlineTuner::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 60,
                seed: 31,
                ..Default::default()
            },
        );
        let mut intervals = 0;
        while !tuner.settled() {
            let cfg = tuner.fetch();
            let t = interval_time(cfg.int("readahead").unwrap());
            tuner.report(t);
            intervals += 1;
            assert!(intervals < 10_000, "online loop failed to settle");
        }
        let (best, cost) = tuner.best().unwrap();
        assert!(cost <= 2.6, "cost={cost} best={best}");
        // After settling, fetch is stable and reports are ignored.
        let frozen = tuner.fetch();
        tuner.report(9999.0);
        assert_eq!(tuner.fetch(), frozen);
    }

    #[test]
    fn fetch_is_stable_between_reports() {
        let mut tuner = OnlineTuner::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 10,
                seed: 32,
                ..Default::default()
            },
        );
        let a = tuner.fetch();
        let b = tuner.fetch();
        assert_eq!(a, b);
        tuner.report(1.0);
        // New trial may differ now.
        let _ = tuner.fetch();
    }

    #[test]
    fn preload_biases_best() {
        let sp = space();
        let good = sp.project(&[96.0]);
        let mut tuner = OnlineTuner::new(
            sp,
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 5,
                seed: 33,
                ..Default::default()
            },
        );
        tuner.preload(&good, 0.001);
        while !tuner.settled() {
            let cfg = tuner.fetch();
            tuner.report(interval_time(cfg.int("readahead").unwrap()));
        }
        assert_eq!(tuner.best().unwrap().1, 0.001);
    }
}

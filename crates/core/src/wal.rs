//! Crash-safe tuning sessions: a write-ahead log for search state.
//!
//! A tuning run on a big machine can outlive its driver process — the batch
//! scheduler kills it, a node reboots, the experiment script is ^C'd. The
//! paper's tuning runs are *expensive* (each evaluation is a short run of
//! GS2 or POP), so losing the search history means re-paying for every
//! evaluation already made. [`WalSession`] wraps a [`TuningSession`] so the
//! whole search can be resumed bit-identically after a crash.
//!
//! # Log format
//!
//! The log is JSON lines. Line 1 is a [`WalHeader`] — everything needed to
//! rebuild the session object: parameter declarations, monotone chains, the
//! [`StrategyKind`] and [`SessionOptions`]. Each following line is one
//! evaluation record:
//!
//! ```text
//! {"iteration":7,"cost_bits":4634204016564240384,"wall_bits":0}
//! ```
//!
//! Costs are stored as the `u64` bit patterns of their `f64` values —
//! replayed costs are *exactly* the measured ones, with no decimal
//! round-trip involved.
//!
//! # Why replay works
//!
//! Every stochastic choice in a session derives from `options.seed`, and
//! strategies only see costs in flush order — so a session rebuilt from the
//! header and fed the logged `(iteration, cost)` pairs in logged order
//! proposes exactly the configurations of the original run. The log
//! therefore never stores configurations, only iteration tokens: resume
//! re-*suggests* deterministically and matches records to proposals by
//! token.
//!
//! # Crash safety
//!
//! A record is appended, flushed and fsync'd *before* the report is applied
//! to the in-memory session (log-first). A crash between the two leaves a
//! logged-but-unapplied record, which replay applies — identical outcome. A
//! crash mid-append leaves a torn final line, which replay drops: the
//! evaluation is simply re-measured, and because costs are deterministic
//! functions of the configuration the resumed trajectory is still
//! bit-identical. A parse error anywhere *before* the final line is real
//! corruption and surfaces as [`HarmonyError::WalCorrupt`].

use crate::constraint::MonotoneChain;
use crate::error::{HarmonyError, Result};
use crate::param::Param;
use crate::server::protocol::StrategyKind;
use crate::session::{SessionOptions, Trial, TuningResult, TuningSession};
use crate::space::SearchSpace;
use crate::telemetry::{Counter, Latency, SpanKind, Telemetry, TrialStage};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Current log format version (line 1 of every log).
pub const WAL_VERSION: u32 = 1;

/// Everything needed to rebuild a tuning session from scratch: the first
/// line of every write-ahead log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalHeader {
    /// Log format version ([`WAL_VERSION`]).
    pub version: u32,
    /// Application label (informational; carried into results).
    pub app: String,
    /// Tunable parameter declarations, in declaration order.
    pub params: Vec<Param>,
    /// Monotone-chain constraints (each a list of parameter names).
    pub chains: Vec<Vec<String>>,
    /// Which tuning algorithm runs the search.
    pub strategy: StrategyKind,
    /// Stopping criteria and the seed every stochastic choice derives from.
    pub options: SessionOptions,
}

impl WalHeader {
    /// Convenience constructor stamping the current [`WAL_VERSION`].
    pub fn new(
        app: impl Into<String>,
        params: Vec<Param>,
        chains: Vec<Vec<String>>,
        strategy: StrategyKind,
        options: SessionOptions,
    ) -> Self {
        WalHeader {
            version: WAL_VERSION,
            app: app.into(),
            params,
            chains,
            strategy,
            options,
        }
    }

    /// Rebuild the session this header describes. Called at create time and
    /// again at resume time, so both paths construct identical state.
    pub fn build_session(&self) -> Result<TuningSession> {
        let mut builder = SearchSpace::builder();
        for p in &self.params {
            builder = builder.param(p.clone());
        }
        for chain in &self.chains {
            builder = builder.constraint(MonotoneChain::new(chain.clone()));
        }
        let space = builder.build()?;
        Ok(TuningSession::new(
            space,
            self.strategy.build(),
            self.options.clone(),
        ))
    }
}

/// One logged evaluation. Costs are `f64::to_bits` so replay feeds back the
/// exact measured values.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EvalRecord {
    iteration: usize,
    cost_bits: u64,
    wall_bits: u64,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> HarmonyError {
    HarmonyError::Io(format!("{what} {}: {e}", path.display()))
}

/// A [`TuningSession`] whose evaluations are logged to disk before they are
/// applied, so the search survives a `SIGKILL` and resumes bit-identically.
///
/// ```
/// use ah_core::prelude::*;
///
/// let dir = std::env::temp_dir().join(format!("wal-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("session.wal");
/// let header = WalHeader::new(
///     "demo",
///     vec![Param::int("x", 0, 60, 1)],
///     vec![],
///     StrategyKind::NelderMead,
///     SessionOptions { max_evaluations: 40, seed: 3, ..Default::default() },
/// );
/// // First run: crashes (here: stops) after a few evaluations.
/// let (mut wal, _) = WalSession::open_or_create(&path, &header).unwrap();
/// for _ in 0..5 {
///     let t = wal.suggest().unwrap().unwrap();
///     let cost = (t.config.int("x").unwrap() - 42).abs() as f64;
///     wal.report(t, cost).unwrap();
/// }
/// drop(wal);
/// // Resume: the 5 logged evaluations replay, the search continues.
/// let (mut wal, outstanding) = WalSession::open_or_create(&path, &header).unwrap();
/// assert_eq!(wal.replayed(), 5);
/// assert!(outstanding.is_empty());
/// while let Some(t) = wal.suggest().unwrap() {
///     let cost = (t.config.int("x").unwrap() - 42).abs() as f64;
///     wal.report(t, cost).unwrap();
/// }
/// assert_eq!(wal.result().best_config.int("x"), Some(42));
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct WalSession {
    path: PathBuf,
    file: File,
    session: TuningSession,
    replayed: usize,
    telemetry: Telemetry,
}

impl std::fmt::Debug for WalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalSession")
            .field("path", &self.path)
            .field("replayed", &self.replayed)
            .finish_non_exhaustive()
    }
}

impl WalSession {
    /// Start a fresh logged session at `path` (truncating any existing
    /// file) and write the header line.
    pub fn create(path: impl AsRef<Path>, header: &WalHeader) -> Result<Self> {
        Self::create_with(path, header, Telemetry::disabled())
    }

    /// [`create`](Self::create), recording WAL appends and session
    /// lifecycle events on `telemetry`.
    pub fn create_with(
        path: impl AsRef<Path>,
        header: &WalHeader,
        telemetry: Telemetry,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut session = header.build_session()?;
        session.set_telemetry(telemetry.clone());
        let mut file = File::create(&path).map_err(|e| io_err("create", &path, e))?;
        let mut line =
            serde_json::to_string(header).map_err(|e| HarmonyError::Io(e.to_string()))?;
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_data())
            .map_err(|e| io_err("write header to", &path, e))?;
        Ok(WalSession {
            path,
            file,
            session,
            replayed: 0,
            telemetry,
        })
    }

    /// Reopen an interrupted session from its log.
    ///
    /// Rebuilds the session from the header and replays every logged
    /// evaluation; the search ends up in exactly the state of the crashed
    /// run. Returns the resumed session and any *outstanding* trials —
    /// proposals the original run had issued whose results were logged
    /// out of order around the crash (a partially measured PRO round, for
    /// instance). The caller must measure and [`report`](Self::report)
    /// those before asking for fresh suggestions.
    pub fn resume(path: impl AsRef<Path>) -> Result<(Self, Vec<Trial>)> {
        Self::resume_with(path, Telemetry::disabled())
    }

    /// [`resume`](Self::resume), recording each replayed evaluation (a
    /// [`TrialStage::Replayed`] event with cause `wal`), any truncated torn
    /// tail, and the resumed session's lifecycle on `telemetry`.
    pub fn resume_with(path: impl AsRef<Path>, telemetry: Telemetry) -> Result<(Self, Vec<Trial>)> {
        let path = path.as_ref().to_path_buf();
        let blob = std::fs::read_to_string(&path).map_err(|e| io_err("read", &path, e))?;

        // Single pass over the log, tracking byte offsets: `good_end` is
        // the offset just past the last chunk that parsed, so a torn final
        // line (crash mid-append) can be truncated away — not merely
        // skipped. Skipping without truncating was a bug: the next append
        // glued onto the torn partial line and a *second* resume died with
        // WalCorrupt in the middle of the log.
        let mut header: Option<WalHeader> = None;
        let mut records: Vec<EvalRecord> = Vec::new();
        // A record that failed to parse, held until we know whether any
        // later non-empty line follows it (torn tail vs. real corruption).
        let mut pending_bad: Option<(usize, String)> = None;
        let mut good_end = 0usize;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        for chunk in blob.split_inclusive('\n') {
            line_no += 1;
            offset += chunk.len();
            let line = chunk.trim_end();
            if line_no == 1 {
                let h: WalHeader = serde_json::from_str(line).map_err(|e| {
                    HarmonyError::WalCorrupt(format!("{}: bad header: {e}", path.display()))
                })?;
                if h.version != WAL_VERSION {
                    return Err(HarmonyError::WalCorrupt(format!(
                        "{}: log version {} (this build reads {WAL_VERSION})",
                        path.display(),
                        h.version
                    )));
                }
                header = Some(h);
                good_end = offset;
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if let Some((bad_line, e)) = pending_bad.take() {
                // The unreadable line has readable lines after it: that is
                // corruption in the middle of the log, not a torn tail.
                return Err(HarmonyError::WalCorrupt(format!(
                    "{}: unreadable record at line {bad_line}: {e}",
                    path.display()
                )));
            }
            match serde_json::from_str::<EvalRecord>(line) {
                Ok(r) => {
                    records.push(r);
                    good_end = offset;
                }
                Err(e) => pending_bad = Some((line_no, e.to_string())),
            }
        }
        let header = header.ok_or_else(|| {
            HarmonyError::WalCorrupt(format!("{}: empty log has no header", path.display()))
        })?;
        let torn = pending_bad.is_some();
        let mut session = header.build_session()?;

        // Replay: re-suggest deterministically, matching records to
        // proposals by iteration token. Records can reference tokens out of
        // proposal order (a batch round reported out of order), so issued-
        // but-not-yet-consumed proposals stage in a map. The session gets
        // its telemetry only *after* replay: a replayed evaluation shows up
        // as one Replayed event, not a fake Proposed/Measured/Reported run.
        let mut staged: HashMap<usize, Trial> = HashMap::new();
        let mut applied = 0usize;
        for rec in &records {
            while !staged.contains_key(&rec.iteration) {
                let batch = session.suggest_batch(1);
                if batch.is_empty() {
                    return Err(HarmonyError::WalCorrupt(format!(
                        "{}: logged evaluation {} was never proposed on replay \
                         (log does not match this build's search trajectory)",
                        path.display(),
                        rec.iteration
                    )));
                }
                for t in batch {
                    staged.insert(t.iteration, t);
                }
            }
            let trial = staged.remove(&rec.iteration).expect("staged above");
            session.report_timed(
                trial,
                f64::from_bits(rec.cost_bits),
                f64::from_bits(rec.wall_bits),
            )?;
            telemetry.inc(Counter::WalReplayed);
            telemetry.event(TrialStage::Replayed, rec.iteration, 0, Some("wal"));
            applied += 1;
        }
        session.set_telemetry(telemetry.clone());
        let mut outstanding: Vec<Trial> = staged.into_values().collect();
        outstanding.sort_by_key(|t| t.iteration);

        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("reopen", &path, e))?;
        if good_end < blob.len() {
            // Drop the torn bytes from disk so the next append starts a
            // fresh line instead of gluing onto the partial record.
            file.set_len(good_end as u64)
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err("truncate torn tail of", &path, e))?;
            if torn {
                telemetry.inc(Counter::WalTornTails);
            }
        }
        Ok((
            WalSession {
                path,
                file,
                session,
                replayed: applied,
                telemetry,
            },
            outstanding,
        ))
    }

    /// [`resume`](Self::resume) if a log already exists at `path`,
    /// otherwise [`create`](Self::create) a fresh one — the call shape for
    /// a driver whose `--resume` flag should also tolerate a first run.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        header: &WalHeader,
    ) -> Result<(Self, Vec<Trial>)> {
        Self::open_or_create_with(path, header, Telemetry::disabled())
    }

    /// [`open_or_create`](Self::open_or_create) with a telemetry handle
    /// threaded into whichever path is taken.
    pub fn open_or_create_with(
        path: impl AsRef<Path>,
        header: &WalHeader,
        telemetry: Telemetry,
    ) -> Result<(Self, Vec<Trial>)> {
        let p = path.as_ref();
        match std::fs::metadata(p) {
            Ok(m) if m.len() > 0 => Self::resume_with(p, telemetry),
            _ => Ok((Self::create_with(p, header, telemetry)?, Vec::new())),
        }
    }

    /// Next configuration to measure, or `Ok(None)` once the session
    /// stopped. (Unlike [`TuningSession::suggest`], safe to call with
    /// outstanding resumed trials still unreported.)
    pub fn suggest(&mut self) -> Result<Option<Trial>> {
        Ok(self.session.suggest_batch(1).pop())
    }

    /// Up to `max` configurations to measure concurrently (a PRO round).
    pub fn suggest_batch(&mut self, max: usize) -> Vec<Trial> {
        self.session.suggest_batch(max)
    }

    /// Report a measured cost whose measurement wall time equals the cost.
    pub fn report(&mut self, trial: Trial, cost: f64) -> Result<()> {
        self.report_timed(trial, cost, cost)
    }

    /// Log the result (append + flush + fsync), *then* apply it to the
    /// session. The log-first order is what makes a crash between the two
    /// harmless: replay applies the logged record and lands in the same
    /// state.
    pub fn report_timed(&mut self, trial: Trial, cost: f64, wall_time: f64) -> Result<()> {
        let rec = EvalRecord {
            iteration: trial.iteration,
            cost_bits: cost.to_bits(),
            wall_bits: wall_time.to_bits(),
        };
        let mut line = serde_json::to_string(&rec).map_err(|e| HarmonyError::Io(e.to_string()))?;
        line.push('\n');
        let started = Instant::now();
        let span = self
            .telemetry
            .span_begin(SpanKind::WalAppend, trial.iteration, "wal", 0);
        let wrote = self
            .file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data());
        if wrote.is_err() {
            self.telemetry.span_fault(span, "io_error");
        } else {
            self.telemetry.span_end(span);
        }
        wrote.map_err(|e| io_err("append to", &self.path, e))?;
        self.telemetry
            .observe(Latency::WalAppendFsync, started.elapsed());
        self.telemetry.inc(Counter::WalAppends);
        self.session.report_timed(trial, cost, wall_time)
    }

    /// Number of evaluations replayed from the log when this session was
    /// resumed (0 for a fresh session).
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// The wrapped session, for history/best/stop-reason inspection.
    pub fn session(&self) -> &TuningSession {
        &self.session
    }

    /// Final tuning result (best configuration, trajectory summary).
    pub fn result(&self) -> TuningResult {
        self.session.result()
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ah-wal-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    fn header(strategy: StrategyKind, max_evaluations: usize, seed: u64) -> WalHeader {
        WalHeader::new(
            "wal-test",
            vec![Param::int("x", 0, 100, 1), Param::int("y", 0, 100, 1)],
            vec![],
            strategy,
            SessionOptions {
                max_evaluations,
                seed,
                ..Default::default()
            },
        )
    }

    fn cost_of(t: &Trial) -> f64 {
        let x = t.config.int("x").unwrap() as f64;
        let y = t.config.int("y").unwrap() as f64;
        (x - 31.0).powi(2) + (y - 64.0).powi(2)
    }

    fn history_json(s: &TuningSession) -> String {
        serde_json::to_string(s.history()).unwrap()
    }

    /// Drive a fresh (non-logged) session to completion: the ground truth.
    fn baseline(h: &WalHeader) -> String {
        let mut s = h.build_session().unwrap();
        while let Some(t) = s.suggest_batch(1).pop() {
            let c = cost_of(&t);
            s.report_timed(t, c, c).unwrap();
        }
        history_json(&s)
    }

    #[test]
    fn full_run_resumes_to_identical_history() {
        for strategy in [
            StrategyKind::NelderMead,
            StrategyKind::Random,
            StrategyKind::Pro,
        ] {
            let h = header(strategy.clone(), 50, 11);
            let path = temp_path(&format!("full-{strategy:?}"));
            let mut wal = WalSession::create(&path, &h).unwrap();
            while let Some(t) = wal.suggest().unwrap() {
                let c = cost_of(&t);
                wal.report(t, c).unwrap();
            }
            let first = history_json(wal.session());
            drop(wal);
            let (resumed, outstanding) = WalSession::resume(&path).unwrap();
            assert!(outstanding.is_empty());
            assert_eq!(history_json(resumed.session()), first, "{strategy:?}");
            assert_eq!(first, baseline(&h), "{strategy:?} vs unlogged baseline");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn interrupted_run_resumes_bit_identically() {
        let h = header(StrategyKind::NelderMead, 60, 7);
        let want = baseline(&h);
        let path = temp_path("interrupted");
        // "Crash" after 17 evaluations: drop the WalSession without
        // finishing, exactly what a SIGKILL leaves behind on disk.
        let mut wal = WalSession::create(&path, &h).unwrap();
        for _ in 0..17 {
            let t = wal.suggest().unwrap().unwrap();
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        drop(wal);
        let (mut wal, outstanding) = WalSession::resume(&path).unwrap();
        assert_eq!(wal.replayed(), 17);
        for t in outstanding {
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        while let Some(t) = wal.suggest().unwrap() {
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        assert_eq!(history_json(wal.session()), want);
    }

    #[test]
    fn pro_round_interrupted_mid_batch_returns_outstanding() {
        let h = header(StrategyKind::Pro, 40, 5);
        let want = baseline(&h);
        let path = temp_path("pro-mid-round");
        let mut wal = WalSession::create(&path, &h).unwrap();
        // Issue a whole round, report only part of it, out of order.
        let round = wal.suggest_batch(16);
        assert!(round.len() > 2, "expected a multi-candidate PRO round");
        let reported = round.len() / 2;
        let mut rest = Vec::new();
        for (i, t) in round.into_iter().rev().enumerate() {
            if i < reported {
                let c = cost_of(&t);
                wal.report(t, c).unwrap();
            } else {
                rest.push(t);
            }
        }
        let unreported: Vec<usize> = rest.iter().map(|t| t.iteration).collect();
        drop(wal); // crash with half the round in flight
        let (mut wal, outstanding) = WalSession::resume(&path).unwrap();
        assert_eq!(wal.replayed(), reported);
        let mut got: Vec<usize> = outstanding.iter().map(|t| t.iteration).collect();
        let mut expect = unreported.clone();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect, "resume must hand back the unmeasured half");
        for t in outstanding {
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        while let Some(t) = wal.suggest().unwrap() {
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        assert_eq!(history_json(wal.session()), want);
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_redone() {
        let h = header(StrategyKind::Random, 30, 3);
        let want = baseline(&h);
        let path = temp_path("torn");
        let mut wal = WalSession::create(&path, &h).unwrap();
        for _ in 0..9 {
            let t = wal.suggest().unwrap().unwrap();
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        drop(wal);
        // Simulate a crash mid-append: half a record at the end of the file.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"iteration\":10,\"cost_b").unwrap();
        }
        let (mut wal, outstanding) = WalSession::resume(&path).unwrap();
        assert_eq!(wal.replayed(), 9, "torn record must not count");
        for t in outstanding {
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        while let Some(t) = wal.suggest().unwrap() {
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        assert_eq!(history_json(wal.session()), want);
    }

    #[test]
    fn torn_tail_is_truncated_so_a_second_crash_still_resumes() {
        // Regression: resume used to *skip* a torn trailing record but
        // reopen in append mode without truncating, so the next appended
        // record glued onto the torn partial line and a second resume died
        // with WalCorrupt mid-log. Crash → resume → crash → resume must
        // work, and end bit-identical to the unlogged baseline.
        let h = header(StrategyKind::NelderMead, 40, 13);
        let want = baseline(&h);
        let path = temp_path("torn-twice");
        let mut wal = WalSession::create(&path, &h).unwrap();
        for _ in 0..7 {
            let t = wal.suggest().unwrap().unwrap();
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        drop(wal);
        // Iteration 777 can never occur in a 40-evaluation run, so finding
        // these bytes later can only mean the torn tail survived (the real
        // iteration-8 record would alias a torn `"iteration":8` prefix).
        let torn_tail = b"{\"iteration\":777,\"cost_b";
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(torn_tail).unwrap();
        }
        // First resume: drop the torn record, truncate it off disk, and
        // append a few more evaluations.
        let t = Telemetry::enabled();
        let (mut wal, outstanding) = WalSession::resume_with(&path, t.clone()).unwrap();
        assert_eq!(wal.replayed(), 7);
        assert_eq!(t.counter(Counter::WalTornTails), 1);
        assert_eq!(t.counter(Counter::WalReplayed), 7);
        for trial in outstanding {
            let c = cost_of(&trial);
            wal.report(trial, c).unwrap();
        }
        for _ in 0..5 {
            let trial = wal.suggest().unwrap().unwrap();
            let c = cost_of(&trial);
            wal.report(trial, c).unwrap();
        }
        drop(wal);
        // The file must contain no trace of the torn bytes.
        let blob = std::fs::read(&path).unwrap();
        assert!(
            !blob
                .windows(torn_tail.len())
                .any(|w| w == torn_tail.as_slice()),
            "torn partial record still present in the log"
        );
        // Second crash mid-append, second resume: must still parse.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"iteration\":99,\"co").unwrap();
        }
        let (mut wal, outstanding) = WalSession::resume(&path).unwrap();
        for trial in outstanding {
            let c = cost_of(&trial);
            wal.report(trial, c).unwrap();
        }
        while let Some(trial) = wal.suggest().unwrap() {
            let c = cost_of(&trial);
            wal.report(trial, c).unwrap();
        }
        assert_eq!(history_json(wal.session()), want);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let h = header(StrategyKind::Random, 20, 9);
        let path = temp_path("corrupt");
        let mut wal = WalSession::create(&path, &h).unwrap();
        for _ in 0..5 {
            let t = wal.suggest().unwrap().unwrap();
            let c = cost_of(&t);
            wal.report(t, c).unwrap();
        }
        drop(wal);
        let blob = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = blob.lines().collect();
        lines[2] = "garbage in the middle";
        std::fs::write(&path, lines.join("\n")).unwrap();
        match WalSession::resume(&path) {
            Err(HarmonyError::WalCorrupt(msg)) => {
                assert!(msg.contains("line 3"), "{msg}")
            }
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn open_or_create_handles_both_paths() {
        let h = header(StrategyKind::NelderMead, 25, 2);
        let path = temp_path("open-or-create");
        let _ = std::fs::remove_file(&path);
        let (mut wal, outstanding) = WalSession::open_or_create(&path, &h).unwrap();
        assert_eq!(wal.replayed(), 0);
        assert!(outstanding.is_empty());
        let t = wal.suggest().unwrap().unwrap();
        let c = cost_of(&t);
        wal.report(t, c).unwrap();
        drop(wal);
        let (wal, _) = WalSession::open_or_create(&path, &h).unwrap();
        assert_eq!(wal.replayed(), 1);
    }

    #[test]
    fn version_mismatch_is_corruption() {
        let path = temp_path("version");
        let mut h = header(StrategyKind::Random, 10, 1);
        h.version = 99;
        let wal = WalSession::create(&path, &h).unwrap();
        drop(wal);
        assert!(matches!(
            WalSession::resume(&path),
            Err(HarmonyError::WalCorrupt(_))
        ));
    }
}

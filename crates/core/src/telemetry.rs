//! Trial-lifecycle observability: counters, latency histograms, and a
//! bounded event ring.
//!
//! The paper's authors debug their tuning runs by reading per-iteration
//! traces; after the sharded server, fault injection, retry and WAL layers,
//! this codebase needed the same visibility — when a trial is requeued,
//! evicted, retried or replayed, *something* must record why. A
//! [`Telemetry`] handle is that something. It threads through the server
//! ([`ServerConfig`](crate::server::ServerConfig)), the TCP client
//! ([`TcpClientOptions`](crate::server::tcp::TcpClientOptions)), the session,
//! the retry policy and the write-ahead log, and records three kinds of
//! signal:
//!
//! * **Events** — one [`TrialEvent`] per lifecycle transition
//!   (proposed → fetched → measured → reported, plus requeued / evicted /
//!   replayed / faulted with a cause), kept in a bounded ring so a runaway
//!   session cannot exhaust memory.
//! * **Counters** — monotonic totals ([`Counter`]) for the same
//!   transitions plus sanitized costs, stale duplicate reports, retry
//!   backoffs, WAL appends and torn tails.
//! * **Latency histograms** — log2-bucketed microsecond histograms
//!   ([`Latency`]) for shard-queue wait, batch round-trips, backoff sleeps
//!   and WAL append+fsync.
//!
//! # Overhead
//!
//! The handle is an `Option<Arc<Inner>>`. [`Telemetry::disabled`] (the
//! `Default`) is `None`: every record call is one branch on a niche-encoded
//! option and returns — no allocation, no atomics, no locking. Enabled
//! recording is a relaxed atomic add for counters/histograms and a short
//! mutex-protected ring push for events. The `bench-server --check` CI gate
//! runs with telemetry enabled to keep the overhead inside the regression
//! tolerance.
//!
//! # Determinism
//!
//! Everything except timestamps is a pure function of the message sequence:
//! two runs with the same seed and fault plan produce the identical
//! [`Telemetry::lifecycle`] sequence and counter totals (property-tested in
//! `tests/telemetry_determinism.rs`). Timestamps exist for humans reading a
//! trace, and are excluded from `lifecycle()`.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default capacity of the bounded event ring (events beyond it evict the
/// oldest and bump [`Telemetry::dropped_events`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Lifecycle stage of a trial (or member) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TrialStage {
    /// The session emitted a fresh trial to be measured.
    Proposed,
    /// The server handed the trial to a client (fresh, re-fetch, or a
    /// requeued trial claimed by a new owner — the cause tells which).
    Fetched,
    /// A measured cost arrived for the trial.
    Measured,
    /// The trial's cost was flushed into the history (in proposal order).
    Reported,
    /// The trial lost its owner and became claimable again (cause:
    /// `owner_left`, `owner_evicted`, or `trial_deadline`).
    Requeued,
    /// A session member was evicted for missing its liveness TTL.
    Evicted,
    /// The trial's cost was replayed rather than measured (cause:
    /// `cache_hit` for an in-session duplicate, `wal` for log replay).
    Replayed,
    /// A fault-injection plan decided this trial's fate (cause: `crash`,
    /// `lost_report`, or `straggler`).
    Faulted,
}

impl TrialStage {
    /// Stable lowercase name (used in JSON dumps and metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            TrialStage::Proposed => "proposed",
            TrialStage::Fetched => "fetched",
            TrialStage::Measured => "measured",
            TrialStage::Reported => "reported",
            TrialStage::Requeued => "requeued",
            TrialStage::Evicted => "evicted",
            TrialStage::Replayed => "replayed",
            TrialStage::Faulted => "faulted",
        }
    }
}

/// Monotonic counters. Each renders as one Prometheus counter
/// `ah_<name>_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Fresh trials proposed by sessions.
    TrialsProposed,
    /// Trials handed to clients by the server (re-fetches included).
    TrialsFetched,
    /// Measured costs that reached a session.
    TrialsMeasured,
    /// Trials flushed into a history (fresh rows only).
    TrialsReported,
    /// Trials whose owner departed/expired, made claimable again.
    TrialsRequeued,
    /// Session members evicted for missing their liveness TTL.
    MembersEvicted,
    /// Reports for already-applied trials, dropped by the issued-high
    /// watermark.
    StaleReportsDropped,
    /// Duplicate proposals resolved from the in-session cache.
    CacheReplays,
    /// Non-finite costs coerced to `+inf` at the protocol boundary or in
    /// the session flush.
    NonFiniteCostsSanitized,
    /// Backoff sleeps taken by retry loops.
    RetryBackoffs,
    /// Injected worker crashes.
    FaultsCrash,
    /// Injected lost reports.
    FaultsLostReport,
    /// Injected stragglers.
    FaultsStraggler,
    /// Records appended (and fsynced) to a write-ahead log.
    WalAppends,
    /// Evaluations replayed from a write-ahead log on resume.
    WalReplayed,
    /// Torn trailing records truncated away on WAL resume.
    WalTornTails,
    /// Performance-store lookups that found a stored cost.
    StoreHits,
    /// Performance-store lookups that found nothing.
    StoreMisses,
    /// Records appended to a performance store.
    StoreInserts,
    /// Performance-store compactions (gc included).
    StoreCompactions,
    /// Torn trailing records truncated away on store open.
    StoreTornTails,
}

/// Number of [`Counter`] variants (size of the per-handle counter array).
const COUNTER_COUNT: usize = 21;

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::TrialsProposed,
        Counter::TrialsFetched,
        Counter::TrialsMeasured,
        Counter::TrialsReported,
        Counter::TrialsRequeued,
        Counter::MembersEvicted,
        Counter::StaleReportsDropped,
        Counter::CacheReplays,
        Counter::NonFiniteCostsSanitized,
        Counter::RetryBackoffs,
        Counter::FaultsCrash,
        Counter::FaultsLostReport,
        Counter::FaultsStraggler,
        Counter::WalAppends,
        Counter::WalReplayed,
        Counter::WalTornTails,
        Counter::StoreHits,
        Counter::StoreMisses,
        Counter::StoreInserts,
        Counter::StoreCompactions,
        Counter::StoreTornTails,
    ];

    /// Stable snake_case name (the Prometheus metric is
    /// `ah_<name>_total`).
    pub fn name(&self) -> &'static str {
        match self {
            Counter::TrialsProposed => "trials_proposed",
            Counter::TrialsFetched => "trials_fetched",
            Counter::TrialsMeasured => "trials_measured",
            Counter::TrialsReported => "trials_reported",
            Counter::TrialsRequeued => "trials_requeued",
            Counter::MembersEvicted => "members_evicted",
            Counter::StaleReportsDropped => "stale_reports_dropped",
            Counter::CacheReplays => "cache_replays",
            Counter::NonFiniteCostsSanitized => "non_finite_costs_sanitized",
            Counter::RetryBackoffs => "retry_backoffs",
            Counter::FaultsCrash => "faults_crash",
            Counter::FaultsLostReport => "faults_lost_report",
            Counter::FaultsStraggler => "faults_straggler",
            Counter::WalAppends => "wal_appends",
            Counter::WalReplayed => "wal_replayed",
            Counter::WalTornTails => "wal_torn_tails",
            Counter::StoreHits => "store_hits",
            Counter::StoreMisses => "store_misses",
            Counter::StoreInserts => "store_inserts",
            Counter::StoreCompactions => "store_compactions",
            Counter::StoreTornTails => "store_torn_tails",
        }
    }

    fn idx(&self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| c == self)
            .expect("every counter is in ALL")
    }
}

/// Latency histograms. Each renders as one Prometheus histogram
/// `ah_<name>_seconds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Latency {
    /// Time an envelope spent queued before its shard worker picked it up.
    ShardQueueWait,
    /// TCP client `FetchBatch` round-trip.
    FetchBatchRtt,
    /// TCP client `ReportBatch` round-trip.
    ReportBatchRtt,
    /// Sleep taken before a retry attempt.
    RetryBackoffSleep,
    /// WAL record append + flush + fsync.
    WalAppendFsync,
    /// Performance-store index lookup.
    StoreLookup,
    /// Performance-store record append + fsync (observed on syncing
    /// appends only — the store batches its fsyncs).
    StoreAppendFsync,
}

/// Number of [`Latency`] variants (size of the per-handle histogram array).
const LATENCY_COUNT: usize = 7;

/// Log2 bucket count per histogram: upper bounds 1µs, 2µs, … 2^24µs
/// (~16.8s), plus a +Inf overflow bucket.
const HISTO_BUCKETS: usize = 26;

impl Latency {
    /// Every histogram, in rendering order.
    pub const ALL: [Latency; LATENCY_COUNT] = [
        Latency::ShardQueueWait,
        Latency::FetchBatchRtt,
        Latency::ReportBatchRtt,
        Latency::RetryBackoffSleep,
        Latency::WalAppendFsync,
        Latency::StoreLookup,
        Latency::StoreAppendFsync,
    ];

    /// Stable snake_case name (the Prometheus metric is
    /// `ah_<name>_seconds`).
    pub fn name(&self) -> &'static str {
        match self {
            Latency::ShardQueueWait => "shard_queue_wait",
            Latency::FetchBatchRtt => "fetch_batch_rtt",
            Latency::ReportBatchRtt => "report_batch_rtt",
            Latency::RetryBackoffSleep => "retry_backoff_sleep",
            Latency::WalAppendFsync => "wal_append_fsync",
            Latency::StoreLookup => "store_lookup",
            Latency::StoreAppendFsync => "store_append_fsync",
        }
    }

    fn idx(&self) -> usize {
        Latency::ALL
            .iter()
            .position(|l| l == self)
            .expect("every latency is in ALL")
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Serialize)]
pub struct TrialEvent {
    /// Monotonic sequence number (gaps mean ring evictions elsewhere, not
    /// lost ordering).
    pub seq: u64,
    /// Microseconds since the handle was created. Wall-clock flavoured;
    /// excluded from determinism comparisons.
    pub at_us: u64,
    /// The lifecycle transition.
    pub stage: TrialStage,
    /// Iteration token of the trial (0 for member-level events such as
    /// eviction).
    pub iteration: usize,
    /// Client id involved, when known (0 otherwise).
    pub client: u64,
    /// Why the transition happened, for stages with multiple causes.
    pub cause: Option<&'static str>,
}

impl TrialEvent {
    /// The deterministic projection of the event: everything except the
    /// timestamp and client id (which depend on wall clock and allocation
    /// order). Two runs with the same seed and fault plan produce identical
    /// lifecycle sequences.
    pub fn lifecycle(&self) -> (TrialStage, usize, Option<&'static str>) {
        (self.stage, self.iteration, self.cause)
    }
}

/// One log2-bucketed latency histogram (microsecond resolution).
struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histo {
    fn new() -> Self {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = if us <= 1 {
            0
        } else {
            ((64 - (us - 1).leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

struct Inner {
    start: Instant,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    counters: [AtomicU64; COUNTER_COUNT],
    latencies: [Histo; LATENCY_COUNT],
    ring: Mutex<VecDeque<TrialEvent>>,
}

/// A cheap, cloneable recording handle. See the [module docs](self) for
/// what it records and what it costs.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("events", &inner.ring.lock().len())
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish_non_exhaustive(),
        }
    }
}

impl Telemetry {
    /// The no-op handle: every record call is a single branch. This is the
    /// `Default`, so telemetry is pay-for-what-you-enable.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// An enabled handle with the [`DEFAULT_EVENT_CAPACITY`] event ring.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle whose event ring holds at most `capacity` events
    /// (older events are evicted, counted by
    /// [`dropped_events`](Self::dropped_events)).
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry(Some(Arc::new(Inner {
            start: Instant::now(),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            latencies: std::array::from_fn(|_| Histo::new()),
            ring: Mutex::new(VecDeque::new()),
        })))
    }

    /// True when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record a lifecycle event (no-op when disabled).
    pub fn event(
        &self,
        stage: TrialStage,
        iteration: usize,
        client: u64,
        cause: Option<&'static str>,
    ) {
        let Some(inner) = &self.0 else { return };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ev = TrialEvent {
            seq,
            at_us,
            stage,
            iteration,
            client,
            cause,
        };
        let mut ring = inner.ring.lock();
        if ring.len() >= inner.capacity {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Increment a counter by one (no-op when disabled).
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increment a counter by `n` (no-op when disabled).
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.0 {
            inner.counters[counter.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one latency observation (no-op when disabled).
    pub fn observe(&self, latency: Latency, d: Duration) {
        if let Some(inner) = &self.0 {
            inner.latencies[latency.idx()].observe(d);
        }
    }

    /// Current value of one counter (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.0 {
            Some(inner) => inner.counters[counter.idx()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Snapshot of every counter as `(name, value)` pairs, in stable order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|c| (c.name(), self.counter(*c)))
            .collect()
    }

    /// Snapshot of the event ring, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<TrialEvent> {
        match &self.0 {
            Some(inner) => inner.ring.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Deterministic projection of the event ring: the
    /// [`TrialEvent::lifecycle`] of every event, in order.
    pub fn lifecycle(&self) -> Vec<(TrialStage, usize, Option<&'static str>)> {
        self.events().iter().map(TrialEvent::lifecycle).collect()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped_events(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Render every counter and histogram in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP`/`# TYPE` comments, counters as
    /// `ah_<name>_total`, histograms as `ah_<name>_seconds` with cumulative
    /// `_bucket{le=...}` lines plus `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL.iter() {
            let name = c.name();
            out.push_str(&format!(
                "# HELP ah_{name}_total Total {} events.\n# TYPE ah_{name}_total counter\n\
                 ah_{name}_total {}\n",
                name.replace('_', " "),
                self.counter(*c)
            ));
        }
        out.push_str(&format!(
            "# HELP ah_events_dropped_total Events evicted from the bounded ring.\n\
             # TYPE ah_events_dropped_total counter\n\
             ah_events_dropped_total {}\n",
            self.dropped_events()
        ));
        for l in Latency::ALL.iter() {
            let name = l.name();
            out.push_str(&format!(
                "# HELP ah_{name}_seconds Latency of {}.\n# TYPE ah_{name}_seconds histogram\n",
                name.replace('_', " ")
            ));
            let (buckets, sum_us, count) = match &self.0 {
                Some(inner) => {
                    let h = &inner.latencies[l.idx()];
                    (
                        h.buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect::<Vec<u64>>(),
                        h.sum_us.load(Ordering::Relaxed),
                        h.count.load(Ordering::Relaxed),
                    )
                }
                None => (vec![0; HISTO_BUCKETS], 0, 0),
            };
            let mut cumulative = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                cumulative += n;
                let le = if i == HISTO_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    // Upper bound 2^i µs, rendered in seconds.
                    format!("{}", (1u64 << i) as f64 / 1e6)
                };
                out.push_str(&format!(
                    "ah_{name}_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "ah_{name}_seconds_sum {}\nah_{name}_seconds_count {count}\n",
                sum_us as f64 / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.inc(Counter::TrialsProposed);
        t.event(TrialStage::Proposed, 1, 7, None);
        t.observe(Latency::FetchBatchRtt, Duration::from_millis(3));
        assert_eq!(t.counter(Counter::TrialsProposed), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn counters_and_events_accumulate() {
        let t = Telemetry::enabled();
        t.inc(Counter::TrialsProposed);
        t.add(Counter::TrialsProposed, 2);
        t.event(TrialStage::Proposed, 1, 0, None);
        t.event(TrialStage::Requeued, 1, 9, Some("owner_left"));
        assert_eq!(t.counter(Counter::TrialsProposed), 3);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(
            t.lifecycle(),
            vec![
                (TrialStage::Proposed, 1, None),
                (TrialStage::Requeued, 1, Some("owner_left")),
            ]
        );
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Telemetry::with_capacity(4);
        for i in 0..10 {
            t.event(TrialStage::Measured, i, 0, None);
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(t.dropped_events(), 6);
        // The survivors are the newest four, in order.
        let iters: Vec<usize> = events.iter().map(|e| e.iteration).collect();
        assert_eq!(iters, vec![6, 7, 8, 9]);
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let t = Telemetry::enabled();
        t.observe(Latency::WalAppendFsync, Duration::from_micros(1));
        t.observe(Latency::WalAppendFsync, Duration::from_micros(3));
        t.observe(Latency::WalAppendFsync, Duration::from_secs(100)); // overflow
        let text = t.prometheus();
        // 1µs lands in the first bucket (le=1e-6 seconds = 0.000001).
        assert!(
            text.contains("ah_wal_append_fsync_seconds_bucket{le=\"0.000001\"} 1"),
            "{text}"
        );
        // The +Inf bucket is cumulative: all three observations.
        assert!(
            text.contains("ah_wal_append_fsync_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("ah_wal_append_fsync_seconds_count 3"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_text_is_parseable() {
        let t = Telemetry::enabled();
        t.inc(Counter::TrialsReported);
        t.observe(Latency::ShardQueueWait, Duration::from_micros(50));
        for line in t.prometheus().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            // `name{labels} value` or `name value`; the value parses as f64
            // (+Inf bucket labels live inside the braces, not the value).
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        }
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.inc(Counter::WalAppends);
        assert_eq!(t.counter(Counter::WalAppends), 1);
    }
}

//! Information from prior runs (the SC'04 technique referenced in §II/§IV).
//!
//! For very large spaces (the paper's 90,601×90,601 PETSc decomposition has
//! O(10¹⁰⁰) points) a cold-started simplex wastes iterations. The prior-run
//! database remembers good configurations from earlier, related tuning
//! sessions and turns them into (a) an initial simplex seed and (b) a
//! narrowed search range around the historically good region.
//!
//! Since the persistent performance database landed, [`PriorRunDb`] is the
//! in-memory *query layer* over it rather than a storage format of its own:
//! [`PerfStore::priors`](crate::store::PerfStore::priors) /
//! [`priors_for`](crate::store::PerfStore::priors_for) materialize one from
//! the store's live records, and the warm-start surfaces
//! ([`PerfStore::seed_for`](crate::store::PerfStore::seed_for),
//! [`PerfStore::narrowed_space`](crate::store::PerfStore::narrowed_space))
//! delegate through it. Hand-built databases (e.g. from a [`History`]
//! (crate::history::History) via [`PriorRunDb::record_history`]) keep
//! working unchanged.

use crate::space::{Configuration, SearchSpace};
use crate::strategy::StartPoint;
use serde::{Deserialize, Serialize};

/// A remembered `(configuration, cost)` outcome of a prior tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriorRun {
    /// Label of the application/problem the run belongs to.
    pub app: String,
    /// The configuration that was measured.
    pub config: Configuration,
    /// Measured cost.
    pub cost: f64,
}

/// A small database of prior tuning results, queryable by application label.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PriorRunDb {
    runs: Vec<PriorRun>,
}

impl PriorRunDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one run.
    pub fn record(&mut self, app: impl Into<String>, config: Configuration, cost: f64) {
        self.runs.push(PriorRun {
            app: app.into(),
            config,
            cost,
        });
    }

    /// Import every evaluation of a finished session.
    pub fn record_history(&mut self, app: &str, history: &crate::history::History) {
        for e in history.evaluations() {
            if !e.cached {
                self.record(app, e.config.clone(), e.cost);
            }
        }
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The `k` best prior configurations for `app`, best first.
    pub fn best_for(&self, app: &str, k: usize) -> Vec<&PriorRun> {
        let mut matches: Vec<&PriorRun> = self.runs.iter().filter(|r| r.app == app).collect();
        matches.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        matches.truncate(k);
        matches
    }

    /// Build a simplex seed for a *new* space from the best prior runs:
    /// prior configurations are re-embedded by parameter name, values for
    /// parameters absent from the prior run default to the space centre, and
    /// values out of the new range are clamped by projection.
    ///
    /// Returns `StartPoint::Center` when no prior information exists.
    pub fn seed_for(&self, app: &str, space: &SearchSpace) -> StartPoint {
        let best = self.best_for(app, space.dims() + 1);
        if best.is_empty() {
            return StartPoint::Center;
        }
        let center = space
            .embed(&space.center())
            .expect("center embeds into its own space");
        let mut points = Vec::with_capacity(best.len());
        for run in best {
            let mut coords = center.clone();
            for (i, p) in space.params().iter().enumerate() {
                if let Some(v) = run.config.get(p.name()) {
                    if let Ok(c) = p.embed(v) {
                        coords[i] = c;
                    } else {
                        // Out-of-range prior value: clamp into the new box.
                        let approx = match v {
                            crate::value::ParamValue::Int(x) => *x as f64,
                            crate::value::ParamValue::Real(x) => *x,
                            crate::value::ParamValue::Enum { index, .. } => *index as f64,
                        };
                        coords[i] = approx.clamp(p.embed_min(), p.embed_max());
                    }
                }
            }
            space.repair(&mut coords);
            points.push(coords);
        }
        StartPoint::Simplex(points)
    }

    /// Serialize the database to JSON (e.g. to persist tuning knowledge
    /// between sessions, as the SC'04 technique assumes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("prior-run db serializes")
    }

    /// Load a database from JSON.
    pub fn from_json(s: &str) -> crate::error::Result<Self> {
        serde_json::from_str(s)
            .map_err(|e| crate::error::HarmonyError::Protocol(format!("bad prior-run db: {e}")))
    }

    /// Narrow an integer/real space around the prior-good region: for every
    /// parameter seen in prior runs, shrink its range to
    /// `[best−margin·range, best+margin·range]` (categoricals are left
    /// untouched). Returns a new space preserving constraints.
    pub fn narrowed_space(
        &self,
        app: &str,
        space: &SearchSpace,
        margin: f64,
    ) -> crate::error::Result<SearchSpace> {
        let best = self.best_for(app, 1);
        let Some(best) = best.first() else {
            return Ok(space.clone());
        };
        let mut builder = SearchSpace::builder();
        for p in space.params() {
            let narrowed = match (p, best.config.get(p.name())) {
                (
                    crate::param::Param::Int {
                        name,
                        min,
                        max,
                        step,
                    },
                    Some(v),
                ) => {
                    if let Some(b) = v.as_int() {
                        let range = (*max - *min) as f64;
                        let half = (range * margin).max(*step as f64);
                        let lo = ((b as f64 - half).floor() as i64).max(*min);
                        let hi = ((b as f64 + half).ceil() as i64).min(*max);
                        crate::param::Param::int(name.clone(), lo, hi.max(lo), *step)
                    } else {
                        p.clone()
                    }
                }
                (crate::param::Param::Real { name, min, max }, Some(v)) => {
                    if let Some(b) = v.as_real() {
                        let half = (max - min) * margin;
                        crate::param::Param::real(
                            name.clone(),
                            (b - half).max(*min),
                            (b + half).min(*max),
                        )
                    } else {
                        p.clone()
                    }
                }
                _ => p.clone(),
            };
            builder = builder.param(narrowed);
        }
        for c in space.constraints() {
            builder = builder.constraint(ArcConstraint(c.clone()));
        }
        builder.build()
    }
}

/// Adapter letting a shared constraint be re-attached to a derived space.
#[derive(Debug, Clone)]
struct ArcConstraint(std::sync::Arc<dyn crate::constraint::Constraint>);

impl crate::constraint::Constraint for ArcConstraint {
    fn repair(&self, space: &SearchSpace, coords: &mut [f64]) {
        self.0.repair(space, coords)
    }
    fn is_satisfied(&self, space: &SearchSpace, cfg: &Configuration) -> bool {
        self.0.is_satisfied(space, cfg)
    }
    fn check_space(&self, space: &SearchSpace) -> crate::error::Result<()> {
        self.0.check_space(space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StartPoint;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 100, 1)
            .int("y", 0, 100, 1)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_db_gives_center_start() {
        let db = PriorRunDb::new();
        assert!(matches!(db.seed_for("app", &space()), StartPoint::Center));
    }

    #[test]
    fn best_for_sorts_and_filters() {
        let s = space();
        let mut db = PriorRunDb::new();
        db.record("a", s.project(&[1.0, 1.0]), 5.0);
        db.record("a", s.project(&[2.0, 2.0]), 3.0);
        db.record("b", s.project(&[3.0, 3.0]), 1.0);
        let best = db.best_for("a", 10);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].cost, 3.0);
    }

    #[test]
    fn seed_uses_prior_points() {
        let s = space();
        let mut db = PriorRunDb::new();
        db.record("a", s.project(&[10.0, 20.0]), 1.0);
        db.record("a", s.project(&[12.0, 22.0]), 2.0);
        match db.seed_for("a", &s) {
            StartPoint::Simplex(points) => {
                assert_eq!(points.len(), 2);
                assert_eq!(points[0], vec![10.0, 20.0]);
            }
            other => panic!("expected simplex seed, got {other:?}"),
        }
    }

    #[test]
    fn seed_survives_space_with_extra_params() {
        let small = space();
        let mut db = PriorRunDb::new();
        db.record("a", small.project(&[10.0, 20.0]), 1.0);
        let bigger = SearchSpace::builder()
            .int("x", 0, 100, 1)
            .int("y", 0, 100, 1)
            .int("z", 0, 10, 1)
            .build()
            .unwrap();
        match db.seed_for("a", &bigger) {
            StartPoint::Simplex(points) => {
                assert_eq!(points[0][0], 10.0);
                assert_eq!(points[0][1], 20.0);
                assert_eq!(points[0][2], 5.0); // z defaults to centre
            }
            other => panic!("expected simplex, got {other:?}"),
        }
    }

    #[test]
    fn narrowed_space_shrinks_ranges_around_best() {
        let s = space();
        let mut db = PriorRunDb::new();
        db.record("a", s.project(&[50.0, 50.0]), 1.0);
        let narrow = db.narrowed_space("a", &s, 0.1).unwrap();
        let p = &narrow.params()[0];
        assert_eq!(p.embed_min(), 40.0);
        assert_eq!(p.embed_max(), 60.0);
        assert!(narrow.cardinality().unwrap() < s.cardinality().unwrap());
    }

    #[test]
    fn narrowed_space_without_priors_is_unchanged() {
        let s = space();
        let db = PriorRunDb::new();
        let same = db.narrowed_space("a", &s, 0.1).unwrap();
        assert_eq!(same.cardinality(), s.cardinality());
    }

    #[test]
    fn db_roundtrips_through_json() {
        let s = space();
        let mut db = PriorRunDb::new();
        db.record("gs2", s.project(&[10.0, 20.0]), 55.06);
        db.record("pop", s.project(&[30.0, 40.0]), 1.23);
        let json = db.to_json();
        let back = PriorRunDb::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.best_for("gs2", 1)[0].cost, 55.06);
        assert!(PriorRunDb::from_json("not json").is_err());
    }

    #[test]
    fn record_history_imports_fresh_evals_only() {
        let s = space();
        let mut h = crate::history::History::new();
        h.push(crate::history::Evaluation {
            iteration: 1,
            config: s.project(&[1.0, 1.0]),
            cost: 9.0,
            cached: false,
            cumulative_time: 9.0,
        });
        h.push(crate::history::Evaluation {
            iteration: 2,
            config: s.project(&[1.0, 1.0]),
            cost: 9.0,
            cached: true,
            cumulative_time: 9.0,
        });
        let mut db = PriorRunDb::new();
        db.record_history("a", &h);
        assert_eq!(db.len(), 1);
    }
}

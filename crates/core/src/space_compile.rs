//! Search-space compilation: constraint propagation + lazy enumeration of
//! valid lattice points, scaling strategies to billion-point constrained
//! spaces.
//!
//! The paper's production search spaces are enormous — GS2's layout ×
//! decomposition space is quoted at O(10^100) points — while this codebase's
//! enumerating strategies ([`Exhaustive`](crate::strategy::Exhaustive),
//! [`GridSearch`](crate::strategy::GridSearch)) historically walked the raw
//! Cartesian product and *repaired* infeasible points into (duplicate) valid
//! ones. Following "Efficient Construction of Large Search Spaces for
//! Auto-Tuning" (Willemsen & van Nieuwpoort), [`CompiledSpace`] compiles the
//! constrained space once and then iterates it lazily:
//!
//! 1. **Constraint propagation** — each constraint's machine-readable
//!    [`ConstraintSpec`] tightens per-dimension bounds to a fixpoint
//!    (chains propagate their prefix maxima/suffix minima, sums subtract the
//!    other participants' extremes). Dimensions whose interval collapses to
//!    one value are *pinned*; an interval that empties proves the space has
//!    no valid points at all — before enumerating anything.
//! 2. **Lazy, pruned enumeration** — valid points stream in lexicographic
//!    (mixed-radix, dimension 0 most significant) order from a backtracking
//!    walk that skips whole subtrees whose prefix cannot be completed
//!    (interval reasoning again, exact for chains and sums). The full
//!    product is never materialized; enumeration state is O(dims).
//! 3. **Resumable cursors** — a [`SpaceCursor`] names a position in the
//!    stream; [`CompiledSpace::next_chunk`] serves bounded chunks and hands
//!    back the cursor for the next one, so enumeration can be paused,
//!    checkpointed, or spread across workers ([`CompiledSpace::bands`]).
//! 4. **Feasible counting** — [`CompiledSpace::count_valid_bounded`] counts
//!    valid points exactly where the constraint structure allows whole
//!    suffix blocks to be credited at once, with a cap and a node budget so
//!    callers (e.g. `Exhaustive`'s safety valve) get an answer in bounded
//!    time even on hostile spaces.
//!
//! Opaque constraints (no [`ConstraintSpec`]) still work: they are checked
//! on fully-assigned points only, which degrades enumeration to
//! filter-while-walking but never changes the result. The equivalence with
//! naive enumerate-and-filter — same points, same order, bit-identical — is
//! property-tested in `tests/space_compile_props.rs`.

use crate::constraint::ConstraintSpec;
use crate::error::{HarmonyError, Result};
use crate::param::Param;
use crate::space::{Configuration, SearchSpace};
use crate::telemetry::{Counter, Latency, Telemetry};
use crate::value::ParamValue;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How a dimension's lattice index maps to its embedded value.
#[derive(Debug, Clone, Copy)]
enum DimKind {
    /// `value = min + index * step`.
    Int { min: i64, step: i64 },
    /// `value = index` (the choice index).
    Enum,
}

/// One dimension of the compiled space: the surviving contiguous slice
/// `[lo, hi]` of its lattice after constraint propagation.
#[derive(Debug, Clone)]
struct CompiledDim {
    lo: u64,
    hi: u64,
    kind: DimKind,
}

impl CompiledDim {
    /// Surviving lattice points; 0 when propagation emptied the range
    /// (`lo > hi`).
    fn len(&self) -> u64 {
        if self.lo > self.hi {
            0
        } else {
            self.hi - self.lo + 1
        }
    }

    fn value(&self, idx: u64) -> f64 {
        match self.kind {
            DimKind::Int { min, step } => (min + idx as i64 * step) as f64,
            DimKind::Enum => idx as f64,
        }
    }
}

/// A constraint in compiled, index-space form.
#[derive(Debug, Clone)]
enum CompiledCheck {
    /// Non-decreasing chain over these dimensions (constraint order).
    Chain(Vec<usize>),
    /// Σ values ∈ `[min, max]` over these dimensions (constraint order,
    /// slack already folded in by the spec).
    Sum {
        dims: Vec<usize>,
        min: f64,
        max: f64,
    },
    /// Fall back to `Constraint::is_satisfied` on full assignments only;
    /// the payload indexes into the space's constraint list.
    Opaque(usize),
}

/// What the compilation pass measured and decided.
#[derive(Debug, Clone, Serialize)]
pub struct CompileStats {
    /// Number of dimensions.
    pub dims: usize,
    /// Number of attached constraints.
    pub constraints: usize,
    /// Constraints with a machine-readable spec (chain/sum/unsat).
    pub compiled_constraints: usize,
    /// Lattice points of the raw product, saturating at `u64::MAX`.
    pub points_raw: u64,
    /// log10 of the raw product (reportable even when `points_raw`
    /// saturates).
    pub log10_points_raw: f64,
    /// Lattice points remaining in the propagated box (the product of the
    /// tightened per-dimension ranges), saturating at `u64::MAX`.
    pub points_box: u64,
    /// Points excluded by propagation alone (`points_raw - points_box`,
    /// saturating).
    pub points_pruned_by_propagation: u64,
    /// Dimensions pinned to a single value by propagation.
    pub pinned_dims: usize,
    /// Propagation rounds until the fixpoint.
    pub propagation_rounds: usize,
    /// True if propagation proved the space has no valid points.
    pub provably_empty: bool,
    /// Wall time of the compilation pass, in microseconds.
    pub compile_micros: u64,
}

/// Result of a bounded feasible-point count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeasibleCount {
    /// The exact number of valid lattice points.
    Exact(u64),
    /// Counting stopped early (cap exceeded or node budget exhausted);
    /// at least this many valid points exist.
    AtLeast(u64),
}

impl FeasibleCount {
    /// The counted value, exact or not.
    pub fn lower_bound(&self) -> u64 {
        match self {
            FeasibleCount::Exact(n) | FeasibleCount::AtLeast(n) => *n,
        }
    }

    /// True if the count is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, FeasibleCount::Exact(_))
    }
}

/// A resumable position in the valid-point stream.
///
/// Serializable, so enumeration can be checkpointed across processes; feed
/// it back via [`CompiledSpace::next_chunk`] or [`CompiledSpace::resume`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpaceCursor {
    /// Lattice indices of the last yielded point; `None` means "before the
    /// first point".
    pub after: Option<Vec<u64>>,
}

/// A contiguous slice of dimension 0's range, for parallel enumeration:
/// each band's stream is disjoint from every other band's, and their
/// concatenation (in band order) is the full stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// First dimension-0 lattice index of the band (inclusive).
    pub first: u64,
    /// Last dimension-0 lattice index of the band (inclusive).
    pub last: u64,
}

/// Mutable enumeration state, O(dims). Owned by callers so one
/// [`CompiledSpace`] can serve many concurrent enumerations.
#[derive(Debug, Clone)]
pub struct PointCursor {
    idx: Vec<u64>,
    /// `idx` itself is the next candidate (not yet yielded).
    fresh: bool,
    done: bool,
    /// Enumeration stops once `idx[0]` exceeds this (band bound).
    limit0: u64,
    /// Scratch configuration for opaque full-point checks.
    scratch: Option<Configuration>,
    /// Lattice points skipped by subtree pruning so far.
    pruned: u64,
    /// Valid points yielded so far.
    yielded: u64,
}

impl PointCursor {
    /// Lattice indices of the current point (valid after
    /// [`CompiledSpace::next_point`] returned `true`).
    pub fn indices(&self) -> &[u64] {
        &self.idx
    }

    /// Lattice points skipped by subtree pruning so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Valid points yielded so far.
    pub fn yielded(&self) -> u64 {
        self.yielded
    }
}

/// A [`SearchSpace`] compiled for large-scale enumeration: tightened
/// per-dimension bounds, index-space constraint checkers, and lazy
/// streaming of exactly the valid lattice points.
#[derive(Debug, Clone)]
pub struct CompiledSpace {
    space: SearchSpace,
    dims: Vec<CompiledDim>,
    checks: Vec<CompiledCheck>,
    /// Check indices to (re-)evaluate when dimension `d` gets assigned.
    checks_at: Vec<Vec<usize>>,
    /// Deepest dimension any check involves; `None` when no check
    /// constrains anything (space is effectively unconstrained).
    max_check_dim: Option<usize>,
    /// Product of the reduced ranges of dimensions strictly deeper than
    /// `d` (`suffix[dims-1] == 1`), saturating.
    suffix: Vec<u64>,
    empty: bool,
    stats: CompileStats,
    telemetry: Telemetry,
}

impl CompiledSpace {
    /// Compile a fully discrete space. Errors if any dimension is
    /// continuous (a continuous dimension has no lattice to enumerate).
    pub fn compile(space: &SearchSpace) -> Result<Self> {
        Self::compile_with(space, Telemetry::disabled())
    }

    /// [`compile`](Self::compile) with telemetry: records compile latency
    /// ([`Latency::SpaceCompile`]) and propagation pruning
    /// ([`Counter::SpacePointsPruned`]); chunked enumeration through this
    /// handle also counts chunks and enumeration-time pruning.
    pub fn compile_with(space: &SearchSpace, telemetry: Telemetry) -> Result<Self> {
        let started = Instant::now();
        let mut dims = Vec::with_capacity(space.dims());
        for p in space.params() {
            let card = p.cardinality().ok_or_else(|| {
                HarmonyError::Protocol(format!(
                    "cannot compile search space: parameter `{}` is continuous",
                    p.name()
                ))
            })?;
            let kind = match p {
                Param::Int { min, step, .. } => DimKind::Int {
                    min: *min,
                    step: *step,
                },
                Param::Enum { .. } => DimKind::Enum,
                Param::Real { .. } => unreachable!("continuous params have no cardinality"),
            };
            dims.push(CompiledDim {
                lo: 0,
                hi: card - 1,
                kind,
            });
        }

        let points_raw = dims.iter().fold(1u64, |acc, d| acc.saturating_mul(d.len()));
        let log10_points_raw = dims.iter().map(|d| (d.len() as f64).log10()).sum();

        // Compile constraint specs; an unsatisfiable spec proves emptiness.
        let mut checks = Vec::new();
        let mut empty = false;
        let mut compiled_constraints = 0usize;
        for (ci, c) in space.constraints().iter().enumerate() {
            match c.spec(space) {
                ConstraintSpec::Opaque => checks.push(CompiledCheck::Opaque(ci)),
                ConstraintSpec::Chain(members) => {
                    compiled_constraints += 1;
                    checks.push(CompiledCheck::Chain(members));
                }
                ConstraintSpec::Sum { dims, min, max } => {
                    compiled_constraints += 1;
                    checks.push(CompiledCheck::Sum { dims, min, max });
                }
                ConstraintSpec::Unsatisfiable => {
                    compiled_constraints += 1;
                    empty = true;
                }
            }
        }

        // Propagate bounds to a fixpoint (value-space interval reasoning,
        // mapped back onto each dimension's lattice conservatively).
        let mut rounds = 0usize;
        while !empty && rounds < 64 {
            let mut changed = false;
            for check in &checks {
                match check {
                    CompiledCheck::Chain(members) => {
                        // Forward: each member's value is at least the
                        // running maximum of earlier members' minima.
                        let mut floor = f64::NEG_INFINITY;
                        for &m in members {
                            let d = &dims[m];
                            floor = floor.max(d.value(d.lo));
                            if d.value(d.lo) < floor {
                                changed |= raise_lo(&mut dims[m], floor);
                            }
                        }
                        // Backward: at most the running minimum of later
                        // members' maxima.
                        let mut ceil = f64::INFINITY;
                        for &m in members.iter().rev() {
                            let d = &dims[m];
                            ceil = ceil.min(d.value(d.hi));
                            if d.value(d.hi) > ceil {
                                changed |= lower_hi(&mut dims[m], ceil);
                            }
                        }
                        if members.iter().any(|&m| dims[m].lo > dims[m].hi) {
                            empty = true;
                        }
                    }
                    CompiledCheck::Sum {
                        dims: members,
                        min,
                        max,
                    } => {
                        let lo_sum: f64 = members.iter().map(|&m| dims[m].value(dims[m].lo)).sum();
                        let hi_sum: f64 = members.iter().map(|&m| dims[m].value(dims[m].hi)).sum();
                        if lo_sum > *max || hi_sum < *min {
                            empty = true;
                            break;
                        }
                        for &m in members {
                            let d_lo = dims[m].value(dims[m].lo);
                            let d_hi = dims[m].value(dims[m].hi);
                            // Others at their minima leave this dim at most
                            // `max - (lo_sum - own_lo)`; at their maxima,
                            // at least `min - (hi_sum - own_hi)`.
                            changed |= lower_hi(&mut dims[m], *max - (lo_sum - d_lo));
                            changed |= raise_lo(&mut dims[m], *min - (hi_sum - d_hi));
                            if dims[m].lo > dims[m].hi {
                                empty = true;
                            }
                        }
                    }
                    CompiledCheck::Opaque(_) => {}
                }
                if empty {
                    break;
                }
            }
            rounds += 1;
            if !changed || empty {
                break;
            }
        }

        let points_box = if empty {
            0
        } else {
            dims.iter().fold(1u64, |acc, d| acc.saturating_mul(d.len()))
        };

        // Index the checks by the dimensions whose assignment affects them.
        let mut checks_at: Vec<Vec<usize>> = vec![Vec::new(); dims.len()];
        let mut max_check_dim: Option<usize> = None;
        for (i, check) in checks.iter().enumerate() {
            let involved: Vec<usize> = match check {
                CompiledCheck::Chain(m) => m.clone(),
                CompiledCheck::Sum { dims: m, .. } => m.clone(),
                // Opaque constraints may read anything: full points only.
                CompiledCheck::Opaque(_) => vec![dims.len() - 1],
            };
            let mut involved = involved;
            involved.sort_unstable();
            involved.dedup();
            if let Some(&deepest) = involved.last() {
                max_check_dim = Some(max_check_dim.map_or(deepest, |d| d.max(deepest)));
            }
            for m in involved {
                checks_at[m].push(i);
            }
        }

        let mut suffix = vec![1u64; dims.len() + 1];
        for d in (0..dims.len()).rev() {
            suffix[d] = suffix[d + 1].saturating_mul(dims[d].len().max(1));
        }
        // suffix[d] above is the product *including* dim d; shift so that
        // suffix[d] is the block size strictly below d.
        let suffix: Vec<u64> = (0..dims.len()).map(|d| suffix[d + 1]).collect();

        let pinned_dims = if empty {
            0
        } else {
            dims.iter().filter(|d| d.lo == d.hi).count()
        };
        let stats = CompileStats {
            dims: dims.len(),
            constraints: space.constraints().len(),
            compiled_constraints,
            points_raw,
            log10_points_raw,
            points_box,
            points_pruned_by_propagation: points_raw.saturating_sub(points_box),
            pinned_dims,
            propagation_rounds: rounds,
            provably_empty: empty,
            compile_micros: started.elapsed().as_micros() as u64,
        };
        telemetry.observe(Latency::SpaceCompile, started.elapsed());
        telemetry.add(
            Counter::SpacePointsPruned,
            stats.points_pruned_by_propagation,
        );

        Ok(CompiledSpace {
            space: space.clone(),
            dims,
            checks,
            checks_at,
            max_check_dim,
            suffix,
            empty,
            stats,
            telemetry,
        })
    }

    /// The source space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// What compilation measured and decided.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// A cursor positioned before the first valid point.
    pub fn start(&self) -> PointCursor {
        self.start_band(Band {
            first: self.dims.first().map_or(0, |d| d.lo),
            last: self.dims.first().map_or(0, |d| d.hi),
        })
    }

    fn start_band(&self, band: Band) -> PointCursor {
        let mut idx: Vec<u64> = self.dims.iter().map(|d| d.lo).collect();
        let mut done = self.empty;
        if let Some(first) = idx.first_mut() {
            *first = band.first.max(self.dims[0].lo);
            done = done || *first > band.last.min(self.dims[0].hi);
        }
        PointCursor {
            idx,
            fresh: true,
            done,
            limit0: band.last,
            scratch: None,
            pruned: 0,
            yielded: 0,
        }
    }

    /// A cursor that resumes enumeration strictly after `cursor`'s
    /// position. Errors if the cursor's shape does not match the space.
    pub fn resume(&self, cursor: &SpaceCursor) -> Result<PointCursor> {
        let Some(after) = &cursor.after else {
            return Ok(self.start());
        };
        if after.len() != self.dims.len() {
            return Err(HarmonyError::Protocol(format!(
                "space cursor has {} indices, space has {} dims",
                after.len(),
                self.dims.len()
            )));
        }
        for (d, (&i, dim)) in after.iter().zip(&self.dims).enumerate() {
            if i < dim.lo || i > dim.hi {
                return Err(HarmonyError::Protocol(format!(
                    "space cursor index {i} is outside dimension {d}'s compiled range \
                     [{}, {}]",
                    dim.lo, dim.hi
                )));
            }
        }
        let mut cur = self.start();
        cur.idx.copy_from_slice(after);
        cur.fresh = false;
        cur.done = self.empty;
        Ok(cur)
    }

    /// Advance `cur` to the next valid lattice point (available via
    /// [`PointCursor::indices`]); `false` once the stream is exhausted.
    ///
    /// Candidates stream in lexicographic (mixed-radix, dimension 0 most
    /// significant) order; subtrees whose prefix provably cannot be
    /// completed are skipped without being visited.
    pub fn next_point(&self, cur: &mut PointCursor) -> bool {
        if cur.done {
            return false;
        }
        let k = self.dims.len();
        let mut depth = if cur.fresh {
            cur.fresh = false;
            0
        } else {
            match self.bump(cur, k - 1) {
                Some(d) => d,
                None => {
                    cur.done = true;
                    return false;
                }
            }
        };
        if cur.idx[0] > cur.limit0 {
            cur.done = true;
            return false;
        }
        'outer: loop {
            // Invariant: dims < depth are assigned and prefix-feasible;
            // idx[depth] is assigned but not yet checked.
            let mut d = depth;
            while d < k {
                if self.prefix_ok(cur, d) {
                    d += 1;
                    if d < k {
                        cur.idx[d] = self.dims[d].lo;
                    }
                    continue;
                }
                // The whole subtree under idx[0..=d] is dead.
                cur.pruned = cur.pruned.saturating_add(self.suffix[d]);
                match self.bump(cur, d) {
                    Some(d2) => {
                        if cur.idx[0] > cur.limit0 {
                            cur.done = true;
                            return false;
                        }
                        depth = d2;
                        continue 'outer;
                    }
                    None => {
                        cur.done = true;
                        return false;
                    }
                }
            }
            cur.yielded += 1;
            return true;
        }
    }

    /// Increment `idx[from]`, rippling towards dimension 0 on overflow;
    /// returns the depth that changed, or `None` when exhausted.
    fn bump(&self, cur: &mut PointCursor, from: usize) -> Option<usize> {
        let mut d = from as isize;
        while d >= 0 {
            let dim = &self.dims[d as usize];
            if cur.idx[d as usize] < dim.hi {
                cur.idx[d as usize] += 1;
                return Some(d as usize);
            }
            cur.idx[d as usize] = dim.lo;
            d -= 1;
        }
        None
    }

    /// Can the prefix `idx[0..=assigned]` still be completed? Evaluates
    /// only the checks that dimension `assigned` participates in; exact
    /// (not conservative) for chains and sums, full-point-only for opaque
    /// constraints.
    fn prefix_ok(&self, cur: &mut PointCursor, assigned: usize) -> bool {
        if self.checks_at[assigned].is_empty() {
            return true;
        }
        // Split borrows: the scratch configuration is only touched by the
        // opaque path, which reads `idx` immutably.
        for ci in &self.checks_at[assigned] {
            let ok = match &self.checks[*ci] {
                CompiledCheck::Chain(members) => self.chain_ok(&cur.idx, members, assigned),
                CompiledCheck::Sum { dims, min, max } => {
                    self.sum_ok(&cur.idx, dims, *min, *max, assigned)
                }
                CompiledCheck::Opaque(c) => {
                    let cfg = match &mut cur.scratch {
                        Some(cfg) => cfg,
                        none => none.insert(self.configuration(&cur.idx)),
                    };
                    for (d, dim) in self.dims.iter().enumerate() {
                        set_value(cfg, d, dim, cur.idx[d], &self.space);
                    }
                    self.space.constraints()[*c].is_satisfied(&self.space, cfg)
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    fn chain_ok(&self, idx: &[u64], members: &[usize], assigned: usize) -> bool {
        let mut prev = f64::NEG_INFINITY;
        for &m in members {
            let dim = &self.dims[m];
            if m <= assigned {
                let v = dim.value(idx[m]);
                if v < prev {
                    return false;
                }
                prev = v;
            } else {
                // Unassigned member: it can take any lattice value in its
                // (already propagated) range.
                if dim.value(dim.hi) < prev {
                    return false;
                }
                prev = prev.max(dim.value(dim.lo));
            }
        }
        true
    }

    fn sum_ok(&self, idx: &[u64], members: &[usize], min: f64, max: f64, assigned: usize) -> bool {
        let mut lo_sum = 0.0;
        let mut hi_sum = 0.0;
        for &m in members {
            let dim = &self.dims[m];
            if m <= assigned {
                let v = dim.value(idx[m]);
                lo_sum += v;
                hi_sum += v;
            } else {
                lo_sum += dim.value(dim.lo);
                hi_sum += dim.value(dim.hi);
            }
        }
        lo_sum <= max && hi_sum >= min
    }

    /// Continuous-embedding coordinates of a lattice point (the shape
    /// strategies propose).
    pub fn coords(&self, indices: &[u64]) -> Vec<f64> {
        debug_assert_eq!(indices.len(), self.dims.len());
        self.dims
            .iter()
            .zip(indices)
            .map(|(d, &i)| d.value(i))
            .collect()
    }

    /// The configuration at a lattice point.
    pub fn configuration(&self, indices: &[u64]) -> Configuration {
        debug_assert_eq!(indices.len(), self.dims.len());
        let names = self
            .space
            .params()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        let values = self
            .dims
            .iter()
            .zip(self.space.params())
            .zip(indices)
            .map(|((dim, param), &i)| lattice_value(dim, i, param))
            .collect();
        Configuration::new(names, values)
    }

    /// Nearest feasible lattice point to `coords` by squared distance in
    /// the continuous embedding, scanning at most `cap` valid points in
    /// enumeration order (deterministic: ties go to the earlier point).
    /// `None` when the compiled space is empty or `cap` is zero.
    ///
    /// This is the feasibility-aware replacement for repair-then-snap:
    /// repairing a constrained candidate and snapping it to the lattice
    /// can land on an *invalid* point (snap moves it back off the
    /// constraint surface) or collapse many distinct candidates onto the
    /// same boundary configuration, which inflates evaluation counts with
    /// duplicates.
    pub fn snap_feasible(&self, coords: &[f64], cap: u64) -> Option<Vec<f64>> {
        let mut cur = self.start();
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut scanned = 0u64;
        while scanned < cap && self.next_point(&mut cur) {
            scanned += 1;
            let cand = self.coords(cur.indices());
            let dist: f64 = cand
                .iter()
                .zip(coords)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if best.as_ref().is_none_or(|(d, _)| dist < *d) {
                best = Some((dist, cand));
            }
        }
        if scanned == cap && self.next_point(&mut cur) {
            // More valid points exist beyond the scan budget: the prefix
            // nearest would be biased toward enumeration order, so report
            // "too large" and let the caller fall back to repair.
            return None;
        }
        best.map(|(_, c)| c)
    }

    /// Lazy iterator over every valid configuration, in enumeration order.
    pub fn iter(&self) -> ValidPoints<'_> {
        ValidPoints {
            cs: self,
            cur: self.start(),
        }
    }

    /// Iterator over one [`Band`]'s share of the stream.
    pub fn iter_band(&self, band: Band) -> ValidPoints<'_> {
        ValidPoints {
            cs: self,
            cur: self.start_band(band),
        }
    }

    /// Partition dimension 0's compiled range into up to `parts` contiguous
    /// bands for parallel enumeration. Concatenating the bands' streams in
    /// band order reproduces [`iter`](Self::iter) exactly.
    pub fn bands(&self, parts: usize) -> Vec<Band> {
        if self.empty || self.dims.is_empty() {
            return Vec::new();
        }
        let (lo, hi) = (self.dims[0].lo, self.dims[0].hi);
        let width = hi - lo + 1;
        let parts = (parts.max(1) as u64).min(width);
        (0..parts)
            .map(|b| {
                let first = lo + width * b / parts;
                let last = lo + width * (b + 1) / parts - 1;
                Band { first, last }
            })
            .collect()
    }

    /// Up to `n` valid configurations after `cursor`, plus the cursor for
    /// the following chunk (`None` once the stream is exhausted).
    ///
    /// Memory is O(`n` + dims) regardless of the space's size. Bumps
    /// [`Counter::SpaceChunksEnumerated`] and
    /// [`Counter::SpacePointsPruned`] when compiled with telemetry.
    pub fn next_chunk(
        &self,
        cursor: &SpaceCursor,
        n: usize,
    ) -> Result<(Vec<Configuration>, Option<SpaceCursor>)> {
        let mut cur = self.resume(cursor)?;
        let mut out = Vec::with_capacity(n.min(4096));
        while out.len() < n && self.next_point(&mut cur) {
            out.push(self.configuration(&cur.idx));
        }
        self.telemetry.inc(Counter::SpaceChunksEnumerated);
        self.telemetry.add(Counter::SpacePointsPruned, cur.pruned);
        let next = if cur.done {
            None
        } else {
            Some(SpaceCursor {
                after: Some(cur.idx.clone()),
            })
        };
        Ok((out, next))
    }

    /// Count valid lattice points, stopping once the count exceeds `cap`
    /// or after `node_budget` prefix checks.
    ///
    /// Where no constraint involves the deepest dimensions, whole suffix
    /// blocks are credited at once, so unconstrained (and
    /// leading-dimension-constrained) spaces count in O(prefix tree)
    /// rather than O(points).
    pub fn count_valid_bounded(&self, cap: u64, node_budget: u64) -> FeasibleCount {
        if self.empty {
            return FeasibleCount::Exact(0);
        }
        let Some(tail) = self.max_check_dim else {
            return FeasibleCount::Exact(self.stats.points_box);
        };
        let tail_block = self.suffix[tail];
        let mut cur = self.start();
        cur.fresh = false; // the DFS below manages depth itself
        let mut count: u64 = 0;
        let mut nodes: u64 = 0;
        let mut depth = 0usize;
        loop {
            nodes += 1;
            if nodes > node_budget {
                return FeasibleCount::AtLeast(count);
            }
            if self.prefix_ok(&mut cur, depth) {
                if depth == tail {
                    count = count.saturating_add(tail_block);
                    if count > cap {
                        return FeasibleCount::AtLeast(count);
                    }
                    match self.bump(&mut cur, depth) {
                        Some(d) => depth = d,
                        None => return FeasibleCount::Exact(count),
                    }
                } else {
                    depth += 1;
                    cur.idx[depth] = self.dims[depth].lo;
                }
            } else {
                match self.bump(&mut cur, depth) {
                    Some(d) => depth = d,
                    None => return FeasibleCount::Exact(count),
                }
            }
        }
    }

    /// Exact feasible-point count (may walk the whole prefix tree).
    pub fn count_valid(&self) -> FeasibleCount {
        self.count_valid_bounded(u64::MAX, u64::MAX)
    }
}

/// Raise a dimension's `lo` so its value is ≥ `floor` (conservatively:
/// never excludes a lattice value ≥ `floor`). Returns true on change.
fn raise_lo(dim: &mut CompiledDim, floor: f64) -> bool {
    let new_lo = match dim.kind {
        DimKind::Int { min, step } => {
            let k = ((floor - min as f64) / step as f64 - 1e-9).ceil();
            if k <= 0.0 {
                0
            } else {
                k as u64
            }
        }
        DimKind::Enum => {
            let k = (floor - 1e-9).ceil();
            if k <= 0.0 {
                0
            } else {
                k as u64
            }
        }
    };
    if new_lo > dim.lo {
        dim.lo = new_lo;
        true
    } else {
        false
    }
}

/// Lower a dimension's `hi` so its value is ≤ `ceil` (conservatively).
/// Returns true on change. May leave `lo > hi` (empty), checked by callers.
fn lower_hi(dim: &mut CompiledDim, ceil: f64) -> bool {
    let new_hi = match dim.kind {
        DimKind::Int { min, step } => {
            let k = ((ceil - min as f64) / step as f64 + 1e-9).floor();
            if k < 0.0 {
                // Empty: signal via lo > hi using 0-width at the bottom.
                dim.lo = 1;
                dim.hi = 0;
                return true;
            }
            k as u64
        }
        DimKind::Enum => {
            let k = (ceil + 1e-9).floor();
            if k < 0.0 {
                dim.lo = 1;
                dim.hi = 0;
                return true;
            }
            k as u64
        }
    };
    if new_hi < dim.hi {
        dim.hi = new_hi;
        true
    } else {
        false
    }
}

fn lattice_value(dim: &CompiledDim, idx: u64, param: &Param) -> ParamValue {
    match (dim.kind, param) {
        (DimKind::Int { min, step }, _) => ParamValue::Int(min + idx as i64 * step),
        (DimKind::Enum, Param::Enum { choices, .. }) => ParamValue::Enum {
            index: idx as usize,
            label: choices[idx as usize].clone(),
        },
        (DimKind::Enum, _) => unreachable!("enum dim compiled from enum param"),
    }
}

fn set_value(cfg: &mut Configuration, d: usize, dim: &CompiledDim, idx: u64, space: &SearchSpace) {
    let name = space.params()[d].name();
    let value = lattice_value(dim, idx, &space.params()[d]);
    cfg.set(name, value).expect("scratch has every parameter");
}

/// Iterator sugar over [`CompiledSpace::next_point`].
#[derive(Debug)]
pub struct ValidPoints<'a> {
    cs: &'a CompiledSpace,
    cur: PointCursor,
}

impl ValidPoints<'_> {
    /// A resumable cursor naming the current position (after the last
    /// yielded point).
    pub fn cursor(&self) -> SpaceCursor {
        if self.cur.fresh {
            SpaceCursor::default()
        } else {
            SpaceCursor {
                after: Some(self.cur.idx.clone()),
            }
        }
    }

    /// Lattice indices of the most recent point.
    pub fn indices(&self) -> &[u64] {
        self.cur.indices()
    }

    /// Lattice points skipped by subtree pruning so far.
    pub fn pruned(&self) -> u64 {
        self.cur.pruned()
    }
}

impl Iterator for ValidPoints<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        if self.cs.next_point(&mut self.cur) {
            Some(self.cs.configuration(&self.cur.idx))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{MonotoneChain, SumBound};

    /// Naive ground truth: every raw lattice point, filtered by
    /// `is_valid`, in mixed-radix order.
    fn naive(space: &SearchSpace) -> Vec<Configuration> {
        let radix: Vec<u64> = space
            .params()
            .iter()
            .map(|p| p.cardinality().expect("discrete"))
            .collect();
        let mut counter = vec![0u64; radix.len()];
        let mut out = Vec::new();
        'outer: loop {
            let values: Vec<ParamValue> = space
                .params()
                .iter()
                .zip(&counter)
                .map(|(p, &i)| match p {
                    Param::Int { min, step, .. } => ParamValue::Int(min + i as i64 * step),
                    Param::Enum { choices, .. } => ParamValue::Enum {
                        index: i as usize,
                        label: choices[i as usize].clone(),
                    },
                    Param::Real { .. } => unreachable!(),
                })
                .collect();
            let cfg = space.configuration(values).unwrap();
            if space.is_valid(&cfg) {
                out.push(cfg);
            }
            for d in (0..counter.len()).rev() {
                counter[d] += 1;
                if counter[d] < radix[d] {
                    continue 'outer;
                }
                counter[d] = 0;
            }
            return out;
        }
    }

    fn chain_space() -> SearchSpace {
        SearchSpace::builder()
            .int("a", 0, 6, 1)
            .int("b", 0, 6, 1)
            .int("c", 0, 6, 1)
            .constraint(MonotoneChain::new(["a", "b", "c"]))
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_enumeration_matches_naive_filter() {
        let s = chain_space();
        let cs = CompiledSpace::compile(&s).unwrap();
        let compiled: Vec<Configuration> = cs.iter().collect();
        let expected = naive(&s);
        assert_eq!(compiled.len(), expected.len());
        for (a, b) in compiled.iter().zip(&expected) {
            assert_eq!(a, b);
        }
        // C(7+2, 3) = 84 non-decreasing triples over 7 values.
        assert_eq!(compiled.len(), 84);
    }

    #[test]
    fn counting_is_exact_and_bounded() {
        let s = chain_space();
        let cs = CompiledSpace::compile(&s).unwrap();
        assert_eq!(cs.count_valid(), FeasibleCount::Exact(84));
        match cs.count_valid_bounded(10, u64::MAX) {
            FeasibleCount::AtLeast(n) => assert!(n > 10),
            exact => panic!("cap must stop early, got {exact:?}"),
        }
        match cs.count_valid_bounded(u64::MAX, 3) {
            FeasibleCount::AtLeast(_) => {}
            exact => panic!("budget must stop early, got {exact:?}"),
        }
    }

    #[test]
    fn unconstrained_space_counts_without_walking() {
        let s = SearchSpace::builder()
            .int("x", 0, 999_999, 1)
            .int("y", 0, 999_999, 1)
            .build()
            .unwrap();
        let cs = CompiledSpace::compile(&s).unwrap();
        // 10^12 points: must come from the product, not a walk.
        assert_eq!(cs.count_valid(), FeasibleCount::Exact(1_000_000_000_000));
        assert_eq!(cs.stats().points_pruned_by_propagation, 0);
    }

    #[test]
    fn chunked_enumeration_with_cursors_is_seamless() {
        let s = chain_space();
        let cs = CompiledSpace::compile(&s).unwrap();
        let whole: Vec<Configuration> = cs.iter().collect();
        let mut chunked = Vec::new();
        let mut cursor = Some(SpaceCursor::default());
        while let Some(c) = cursor {
            let (chunk, next) = cs.next_chunk(&c, 7).unwrap();
            chunked.extend(chunk);
            cursor = next;
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn bands_partition_the_stream() {
        let s = chain_space();
        let cs = CompiledSpace::compile(&s).unwrap();
        let whole: Vec<Configuration> = cs.iter().collect();
        for parts in [1, 2, 3, 7, 50] {
            let banded: Vec<Configuration> = cs
                .bands(parts)
                .into_iter()
                .flat_map(|b| cs.iter_band(b).collect::<Vec<_>>())
                .collect();
            assert_eq!(whole, banded, "parts={parts}");
        }
    }

    #[test]
    fn propagation_pins_and_empties() {
        // SumBound::exact(5) over one step-1 dim pins it to 5 (slack < 1).
        let s = SearchSpace::builder()
            .int("a", 0, 9, 1)
            .int("b", 0, 9, 1)
            .constraint(SumBound::exact(["a"], 5.0))
            .build()
            .unwrap();
        let cs = CompiledSpace::compile(&s).unwrap();
        assert_eq!(cs.stats().pinned_dims, 1);
        assert_eq!(cs.count_valid(), FeasibleCount::Exact(10));
        for cfg in cs.iter() {
            assert_eq!(cfg.int("a"), Some(5));
        }
        // An unsatisfiable sum proves emptiness without enumeration.
        let s = SearchSpace::builder()
            .int("a", 0, 4, 1)
            .int("b", 0, 4, 1)
            .constraint(SumBound::new(["a", "b"], 100.0, 200.0))
            .build()
            .unwrap();
        let cs = CompiledSpace::compile(&s).unwrap();
        assert!(cs.stats().provably_empty);
        assert_eq!(cs.count_valid(), FeasibleCount::Exact(0));
        assert_eq!(cs.iter().count(), 0);
        assert_eq!(naive(&s).len(), 0);
    }

    #[test]
    fn opaque_constraints_fall_back_to_full_point_checks() {
        #[derive(Debug)]
        struct EvenSum;
        impl crate::constraint::Constraint for EvenSum {
            fn repair(&self, _space: &SearchSpace, _coords: &mut [f64]) {}
            fn is_satisfied(&self, _space: &SearchSpace, cfg: &Configuration) -> bool {
                let sum: i64 = cfg.values().iter().filter_map(|v| v.as_int()).sum();
                sum % 2 == 0
            }
            fn check_space(&self, _space: &SearchSpace) -> Result<()> {
                Ok(())
            }
        }
        let s = SearchSpace::builder()
            .int("a", 0, 5, 1)
            .int("b", 0, 5, 1)
            .constraint(EvenSum)
            .build()
            .unwrap();
        let cs = CompiledSpace::compile(&s).unwrap();
        let compiled: Vec<Configuration> = cs.iter().collect();
        assert_eq!(compiled, naive(&s));
        assert_eq!(cs.count_valid(), FeasibleCount::Exact(18));
    }

    #[test]
    fn continuous_dimensions_refuse_to_compile() {
        let s = SearchSpace::builder()
            .int("a", 0, 5, 1)
            .real("tol", 0.0, 1.0)
            .build()
            .unwrap();
        let err = CompiledSpace::compile(&s).unwrap_err();
        assert!(err.to_string().contains("tol"), "{err}");
    }

    #[test]
    fn resume_rejects_malformed_cursors() {
        let s = chain_space();
        let cs = CompiledSpace::compile(&s).unwrap();
        assert!(cs
            .resume(&SpaceCursor {
                after: Some(vec![0, 0])
            })
            .is_err());
        assert!(cs
            .resume(&SpaceCursor {
                after: Some(vec![0, 0, 99])
            })
            .is_err());
    }

    #[test]
    fn billion_point_space_streams_lazily() {
        // 10^9 raw points: 9 step-1 dims of 10 values, chain + sum.
        let s = SearchSpace::builder()
            .int("p0", 0, 9, 1)
            .int("p1", 0, 9, 1)
            .int("p2", 0, 9, 1)
            .int("p3", 0, 9, 1)
            .int("p4", 0, 9, 1)
            .int("p5", 0, 9, 1)
            .int("p6", 0, 9, 1)
            .int("p7", 0, 9, 1)
            .int("p8", 0, 9, 1)
            .constraint(MonotoneChain::new(["p0", "p1", "p2", "p3"]))
            .constraint(SumBound::new(["p4", "p5", "p6"], 6.0, 18.0))
            .build()
            .unwrap();
        let cs = CompiledSpace::compile(&s).unwrap();
        assert_eq!(cs.stats().points_raw, 1_000_000_000);
        // Stream the first 50k valid points; every one must satisfy the
        // constraints, and the walk must stay O(dims) in memory.
        let mut n = 0;
        for cfg in cs.iter().take(50_000) {
            debug_assert!(s.is_valid(&cfg));
            n += 1;
        }
        assert_eq!(n, 50_000);
        let count = cs.count_valid_bounded(1_000_000, 10_000_000);
        assert!(count.lower_bound() > 1_000_000, "{count:?}");
    }
}

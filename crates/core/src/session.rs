//! Tuning sessions: the adaptation-controller loop around a search strategy.
//!
//! A [`TuningSession`] owns a [`SearchSpace`], a [`SearchStrategy`], an
//! evaluation cache and a [`History`]. It exposes both a pull-style
//! ([`TuningSession::suggest`] / [`TuningSession::report`]) interface — used
//! by the Harmony server and the on-line API — and a closed-loop
//! [`TuningSession::run`] driver for off-line tuning.
//!
//! Repeated visits to an already-measured lattice point are served from the
//! cache: in off-line tuning one evaluation is one application run, so cache
//! hits are free iterations.

use crate::error::{HarmonyError, Result};
use crate::history::{Evaluation, History};
use crate::space::{Configuration, SearchSpace};
use crate::strategy::SearchStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Why a session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The budget of fresh evaluations was spent.
    MaxEvaluations,
    /// No improvement for `no_improve_limit` fresh evaluations.
    NoImprovement,
    /// The strategy had nothing further to propose (finite strategies).
    StrategyExhausted,
    /// The strategy kept re-proposing cached points — it has converged.
    Converged,
    /// A configuration reached the user's target cost.
    TargetReached,
}

/// Session stopping criteria and seeding.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SessionOptions {
    /// Maximum number of *fresh* evaluations (application runs).
    pub max_evaluations: usize,
    /// Stop after this many consecutive fresh evaluations without
    /// improvement (0 disables the criterion).
    pub no_improve_limit: usize,
    /// Declare convergence after this many consecutive cache replays.
    pub max_cached_replays: usize,
    /// RNG seed: every stochastic choice in a session is derived from it.
    pub seed: u64,
    /// Optional early-exit target cost.
    pub target_cost: Option<f64>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            max_evaluations: 100,
            no_improve_limit: 0,
            max_cached_replays: 64,
            seed: 0,
            target_cost: None,
        }
    }
}

/// A configuration the session wants measured.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The projected, valid configuration to run.
    pub config: Configuration,
    /// 1-based index of this evaluation in the history.
    pub iteration: usize,
    coords: Vec<f64>,
}

/// Final outcome of a completed session.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// Best configuration found.
    pub best_config: Configuration,
    /// Its measured cost.
    pub best_cost: f64,
    /// Number of fresh evaluations (application runs) performed.
    pub evaluations: usize,
    /// Why the session stopped.
    pub stop_reason: StopReason,
    /// Full evaluation history.
    pub history: History,
    /// Name of the strategy that produced the result.
    pub strategy: &'static str,
}

impl TuningResult {
    /// Improvement of the best cost relative to a baseline cost, as a
    /// fraction in `[0, 1)` (paper reports `(default − tuned) / default`).
    pub fn improvement_over(&self, baseline_cost: f64) -> f64 {
        if baseline_cost <= 0.0 {
            return 0.0;
        }
        (baseline_cost - self.best_cost) / baseline_cost
    }

    /// Speedup factor `baseline / tuned` (the paper's "5.1× faster").
    pub fn speedup_over(&self, baseline_cost: f64) -> f64 {
        if self.best_cost <= 0.0 {
            return f64::INFINITY;
        }
        baseline_cost / self.best_cost
    }
}

/// The adaptation-controller loop around one application's search space.
pub struct TuningSession {
    space: SearchSpace,
    strategy: Box<dyn SearchStrategy>,
    opts: SessionOptions,
    rng: StdRng,
    cache: HashMap<Vec<i64>, f64>,
    history: History,
    best: Option<(Configuration, f64)>,
    fresh_evals: usize,
    since_improvement: usize,
    consecutive_cached: usize,
    cumulative_time: f64,
    stopped: Option<StopReason>,
    initialized: bool,
    outstanding: bool,
}

impl TuningSession {
    /// Create a session; the strategy is initialised lazily on the first
    /// [`suggest`](Self::suggest).
    pub fn new(space: SearchSpace, strategy: Box<dyn SearchStrategy>, opts: SessionOptions) -> Self {
        let rng = StdRng::seed_from_u64(opts.seed);
        TuningSession {
            space,
            strategy,
            opts,
            rng,
            cache: HashMap::new(),
            history: History::new(),
            best: None,
            fresh_evals: 0,
            since_improvement: 0,
            consecutive_cached: 0,
            cumulative_time: 0.0,
            stopped: None,
            initialized: false,
            outstanding: false,
        }
    }

    /// The space being searched.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The evaluation history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Best `(configuration, cost)` so far.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.best.as_ref().map(|(c, v)| (c, *v))
    }

    /// Why the session stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// Pre-load a known measurement (e.g. the default configuration's cost
    /// from a previous production run) without consuming budget.
    pub fn preload(&mut self, config: &Configuration, cost: f64) {
        self.cache.insert(config.cache_key(), cost);
        self.update_best(config, cost);
    }

    fn update_best(&mut self, config: &Configuration, cost: f64) -> bool {
        match &self.best {
            Some((_, b)) if *b <= cost => false,
            _ => {
                self.best = Some((config.clone(), cost));
                true
            }
        }
    }

    /// Ask for the next configuration to measure. Returns `None` once the
    /// session has stopped. Cache replays are resolved internally and never
    /// surface as trials.
    pub fn suggest(&mut self) -> Option<Trial> {
        if self.stopped.is_some() {
            return None;
        }
        assert!(
            !self.outstanding,
            "suggest() called with a trial still outstanding; report() it first"
        );
        if !self.initialized {
            self.strategy.init(&self.space, &mut self.rng);
            self.initialized = true;
        }
        loop {
            if self.fresh_evals >= self.opts.max_evaluations {
                self.stopped = Some(StopReason::MaxEvaluations);
                return None;
            }
            let Some(coords) = self.strategy.propose(&self.space, &mut self.rng) else {
                self.stopped = Some(StopReason::StrategyExhausted);
                return None;
            };
            let config = self.space.project(&coords);
            let key = config.cache_key();
            if let Some(&cost) = self.cache.get(&key) {
                // Replay: answer the strategy immediately; costs nothing.
                self.consecutive_cached += 1;
                self.history.push(Evaluation {
                    iteration: self.history.len() + 1,
                    config,
                    cost,
                    cached: true,
                    cumulative_time: self.cumulative_time,
                });
                self.strategy
                    .feedback(&coords, cost, &self.space, &mut self.rng);
                if self.consecutive_cached >= self.opts.max_cached_replays {
                    self.stopped = Some(StopReason::Converged);
                    return None;
                }
                continue;
            }
            self.consecutive_cached = 0;
            self.outstanding = true;
            return Some(Trial {
                config,
                iteration: self.history.len() + 1,
                coords,
            });
        }
    }

    /// Report the measured cost of a trial, with the wall-clock time the
    /// measurement itself consumed (run + restart + warm-up in off-line
    /// mode); the time is charged to the session's cumulative tuning time.
    pub fn report_timed(&mut self, trial: Trial, cost: f64, wall_time: f64) -> Result<()> {
        if self.stopped.is_some() {
            return Err(HarmonyError::SessionFinished);
        }
        if !self.outstanding {
            return Err(HarmonyError::Protocol(
                "report() without an outstanding trial".into(),
            ));
        }
        self.outstanding = false;
        // A failed measurement (NaN) must never become the best; treat it
        // as infinitely slow so the search simply moves away.
        let cost = if cost.is_nan() { f64::INFINITY } else { cost };
        self.cumulative_time += wall_time;
        self.cache.insert(trial.config.cache_key(), cost);
        self.fresh_evals += 1;
        self.history.push(Evaluation {
            iteration: trial.iteration,
            config: trial.config.clone(),
            cost,
            cached: false,
            cumulative_time: self.cumulative_time,
        });
        let improved = self.update_best(&trial.config, cost);
        if improved {
            self.since_improvement = 0;
        } else {
            self.since_improvement += 1;
        }
        self.strategy
            .feedback(&trial.coords, cost, &self.space, &mut self.rng);
        if let Some(target) = self.opts.target_cost {
            if cost <= target {
                self.stopped = Some(StopReason::TargetReached);
                return Ok(());
            }
        }
        if self.opts.no_improve_limit > 0 && self.since_improvement >= self.opts.no_improve_limit {
            self.stopped = Some(StopReason::NoImprovement);
        } else if self.strategy.converged() {
            self.stopped = Some(StopReason::Converged);
        }
        Ok(())
    }

    /// Report a cost whose measurement time equals the cost itself (the
    /// common case when the objective *is* execution time).
    pub fn report(&mut self, trial: Trial, cost: f64) -> Result<()> {
        self.report_timed(trial, cost, cost)
    }

    /// Drive the session to completion against a synchronous objective.
    pub fn run<F>(&mut self, mut objective: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> f64,
    {
        while let Some(trial) = self.suggest() {
            let cost = objective(&trial.config);
            self.report(trial, cost)
                .expect("session accepts report for its own trial");
        }
        self.result()
    }

    /// Drive the session against any [`Objective`](crate::objective::Objective)
    /// implementation (composite time/fidelity objectives, penalised
    /// objectives, …).
    pub fn run_objective(&mut self, objective: &mut dyn crate::objective::Objective) -> TuningResult {
        while let Some(trial) = self.suggest() {
            let cost = objective.evaluate(&trial.config);
            self.report(trial, cost)
                .expect("session accepts report for its own trial");
        }
        self.result()
    }

    /// Snapshot the final result. Panics if nothing was ever evaluated.
    pub fn result(&self) -> TuningResult {
        let (best_config, best_cost) = self
            .best
            .clone()
            .expect("result() requires at least one evaluation");
        TuningResult {
            best_config,
            best_cost,
            evaluations: self.fresh_evals,
            stop_reason: self.stopped.unwrap_or(StopReason::MaxEvaluations),
            history: self.history.clone(),
            strategy: self.strategy.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{GridSearch, NelderMead, RandomSearch};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 40, 1)
            .int("y", 0, 40, 1)
            .build()
            .unwrap()
    }

    fn bowl(cfg: &Configuration) -> f64 {
        let x = cfg.int("x").unwrap() as f64;
        let y = cfg.int("y").unwrap() as f64;
        (x - 31.0).powi(2) + (y - 9.0).powi(2) + 5.0
    }

    #[test]
    fn run_finds_minimum_with_simplex() {
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 150,
                seed: 1,
                ..Default::default()
            },
        );
        let r = s.run(bowl);
        assert!(r.best_cost <= 10.0, "best={}", r.best_cost);
        assert!(r.evaluations <= 150);
        assert_eq!(r.strategy, "nelder-mead");
    }

    #[test]
    fn cache_prevents_duplicate_runs() {
        let mut calls = std::collections::HashMap::new();
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 200,
                seed: 2,
                ..Default::default()
            },
        );
        s.run(|cfg| {
            *calls.entry(cfg.cache_key()).or_insert(0) += 1;
            bowl(cfg)
        });
        assert!(
            calls.values().all(|&c| c == 1),
            "objective re-ran a cached configuration"
        );
    }

    #[test]
    fn max_evaluations_is_respected() {
        let mut count = 0;
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 25,
                seed: 3,
                ..Default::default()
            },
        );
        let r = s.run(|cfg| {
            count += 1;
            bowl(cfg)
        });
        assert_eq!(count, 25);
        assert_eq!(r.evaluations, 25);
        assert_eq!(r.stop_reason, StopReason::MaxEvaluations);
    }

    #[test]
    fn no_improvement_stops_early() {
        // Constant objective: first eval sets the best, then no improvement.
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 1000,
                no_improve_limit: 10,
                seed: 4,
                ..Default::default()
            },
        );
        let r = s.run(|_| 1.0);
        assert_eq!(r.stop_reason, StopReason::NoImprovement);
        assert!(r.evaluations <= 12);
    }

    #[test]
    fn target_cost_stops_immediately() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 1000,
                target_cost: Some(1e9),
                seed: 5,
                ..Default::default()
            },
        );
        let r = s.run(bowl);
        assert_eq!(r.stop_reason, StopReason::TargetReached);
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn grid_strategy_exhausts() {
        let mut s = TuningSession::new(
            space(),
            Box::new(GridSearch::new(16)),
            SessionOptions {
                max_evaluations: 1000,
                seed: 6,
                ..Default::default()
            },
        );
        let r = s.run(bowl);
        // The grid reports convergence after its final point, so the session
        // may stop as Converged (after the last report) or StrategyExhausted
        // (when asked for one more point); both mean the plan completed.
        assert!(
            matches!(
                r.stop_reason,
                StopReason::Converged | StopReason::StrategyExhausted
            ),
            "{:?}",
            r.stop_reason
        );
        assert_eq!(r.evaluations, 16);
    }

    #[test]
    fn preload_counts_as_best_without_budget() {
        let sp = space();
        let default_cfg = sp.project(&[0.0, 0.0]);
        let mut s = TuningSession::new(
            sp,
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 5,
                seed: 7,
                ..Default::default()
            },
        );
        s.preload(&default_cfg, 0.0); // unbeatable
        let r = s.run(bowl);
        assert_eq!(r.best_cost, 0.0);
        assert_eq!(r.evaluations, 5);
    }

    #[test]
    fn report_without_trial_is_an_error() {
        let sp = space();
        let mut s = TuningSession::new(
            sp.clone(),
            Box::new(RandomSearch::new()),
            SessionOptions::default(),
        );
        let trial = Trial {
            config: sp.center(),
            iteration: 1,
            coords: vec![20.0, 20.0],
        };
        assert!(matches!(
            s.report(trial, 1.0),
            Err(HarmonyError::Protocol(_))
        ));
    }

    #[test]
    fn improvement_and_speedup_math() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 3,
                seed: 8,
                ..Default::default()
            },
        );
        let r = s.run(|_| 50.0);
        assert!((r.improvement_over(100.0) - 0.5).abs() < 1e-12);
        assert!((r.speedup_over(100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn run_objective_drives_composite_objectives() {
        let mut obj = crate::objective::TradeoffObjective::new(
            |cfg: &Configuration| bowl(cfg),
            |cfg: &Configuration| (cfg.int("x").unwrap() as f64 - 31.0).abs() / 40.0,
            0.5,
        );
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 120,
                seed: 10,
                ..Default::default()
            },
        );
        let r = s.run_objective(&mut obj);
        assert!(r.best_cost <= 12.0, "best={}", r.best_cost);
    }

    #[test]
    fn nan_measurements_never_become_best() {
        // Failure injection: every third "measurement" fails and reports
        // NaN. The session must survive and report a real best.
        let mut n = 0;
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 60,
                seed: 99,
                ..Default::default()
            },
        );
        let r = s.run(|cfg| {
            n += 1;
            if n % 3 == 0 {
                f64::NAN
            } else {
                bowl(cfg)
            }
        });
        assert!(r.best_cost.is_finite(), "best={}", r.best_cost);
        assert!(r.best_cost >= 5.0); // the bowl's floor
    }

    #[test]
    fn cumulative_time_accumulates_overheads() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 3,
                seed: 9,
                ..Default::default()
            },
        );
        for _ in 0..3 {
            let t = s.suggest().unwrap();
            s.report_timed(t, 10.0, 15.0).unwrap(); // 5s restart overhead
        }
        let h = s.history();
        assert_eq!(h.evaluations().last().unwrap().cumulative_time, 45.0);
    }
}

//! Tuning sessions: the adaptation-controller loop around a search strategy.
//!
//! A [`TuningSession`] owns a [`SearchSpace`], a [`SearchStrategy`], an
//! evaluation cache and a [`History`]. It exposes both a pull-style
//! ([`TuningSession::suggest`] / [`TuningSession::report`]) interface — used
//! by the Harmony server and the on-line API — and a closed-loop
//! [`TuningSession::run`] driver for off-line tuning.
//!
//! Repeated visits to an already-measured lattice point are served from the
//! cache: in off-line tuning one evaluation is one application run, so cache
//! hits are free iterations.

use crate::error::{HarmonyError, Result};
use crate::history::{Evaluation, History};
use crate::space::{Configuration, SearchSpace};
use crate::strategy::{SearchStrategy, StrategySnapshot};
use crate::telemetry::{Counter, Telemetry, TrialStage};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Why a session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The budget of fresh evaluations was spent.
    MaxEvaluations,
    /// No improvement for `no_improve_limit` fresh evaluations.
    NoImprovement,
    /// The strategy had nothing further to propose (finite strategies).
    StrategyExhausted,
    /// The strategy kept re-proposing cached points — it has converged.
    Converged,
    /// A configuration reached the user's target cost.
    TargetReached,
}

impl StopReason {
    /// Stable lowercase name (used in JSON status dumps).
    pub fn name(&self) -> &'static str {
        match self {
            StopReason::MaxEvaluations => "max_evaluations",
            StopReason::NoImprovement => "no_improvement",
            StopReason::StrategyExhausted => "strategy_exhausted",
            StopReason::Converged => "converged",
            StopReason::TargetReached => "target_reached",
        }
    }
}

/// Session stopping criteria and seeding.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SessionOptions {
    /// Maximum number of *fresh* evaluations (application runs).
    pub max_evaluations: usize,
    /// Stop after this many consecutive fresh evaluations without
    /// improvement (0 disables the criterion).
    pub no_improve_limit: usize,
    /// Declare convergence after this many consecutive cache replays.
    pub max_cached_replays: usize,
    /// RNG seed: every stochastic choice in a session is derived from it.
    pub seed: u64,
    /// Optional early-exit target cost.
    pub target_cost: Option<f64>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            max_evaluations: 100,
            no_improve_limit: 0,
            max_cached_replays: 64,
            seed: 0,
            target_cost: None,
        }
    }
}

/// A configuration the session wants measured.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The projected, valid configuration to run.
    pub config: Configuration,
    /// 1-based index of this evaluation in the history. Also the token that
    /// ties a [`report`](TuningSession::report) back to its proposal when
    /// several trials are outstanding at once.
    pub iteration: usize,
}

/// How a queued proposal gets its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    /// Must be measured by the caller; resolved by `report_timed`.
    Fresh,
    /// Already-known configuration — a cache hit, or a duplicate of a fresh
    /// trial queued ahead of it. Resolves from the cache when it reaches the
    /// queue front (by then the original has been flushed).
    Replay,
}

/// One proposal awaiting its turn in the in-order flush.
#[derive(Debug)]
struct PendingTrial {
    coords: Vec<f64>,
    config: Configuration,
    key: Vec<i64>,
    iteration: usize,
    kind: PendingKind,
    /// `(cost, wall_time)` once reported; `Fresh` entries only.
    outcome: Option<(f64, f64)>,
    /// The outcome came from the persistent performance store, not a live
    /// measurement: the history row is flagged `cached` and no wall time is
    /// charged, but budget/best/feedback bookkeeping is identical to a
    /// fresh measurement (pure memoization).
    from_store: bool,
}

/// Live introspection snapshot of a session, for the observability plane.
///
/// A lock-brief copy: [`TuningSession::search_snapshot`] clones the small
/// pieces (best configuration, simplex vertex costs) and nothing else, so
/// it is safe to call from an observer thread while the session is being
/// driven.
#[derive(Debug, Clone)]
pub struct SearchSnapshot {
    /// Name of the strategy driving the search.
    pub strategy: &'static str,
    /// Fresh evaluations performed so far.
    pub evaluations: usize,
    /// History rows answered without running the application: cache
    /// replays plus store-served (possibly peer-replicated) outcomes. The
    /// warm-start claim, as a live number.
    pub cached_evaluations: usize,
    /// Best cost found so far.
    pub best_cost: Option<f64>,
    /// Best configuration found so far.
    pub best_config: Option<Configuration>,
    /// Why the session stopped, if it has.
    pub stop_reason: Option<StopReason>,
    /// Proposals queued for the in-order flush (fresh awaiting a report
    /// plus replays awaiting their turn).
    pub pending: usize,
    /// Pending proposals still awaiting a measured cost.
    pub awaiting_report: usize,
    /// The strategy's own internal state (phase, simplex geometry).
    pub search: StrategySnapshot,
}

/// Final outcome of a completed session.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// Best configuration found.
    pub best_config: Configuration,
    /// Its measured cost.
    pub best_cost: f64,
    /// Number of fresh evaluations (application runs) performed.
    pub evaluations: usize,
    /// Why the session stopped.
    pub stop_reason: StopReason,
    /// Full evaluation history.
    pub history: History,
    /// Name of the strategy that produced the result.
    pub strategy: &'static str,
}

impl TuningResult {
    /// Improvement of the best cost relative to a baseline cost, as a
    /// fraction in `[0, 1)` (paper reports `(default − tuned) / default`).
    pub fn improvement_over(&self, baseline_cost: f64) -> f64 {
        if baseline_cost <= 0.0 {
            return 0.0;
        }
        (baseline_cost - self.best_cost) / baseline_cost
    }

    /// Speedup factor `baseline / tuned` (the paper's "5.1× faster").
    pub fn speedup_over(&self, baseline_cost: f64) -> f64 {
        if self.best_cost <= 0.0 {
            return f64::INFINITY;
        }
        baseline_cost / self.best_cost
    }
}

/// The adaptation-controller loop around one application's search space.
pub struct TuningSession {
    space: SearchSpace,
    strategy: Box<dyn SearchStrategy>,
    opts: SessionOptions,
    rng: StdRng,
    cache: HashMap<Vec<i64>, f64>,
    history: History,
    best: Option<(Configuration, f64)>,
    fresh_evals: usize,
    cached_evals: usize,
    since_improvement: usize,
    consecutive_cached: usize,
    cumulative_time: f64,
    stopped: Option<StopReason>,
    initialized: bool,
    /// Proposals whose bookkeeping has not been applied yet, in proposal
    /// order. Fresh entries wait for a report; everything is flushed from
    /// the front strictly in order, so a batched session walks through
    /// bit-identical state transitions to a serial one.
    pending: VecDeque<PendingTrial>,
    telemetry: Telemetry,
}

impl TuningSession {
    /// Create a session; the strategy is initialised lazily on the first
    /// [`suggest`](Self::suggest).
    pub fn new(
        space: SearchSpace,
        strategy: Box<dyn SearchStrategy>,
        opts: SessionOptions,
    ) -> Self {
        let rng = StdRng::seed_from_u64(opts.seed);
        TuningSession {
            space,
            strategy,
            opts,
            rng,
            cache: HashMap::new(),
            history: History::new(),
            best: None,
            fresh_evals: 0,
            cached_evals: 0,
            since_improvement: 0,
            consecutive_cached: 0,
            cumulative_time: 0.0,
            stopped: None,
            initialized: false,
            pending: VecDeque::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle: from now on the session records
    /// Proposed / Measured / Reported / Replayed lifecycle events and their
    /// counters on it. Recording is a pure observer — it never influences
    /// the trajectory.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.strategy.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The space being searched.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The evaluation history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Best `(configuration, cost)` so far.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.best.as_ref().map(|(c, v)| (c, *v))
    }

    /// Why the session stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// Lock-brief introspection snapshot for the observability plane: the
    /// strategy's live search state (simplex geometry, move counts,
    /// convergence spread) plus the session's own progress bookkeeping.
    pub fn search_snapshot(&self) -> SearchSnapshot {
        SearchSnapshot {
            strategy: self.strategy.name(),
            evaluations: self.fresh_evals,
            cached_evaluations: self.cached_evals,
            best_cost: self.best.as_ref().map(|(_, c)| *c),
            best_config: self.best.as_ref().map(|(c, _)| c.clone()),
            stop_reason: self.stopped,
            pending: self.pending.len(),
            awaiting_report: self
                .pending
                .iter()
                .filter(|p| p.kind == PendingKind::Fresh && p.outcome.is_none())
                .count(),
            search: self.strategy.snapshot(),
        }
    }

    /// Pre-load a known measurement (e.g. the default configuration's cost
    /// from a previous production run) without consuming budget.
    pub fn preload(&mut self, config: &Configuration, cost: f64) {
        self.cache.insert(config.cache_key(), cost);
        self.update_best(config, cost);
    }

    fn update_best(&mut self, config: &Configuration, cost: f64) -> bool {
        match &self.best {
            Some((_, b)) if *b <= cost => false,
            _ => {
                self.best = Some((config.clone(), cost));
                true
            }
        }
    }

    /// Ask for the next configuration to measure. Returns `None` once the
    /// session has stopped. Cache replays are resolved internally and never
    /// surface as trials.
    pub fn suggest(&mut self) -> Option<Trial> {
        if self.stopped.is_some() {
            return None;
        }
        assert!(
            self.pending.is_empty(),
            "suggest() called with a trial still outstanding; report() it first"
        );
        self.suggest_batch(1).into_iter().next()
    }

    /// Ask for up to `max` configurations to measure in one round-trip.
    ///
    /// The returned trials may be measured concurrently and reported in any
    /// order (or partially — unreported trials stay outstanding). Internally
    /// every proposal joins a queue that is flushed front-to-back in
    /// proposal order, so the history, cache, best tracking and strategy
    /// trajectory are bit-identical to a serial `suggest`/`report` loop —
    /// that is the batched surface of PRO's "evaluate the whole simplex per
    /// round" design. How far a batch can run ahead is up to the strategy
    /// ([`SearchStrategy::can_propose_unanswered`]): simplex search yields
    /// batches of one, PRO yields the remainder of its current round, and
    /// sampling baselines fill `max`.
    ///
    /// An empty result with [`stop_reason`](Self::stop_reason) `None` means
    /// the strategy needs outstanding reports before it can propose again.
    pub fn suggest_batch(&mut self, max: usize) -> Vec<Trial> {
        let mut out = Vec::new();
        if self.stopped.is_some() || max == 0 {
            return out;
        }
        if !self.initialized {
            self.strategy.init(&self.space, &mut self.rng);
            self.initialized = true;
        }
        while out.len() < max && self.stopped.is_none() {
            let pending_fresh = self
                .pending
                .iter()
                .filter(|e| e.kind == PendingKind::Fresh)
                .count();
            if self.fresh_evals + pending_fresh >= self.opts.max_evaluations {
                // Budget spent (counting trials already in flight). Only an
                // idle session is *stopped*: outstanding reports may still
                // trigger a different stop reason first.
                if self.pending.is_empty() {
                    self.stopped = Some(StopReason::MaxEvaluations);
                }
                break;
            }
            // Bound the queue: a strategy circling already-known points
            // could otherwise grow it without limit inside one request.
            if self.pending.len() >= max + self.opts.max_cached_replays {
                break;
            }
            if !self.strategy.can_propose_unanswered(self.pending.len()) {
                break;
            }
            let Some(coords) = self.strategy.propose(&self.space, &mut self.rng) else {
                if self.pending.is_empty() {
                    self.stopped = Some(StopReason::StrategyExhausted);
                }
                break;
            };
            let config = self.space.project(&coords);
            let key = config.cache_key();
            // Every queue entry lands exactly one history row, so the row
            // index of this proposal is fixed now, before earlier trials
            // have even been measured.
            let iteration = self.history.len() + self.pending.len() + 1;
            let known = self.cache.contains_key(&key)
                || self
                    .pending
                    .iter()
                    .any(|e| e.kind == PendingKind::Fresh && e.key == key);
            if known {
                // Replay: costs nothing, never surfaces as a trial. It may
                // resolve only once it reaches the queue front (a duplicate
                // of an in-flight trial waits for the original's report).
                self.pending.push_back(PendingTrial {
                    coords,
                    config,
                    key,
                    iteration,
                    kind: PendingKind::Replay,
                    outcome: None,
                    from_store: false,
                });
                self.flush_pending();
                continue;
            }
            self.telemetry.inc(Counter::TrialsProposed);
            self.telemetry
                .event(TrialStage::Proposed, iteration, 0, None);
            out.push(Trial {
                config: config.clone(),
                iteration,
            });
            self.pending.push_back(PendingTrial {
                coords,
                config,
                key,
                iteration,
                kind: PendingKind::Fresh,
                outcome: None,
                from_store: false,
            });
        }
        out
    }

    /// Report the measured cost of a trial, with the wall-clock time the
    /// measurement itself consumed (run + restart + warm-up in off-line
    /// mode); the time is charged to the session's cumulative tuning time.
    pub fn report_timed(&mut self, trial: Trial, cost: f64, wall_time: f64) -> Result<()> {
        if self.stopped.is_some() {
            return Err(HarmonyError::SessionFinished);
        }
        let Some(entry) = self.pending.iter_mut().find(|e| {
            e.kind == PendingKind::Fresh && e.outcome.is_none() && e.iteration == trial.iteration
        }) else {
            return Err(HarmonyError::Protocol(
                "report() without an outstanding trial".into(),
            ));
        };
        entry.outcome = Some((cost, wall_time));
        self.telemetry.inc(Counter::TrialsMeasured);
        self.telemetry
            .event(TrialStage::Measured, trial.iteration, 0, None);
        self.flush_pending();
        Ok(())
    }

    /// Resolve an outstanding trial with a cost served from the persistent
    /// performance store instead of a live measurement.
    ///
    /// The flush applies the cost exactly like a fresh report — budget,
    /// cache, best tracking, strategy feedback and stop checks all advance
    /// identically, which is what keeps a warm (store-backed) run's
    /// trajectory bit-identical to the cold run that populated the store —
    /// except that the history row is flagged `cached` and no wall time is
    /// charged to the cumulative tuning time (nothing actually ran).
    pub fn report_stored(&mut self, trial: Trial, cost: f64) -> Result<()> {
        if self.stopped.is_some() {
            return Err(HarmonyError::SessionFinished);
        }
        let Some(entry) = self.pending.iter_mut().find(|e| {
            e.kind == PendingKind::Fresh && e.outcome.is_none() && e.iteration == trial.iteration
        }) else {
            return Err(HarmonyError::Protocol(
                "report_stored() without an outstanding trial".into(),
            ));
        };
        entry.outcome = Some((cost, 0.0));
        entry.from_store = true;
        self.telemetry
            .event(TrialStage::Replayed, trial.iteration, 0, Some("store"));
        self.flush_pending();
        Ok(())
    }

    /// Apply every resolved entry at the queue front, strictly in proposal
    /// order. All the bookkeeping the serial loop performed inline — cache
    /// insert, history row, best/no-improvement tracking, strategy feedback,
    /// stop checks — happens here, so out-of-order reports never reorder
    /// state transitions.
    fn flush_pending(&mut self) {
        while self.stopped.is_none() {
            let ready = match self.pending.front() {
                None => break,
                Some(e) => match e.kind {
                    PendingKind::Fresh => e.outcome.is_some(),
                    PendingKind::Replay => self.cache.contains_key(&e.key),
                },
            };
            if !ready {
                break;
            }
            let e = self.pending.pop_front().expect("front checked above");
            match e.kind {
                PendingKind::Fresh => {
                    let (cost, wall_time) = e.outcome.expect("readiness checked above");
                    // A failed measurement must never become the best; map
                    // every non-finite cost (NaN, but also ±inf — a -inf
                    // would be a permanent false best) to infinitely slow so
                    // the search moves away.
                    // (Counted at the protocol boundary, not here: the
                    // server already maps non-finite to +inf, so this is the
                    // idempotent backstop for in-process callers.)
                    let cost = if cost.is_finite() {
                        cost
                    } else {
                        f64::INFINITY
                    };
                    // A store-served outcome charges no wall time (nothing
                    // ran) and lands a `cached` row; every other state
                    // transition below is identical to a live measurement.
                    if !e.from_store {
                        self.cumulative_time += wall_time;
                    }
                    self.cache.insert(e.key, cost);
                    self.fresh_evals += 1;
                    if e.from_store {
                        self.cached_evals += 1;
                    }
                    self.consecutive_cached = 0;
                    self.history.push(Evaluation {
                        iteration: e.iteration,
                        config: e.config.clone(),
                        cost,
                        cached: e.from_store,
                        cumulative_time: self.cumulative_time,
                    });
                    if !e.from_store {
                        self.telemetry.inc(Counter::TrialsReported);
                        self.telemetry
                            .event(TrialStage::Reported, e.iteration, 0, None);
                    }
                    let improved = self.update_best(&e.config, cost);
                    if improved {
                        self.since_improvement = 0;
                    } else {
                        self.since_improvement += 1;
                    }
                    self.strategy
                        .feedback(&e.coords, cost, &self.space, &mut self.rng);
                    if let Some(target) = self.opts.target_cost {
                        if cost <= target {
                            self.stopped = Some(StopReason::TargetReached);
                            break;
                        }
                    }
                    if self.opts.no_improve_limit > 0
                        && self.since_improvement >= self.opts.no_improve_limit
                    {
                        self.stopped = Some(StopReason::NoImprovement);
                    } else if self.pending.is_empty() && self.strategy.converged() {
                        // Only an idle session can stop as converged: a
                        // batch may have proposed past the point where a
                        // finite strategy's plan ran out, and those queued
                        // trials still count. Serially, the queue is always
                        // empty here, so the condition reduces to the old
                        // behaviour.
                        self.stopped = Some(StopReason::Converged);
                    }
                }
                PendingKind::Replay => {
                    let cost = *self.cache.get(&e.key).expect("readiness checked above");
                    self.telemetry.inc(Counter::CacheReplays);
                    self.telemetry
                        .event(TrialStage::Replayed, e.iteration, 0, Some("cache_hit"));
                    self.consecutive_cached += 1;
                    self.cached_evals += 1;
                    self.history.push(Evaluation {
                        iteration: e.iteration,
                        config: e.config,
                        cost,
                        cached: true,
                        cumulative_time: self.cumulative_time,
                    });
                    self.strategy
                        .feedback(&e.coords, cost, &self.space, &mut self.rng);
                    if self.consecutive_cached >= self.opts.max_cached_replays {
                        self.stopped = Some(StopReason::Converged);
                    }
                }
            }
        }
        if self.stopped.is_some() && !self.pending.is_empty() {
            // Proposals queued past a stop are ones the serial loop would
            // never have made; drop them so history and the strategy
            // trajectory stay identical. Reports for them are accepted
            // nowhere — the session is finished.
            self.pending.clear();
        }
    }

    /// Report a cost whose measurement time equals the cost itself (the
    /// common case when the objective *is* execution time).
    pub fn report(&mut self, trial: Trial, cost: f64) -> Result<()> {
        self.report_timed(trial, cost, cost)
    }

    /// Drive the session to completion against a synchronous objective.
    pub fn run<F>(&mut self, mut objective: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> f64,
    {
        while let Some(trial) = self.suggest() {
            let cost = objective(&trial.config);
            self.report(trial, cost)
                .expect("session accepts report for its own trial");
        }
        self.result()
    }

    /// Drive the session against any [`Objective`](crate::objective::Objective)
    /// implementation (composite time/fidelity objectives, penalised
    /// objectives, …).
    pub fn run_objective(
        &mut self,
        objective: &mut dyn crate::objective::Objective,
    ) -> TuningResult {
        while let Some(trial) = self.suggest() {
            let cost = objective.evaluate(&trial.config);
            self.report(trial, cost)
                .expect("session accepts report for its own trial");
        }
        self.result()
    }

    /// Snapshot the final result. Panics if nothing was ever evaluated.
    pub fn result(&self) -> TuningResult {
        let (best_config, best_cost) = self
            .best
            .clone()
            .expect("result() requires at least one evaluation");
        TuningResult {
            best_config,
            best_cost,
            evaluations: self.fresh_evals,
            stop_reason: self.stopped.unwrap_or(StopReason::MaxEvaluations),
            history: self.history.clone(),
            strategy: self.strategy.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{GridSearch, NelderMead, RandomSearch};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 40, 1)
            .int("y", 0, 40, 1)
            .build()
            .unwrap()
    }

    fn bowl(cfg: &Configuration) -> f64 {
        let x = cfg.int("x").unwrap() as f64;
        let y = cfg.int("y").unwrap() as f64;
        (x - 31.0).powi(2) + (y - 9.0).powi(2) + 5.0
    }

    #[test]
    fn run_finds_minimum_with_simplex() {
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 150,
                seed: 1,
                ..Default::default()
            },
        );
        let r = s.run(bowl);
        assert!(r.best_cost <= 10.0, "best={}", r.best_cost);
        assert!(r.evaluations <= 150);
        assert_eq!(r.strategy, "nelder-mead");
    }

    #[test]
    fn cache_prevents_duplicate_runs() {
        let mut calls = std::collections::HashMap::new();
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 200,
                seed: 2,
                ..Default::default()
            },
        );
        s.run(|cfg| {
            *calls.entry(cfg.cache_key()).or_insert(0) += 1;
            bowl(cfg)
        });
        assert!(
            calls.values().all(|&c| c == 1),
            "objective re-ran a cached configuration"
        );
    }

    #[test]
    fn max_evaluations_is_respected() {
        let mut count = 0;
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 25,
                seed: 3,
                ..Default::default()
            },
        );
        let r = s.run(|cfg| {
            count += 1;
            bowl(cfg)
        });
        assert_eq!(count, 25);
        assert_eq!(r.evaluations, 25);
        assert_eq!(r.stop_reason, StopReason::MaxEvaluations);
    }

    #[test]
    fn no_improvement_stops_early() {
        // Constant objective: first eval sets the best, then no improvement.
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 1000,
                no_improve_limit: 10,
                seed: 4,
                ..Default::default()
            },
        );
        let r = s.run(|_| 1.0);
        assert_eq!(r.stop_reason, StopReason::NoImprovement);
        assert!(r.evaluations <= 12);
    }

    #[test]
    fn target_cost_stops_immediately() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 1000,
                target_cost: Some(1e9),
                seed: 5,
                ..Default::default()
            },
        );
        let r = s.run(bowl);
        assert_eq!(r.stop_reason, StopReason::TargetReached);
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn grid_strategy_exhausts() {
        let mut s = TuningSession::new(
            space(),
            Box::new(GridSearch::new(16)),
            SessionOptions {
                max_evaluations: 1000,
                seed: 6,
                ..Default::default()
            },
        );
        let r = s.run(bowl);
        // The grid reports convergence after its final point, so the session
        // may stop as Converged (after the last report) or StrategyExhausted
        // (when asked for one more point); both mean the plan completed.
        assert!(
            matches!(
                r.stop_reason,
                StopReason::Converged | StopReason::StrategyExhausted
            ),
            "{:?}",
            r.stop_reason
        );
        assert_eq!(r.evaluations, 16);
    }

    #[test]
    fn preload_counts_as_best_without_budget() {
        let sp = space();
        let default_cfg = sp.project(&[0.0, 0.0]);
        let mut s = TuningSession::new(
            sp,
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 5,
                seed: 7,
                ..Default::default()
            },
        );
        s.preload(&default_cfg, 0.0); // unbeatable
        let r = s.run(bowl);
        assert_eq!(r.best_cost, 0.0);
        assert_eq!(r.evaluations, 5);
    }

    #[test]
    fn report_without_trial_is_an_error() {
        let sp = space();
        let mut s = TuningSession::new(
            sp.clone(),
            Box::new(RandomSearch::new()),
            SessionOptions::default(),
        );
        let trial = Trial {
            config: sp.center(),
            iteration: 1,
        };
        assert!(matches!(
            s.report(trial, 1.0),
            Err(HarmonyError::Protocol(_))
        ));
    }

    #[test]
    fn improvement_and_speedup_math() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 3,
                seed: 8,
                ..Default::default()
            },
        );
        let r = s.run(|_| 50.0);
        assert!((r.improvement_over(100.0) - 0.5).abs() < 1e-12);
        assert!((r.speedup_over(100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn run_objective_drives_composite_objectives() {
        let mut obj = crate::objective::TradeoffObjective::new(
            |cfg: &Configuration| bowl(cfg),
            |cfg: &Configuration| (cfg.int("x").unwrap() as f64 - 31.0).abs() / 40.0,
            0.5,
        );
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 120,
                seed: 10,
                ..Default::default()
            },
        );
        let r = s.run_objective(&mut obj);
        assert!(r.best_cost <= 12.0, "best={}", r.best_cost);
    }

    #[test]
    fn nan_measurements_never_become_best() {
        // Failure injection: every third "measurement" fails and reports
        // NaN. The session must survive and report a real best.
        let mut n = 0;
        let mut s = TuningSession::new(
            space(),
            Box::new(NelderMead::default()),
            SessionOptions {
                max_evaluations: 60,
                seed: 99,
                ..Default::default()
            },
        );
        let r = s.run(|cfg| {
            n += 1;
            if n % 3 == 0 {
                f64::NAN
            } else {
                bowl(cfg)
            }
        });
        assert!(r.best_cost.is_finite(), "best={}", r.best_cost);
        assert!(r.best_cost >= 5.0); // the bowl's floor
    }

    /// Drive a session to completion fetching `batch` trials per round-trip.
    fn run_batched<F>(s: &mut TuningSession, batch: usize, mut f: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> f64,
    {
        loop {
            let trials = s.suggest_batch(batch);
            if trials.is_empty() {
                if s.stop_reason().is_some() {
                    break;
                }
                panic!("no trials but session not stopped (nothing outstanding)");
            }
            for t in trials {
                let cost = f(&t.config);
                let _ = s.report(t, cost); // stop mid-batch is legitimate
            }
        }
        s.result()
    }

    fn histories_match(a: &TuningResult, b: &TuningResult) {
        assert_eq!(a.stop_reason, b.stop_reason);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.best_config.cache_key(), b.best_config.cache_key());
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.evaluations().iter().zip(b.history.evaluations()) {
            assert_eq!(x.iteration, y.iteration);
            assert_eq!(x.config.cache_key(), y.config.cache_key());
            assert_eq!(x.cost.to_bits(), y.cost.to_bits());
            assert_eq!(x.cached, y.cached);
            assert_eq!(x.cumulative_time.to_bits(), y.cumulative_time.to_bits());
        }
    }

    #[test]
    fn batched_random_is_bit_identical_to_serial() {
        for batch in [2, 7, 16] {
            let opts = SessionOptions {
                max_evaluations: 120,
                seed: 42,
                ..Default::default()
            };
            let mut serial =
                TuningSession::new(space(), Box::new(RandomSearch::new()), opts.clone());
            let a = serial.run(bowl);
            let mut batched =
                TuningSession::new(space(), Box::new(RandomSearch::new()), opts.clone());
            let b = run_batched(&mut batched, batch, bowl);
            histories_match(&a, &b);
        }
    }

    #[test]
    fn batched_pro_is_bit_identical_to_serial() {
        use crate::strategy::{ParallelRankOrder, ProOptions};
        let opts = SessionOptions {
            max_evaluations: 150,
            seed: 7,
            ..Default::default()
        };
        let mk = || Box::new(ParallelRankOrder::new(ProOptions::default()));
        let mut serial = TuningSession::new(space(), mk(), opts.clone());
        let a = serial.run(bowl);
        let mut batched = TuningSession::new(space(), mk(), opts.clone());
        let b = run_batched(&mut batched, 16, bowl);
        histories_match(&a, &b);
    }

    #[test]
    fn batched_nelder_mead_degrades_to_serial_batches() {
        // A sequential strategy must never let the batch run ahead: each
        // suggest_batch(16) yields exactly one trial, and the trajectory is
        // the serial one.
        let opts = SessionOptions {
            max_evaluations: 80,
            seed: 3,
            ..Default::default()
        };
        let mut serial = TuningSession::new(space(), Box::new(NelderMead::default()), opts.clone());
        let a = serial.run(bowl);
        let mut batched =
            TuningSession::new(space(), Box::new(NelderMead::default()), opts.clone());
        loop {
            let trials = batched.suggest_batch(16);
            if trials.is_empty() {
                assert!(batched.stop_reason().is_some());
                break;
            }
            assert_eq!(trials.len(), 1, "sequential strategy over-batched");
            for t in trials {
                let c = bowl(&t.config);
                let _ = batched.report(t, c);
            }
        }
        histories_match(&a, &batched.result());
    }

    #[test]
    fn out_of_order_reports_flush_in_proposal_order() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 4,
                seed: 11,
                ..Default::default()
            },
        );
        let trials = s.suggest_batch(4);
        assert_eq!(trials.len(), 4);
        // Report last-to-first; history must still come out in proposal order.
        for t in trials.into_iter().rev() {
            s.report_timed(t, 1.0, 1.0).unwrap();
        }
        let iters: Vec<usize> = s
            .history()
            .evaluations()
            .iter()
            .map(|e| e.iteration)
            .collect();
        assert_eq!(iters, vec![1, 2, 3, 4]);
        assert_eq!(s.stop_reason(), None);
        assert!(s.suggest_batch(1).is_empty());
        assert_eq!(s.stop_reason(), Some(StopReason::MaxEvaluations));
    }

    #[test]
    fn duplicates_inside_a_batch_become_replays() {
        // A two-point space forces duplicates within the very first batch.
        let tiny = SearchSpace::builder().int("x", 0, 1, 1).build().unwrap();
        let mut s = TuningSession::new(
            tiny,
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 10,
                seed: 5,
                ..Default::default()
            },
        );
        let trials = s.suggest_batch(8);
        // Fresh trials are deduplicated; at most one per lattice point.
        let mut keys: Vec<_> = trials.iter().map(|t| t.config.cache_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), trials.len(), "batch served duplicate configs");
        for t in trials {
            let x = t.config.int("x").unwrap() as f64;
            s.report(t, x + 1.0).unwrap();
        }
        // The duplicates were queued as replays and resolved from the cache.
        assert!(s.history().evaluations().iter().any(|e| e.cached));
    }

    #[test]
    fn partial_batch_report_allows_refetching_the_rest() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 50,
                seed: 13,
                ..Default::default()
            },
        );
        let trials = s.suggest_batch(4);
        assert_eq!(trials.len(), 4);
        let mut it = trials.into_iter();
        let first = it.next().unwrap();
        s.report(first, 1.0).unwrap();
        // Three still outstanding; a new batch may top up around them.
        let more = s.suggest_batch(4);
        assert_eq!(more.len(), 4);
        for t in it.chain(more) {
            s.report(t, 2.0).unwrap();
        }
        assert_eq!(s.history().len(), 8);
    }

    #[test]
    fn store_served_run_matches_cold_trajectory_with_cached_rows() {
        let opts = SessionOptions {
            max_evaluations: 40,
            seed: 17,
            ..Default::default()
        };
        let mut cold = TuningSession::new(space(), Box::new(NelderMead::default()), opts.clone());
        let a = cold.run(bowl);
        // Warm run: every fresh trial is resolved from "the store" with the
        // exact cost the cold run measured.
        let mut warm = TuningSession::new(space(), Box::new(NelderMead::default()), opts.clone());
        while let Some(t) = warm.suggest() {
            let cost = bowl(&t.config);
            warm.report_stored(t, cost).unwrap();
        }
        let b = warm.result();
        // Identical search trajectory: same stops, same budget consumption,
        // same per-iteration costs, bit-identical best.
        assert_eq!(a.stop_reason, b.stop_reason);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.best_config.cache_key(), b.best_config.cache_key());
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.evaluations().iter().zip(b.history.evaluations()) {
            assert_eq!(x.iteration, y.iteration);
            assert_eq!(x.config.cache_key(), y.config.cache_key());
            assert_eq!(x.cost.to_bits(), y.cost.to_bits());
        }
        // But the warm run measured nothing: every row is cached and no
        // wall time was ever charged.
        assert!(b.history.evaluations().iter().all(|e| e.cached));
        assert!(b
            .history
            .evaluations()
            .iter()
            .all(|e| e.cumulative_time == 0.0));
        assert!(a.history.evaluations().iter().any(|e| !e.cached));
    }

    #[test]
    fn report_stored_without_trial_is_an_error() {
        let sp = space();
        let mut s = TuningSession::new(
            sp.clone(),
            Box::new(RandomSearch::new()),
            SessionOptions::default(),
        );
        let trial = Trial {
            config: sp.center(),
            iteration: 1,
        };
        assert!(matches!(
            s.report_stored(trial, 1.0),
            Err(HarmonyError::Protocol(_))
        ));
    }

    #[test]
    fn mixed_store_and_fresh_reports_interleave() {
        // Serving some trials from the store and measuring the rest must
        // still walk the exact cold trajectory (costs are functions of the
        // configuration, so the source of a cost cannot matter).
        let opts = SessionOptions {
            max_evaluations: 30,
            seed: 23,
            ..Default::default()
        };
        let mut cold = TuningSession::new(space(), Box::new(NelderMead::default()), opts.clone());
        let a = cold.run(bowl);
        let mut mixed = TuningSession::new(space(), Box::new(NelderMead::default()), opts.clone());
        let mut n = 0;
        while let Some(t) = mixed.suggest() {
            let cost = bowl(&t.config);
            n += 1;
            if n % 2 == 0 {
                mixed.report_stored(t, cost).unwrap();
            } else {
                mixed.report(t, cost).unwrap();
            }
        }
        let b = mixed.result();
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        for (x, y) in a.history.evaluations().iter().zip(b.history.evaluations()) {
            assert_eq!(x.cost.to_bits(), y.cost.to_bits());
        }
    }

    #[test]
    fn cumulative_time_accumulates_overheads() {
        let mut s = TuningSession::new(
            space(),
            Box::new(RandomSearch::new()),
            SessionOptions {
                max_evaluations: 3,
                seed: 9,
                ..Default::default()
            },
        );
        for _ in 0..3 {
            let t = s.suggest().unwrap();
            s.report_timed(t, 10.0, 15.0).unwrap(); // 5s restart overhead
        }
        let h = s.history();
        assert_eq!(h.evaluations().last().unwrap().cumulative_time, 45.0);
    }
}
